//! The paper's HTAP motivation in miniature (§5.2): analytical scans run
//! against the *frozen* tier — compressed, columnar-friendly blocks — and
//! deliberately do not warm Main Storage, so OLTP keeps its buffer while
//! OLAP churns through history.
//!
//! Run with: `cargo run --release --example frozen_analytics`

use phoebe_core::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("phoebe-frozen-analytics");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder()
        .workers(2)
        .slots_per_worker(8)
        .buffer_frames(512)
        .freeze_access_threshold(u64::MAX) // freeze everything cold+full
        .freeze_batch_pages(16)
        .data_dir(dir)
        .build()?;
    let db = Database::open(cfg)?;

    // A sales fact table.
    let sales = db.create_table(
        "sales",
        Schema::new(vec![
            ("region", ColType::I32),
            ("amount_cents", ColType::I64),
            ("sku", ColType::Str(12)),
        ]),
    )?;

    // OLTP phase: a few months of history.
    let n: i64 = 20_000;
    let rt = db.runtime();
    {
        let (db, sales) = (db.clone(), sales.clone());
        rt.spawn(async move {
            for chunk in 0..(n / 1000) {
                let mut tx = db.begin(IsolationLevel::ReadCommitted);
                for i in 0..1000 {
                    let k = chunk * 1000 + i;
                    tx.insert(
                        &sales,
                        vec![
                            Value::I32((k % 7) as i32),
                            Value::I64(100 + (k * 13) % 9000),
                            Value::Str(format!("sku{}", k % 50)),
                        ],
                    )
                    .await
                    .unwrap();
                }
                tx.commit().await.unwrap();
            }
        })
        .join();
    }

    // Temperature controller: history freezes into compressed blocks.
    let mut frozen_rows = 0;
    loop {
        let s = db.freeze_table(&sales)?;
        if s.rows_frozen == 0 {
            break;
        }
        frozen_rows += s.rows_frozen;
    }
    let (blocks, _, bytes) = sales.frozen.stats();
    println!(
        "froze {frozen_rows}/{n} rows into {blocks} blocks, {:.1} KiB compressed ({:.1} bytes/row)",
        bytes as f64 / 1024.0,
        bytes as f64 / frozen_rows.max(1) as f64
    );

    // OLAP phase: aggregate over the frozen tier. This path reads the Data
    // Block File directly — no buffer-pool frames are consumed, and block
    // read counters (the OLTP warming signal) are not bumped by scans.
    let (pre_reads, _) = db.pool.io_counts();
    let mut revenue_by_region = [0i64; 7];
    let mut rows_scanned = 0u64;
    sales.frozen.scan(|_, row| {
        revenue_by_region[row[0].as_i32() as usize] += row[1].as_i64();
        rows_scanned += 1;
        true
    })?;
    // Remaining hot rows (the unfrozen tail) via the table tree.
    sales.tree.table_for_each_leaf(|_, leaf| {
        for r in 0..leaf.len() {
            if leaf.is_valid(r) {
                let row = leaf.read_row(&sales.layout, r);
                revenue_by_region[row[0].as_i32() as usize] += row[1].as_i64();
                rows_scanned += 1;
            }
        }
        true
    })?;
    let (post_reads, _) = db.pool.io_counts();

    println!("scanned {rows_scanned} rows (frozen + hot tail)");
    for (region, total) in revenue_by_region.iter().enumerate() {
        println!("  region {region}: ${}.{:02}", total / 100, total % 100);
    }
    println!(
        "buffer-pool page reads during the scan: {} (frozen scans bypass Main Storage)",
        post_reads - pre_reads
    );

    // Meanwhile OLTP point reads still work, whichever tier the row is in.
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let hot_or_frozen = tx.read(&sales, phoebe_common::ids::RowId(1))?.expect("row 1");
    println!("row 1 (served from the frozen tier): {hot_or_frozen:?}");
    phoebe_runtime::block_on(tx.commit())?;
    db.shutdown();
    Ok(())
}
