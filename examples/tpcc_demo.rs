//! Load a miniature TPC-C and run the standard mix for a few seconds,
//! printing tpmC — the paper's headline experiment at laptop scale.
//!
//! Run with: `cargo run --release --example tpcc_demo`

use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use phoebe_tpcc::{load, run_phoebe, DriverConfig, PhoebeEngine, TpccScale};
use std::time::Duration;

fn main() -> Result<()> {
    let warehouses = 2u32;
    let dir = std::env::temp_dir().join("phoebe-tpcc-demo");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder()
        .workers(2)
        .slots_per_worker(32)
        .buffer_frames(4096)
        .data_dir(dir)
        .build()?;
    let db = Database::open(cfg)?;
    let engine = PhoebeEngine::create(db)?;

    println!("loading {warehouses} warehouses (mini scale)...");
    block_on(load(&engine, warehouses, TpccScale::mini(), 42))?;

    println!("running the 45/43/4/4/4 mix for 5 seconds...");
    let stats = run_phoebe(
        &engine,
        &DriverConfig {
            warehouses,
            scale: TpccScale::mini(),
            duration: Duration::from_secs(5),
            terminals: 32,
            affinity: true,
            seed: 42,
        },
    );
    println!(
        "tpmC = {:.0}   tpm = {:.0}   committed = {}   aborts(retried) = {}   mix = {:?}",
        stats.tpmc(),
        stats.tpm_total(),
        stats.committed,
        stats.aborts,
        stats.per_kind
    );
    engine.db.shutdown();
    Ok(())
}
