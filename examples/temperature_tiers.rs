//! The three storage temperatures (§5.2): hot rows in Main Storage, cold
//! pages in the Data Page File, frozen rows compressed into the Data Block
//! File — and a row's journey through freeze, frozen read, and warming.
//!
//! Run with: `cargo run --example temperature_tiers`

use phoebe_common::ids::RowId;
use phoebe_core::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("phoebe-tiers");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder()
        .workers(1)
        .slots_per_worker(4)
        .buffer_frames(128) // small: forces hot->cold eviction
        .freeze_access_threshold(u64::MAX) // every full leaf qualifies
        .freeze_batch_pages(8)
        .warm_read_threshold(4)
        .data_dir(dir)
        .build()?;
    let db = Database::open(cfg)?;
    let events = db.create_table(
        "events",
        Schema::new(vec![("seq", ColType::I64), ("payload", ColType::Str(40))]),
    )?;

    // Insert enough history that old leaves go cold.
    let rt = db.runtime();
    {
        let (db, events) = (db.clone(), events.clone());
        rt.spawn(async move {
            for chunk in 0..20 {
                let mut tx = db.begin(IsolationLevel::ReadCommitted);
                for i in 0..500i64 {
                    let seq = chunk * 500 + i;
                    tx.insert(&events, vec![Value::I64(seq), Value::Str(format!("event-{seq}"))])
                        .await
                        .unwrap();
                }
                tx.commit().await.unwrap();
            }
        })
        .join();
    }
    let (reads, writes) = db.pool.io_counts();
    println!("after load: page-file reads={reads} writes={writes} (cold tier active)");

    // Freeze the cold prefix into compressed blocks.
    let mut total_frozen = 0;
    loop {
        let stats = db.freeze_table(&events)?;
        if stats.rows_frozen == 0 {
            break;
        }
        total_frozen += stats.rows_frozen;
        println!(
            "froze {} rows in {} pages; max_frozen_row_id={}",
            stats.rows_frozen, stats.pages_frozen, stats.new_watermark
        );
    }
    let (blocks, live, bytes) = events.frozen.stats();
    println!("frozen tier: {total_frozen} rows in {blocks} blocks ({live} live, {bytes} compressed bytes)");

    // Frozen reads served from the Data Block File, no buffer warming.
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    for _ in 0..6 {
        let row = tx.read(&events, RowId(1))?.expect("frozen row readable");
        assert_eq!(row[0], Value::I64(0));
    }
    phoebe_runtime::block_on(tx.commit())?;

    // The block got hot: warm it back into Main Storage under new row ids.
    let warm = db.warm_table(&events)?;
    println!(
        "warmed {} rows from {} hot blocks back into hot storage",
        warm.rows_warmed, warm.blocks_warmed
    );
    println!("total visible rows: {}", db.approximate_row_count(&events)?);
    db.shutdown();
    Ok(())
}
