//! Quickstart: open a PhoebeDB kernel, create a table with an index, and
//! run transactions from co-routines on the worker pool.
//!
//! Run with: `cargo run --example quickstart`

use phoebe_core::prelude::*;

fn main() -> Result<()> {
    // A kernel over a scratch directory: 2 workers x 8 task slots.
    let dir = std::env::temp_dir().join("phoebe-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder().workers(2).slots_per_worker(8).data_dir(dir).build()?;
    let db = Database::open(cfg)?;

    // A table is one B-Tree keyed by an internal row id; user keys live in
    // secondary indexes (§5.1 of the paper).
    let users = db.create_table(
        "users",
        Schema::new(vec![
            ("id", ColType::I64),
            ("name", ColType::Str(32)),
            ("karma", ColType::I64),
        ]),
    )?;
    let by_id = db.create_index(&users, "users_by_id", vec![0], true)?;

    // Transactions are co-routines: spawn them on the pool.
    let rt = db.runtime();
    let db2 = db.clone();
    let users2 = users.clone();
    let alice_row = rt
        .spawn(async move {
            let mut tx = db2.begin(IsolationLevel::ReadCommitted);
            let row = tx
                .insert(&users2, vec![Value::I64(1), Value::Str("alice".into()), Value::I64(10)])
                .await?;
            tx.insert(&users2, vec![Value::I64(2), Value::Str("bob".into()), Value::I64(3)])
                .await?;
            tx.commit().await?;
            Ok::<_, phoebe_common::PhoebeError>(row)
        })
        .join()?;

    // Point read by row id and by unique index; atomic read-modify-write.
    let db3 = db.clone();
    let users3 = users.clone();
    rt.spawn(async move {
        let mut tx = db3.begin(IsolationLevel::ReadCommitted);
        let alice = tx.read(&users3, alice_row)?.expect("alice exists");
        println!("read by row id: {alice:?}");
        let (row, bob) = tx.lookup_unique(&users3, &by_id, &[Value::I64(2)])?.expect("bob exists");
        println!("lookup by index: row={row} tuple={bob:?}");
        // +1 karma, atomically.
        tx.update_rmw(&users3, row, &|cur| vec![(2, Value::I64(cur[2].as_i64() + 1))]).await?;
        let cts = tx.commit().await?;
        println!("committed at timestamp {cts}");
        Ok::<_, phoebe_common::PhoebeError>(())
    })
    .join()?;

    println!("rows in table: {}", db.approximate_row_count(&users)?);
    db.shutdown();
    Ok(())
}
