//! Crash recovery: per-slot WAL files merged by GSN, committed transactions
//! replayed, in-flight work discarded (§8).
//!
//! Run with: `cargo run --example crash_recovery`

use phoebe_core::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![("k", ColType::I64), ("v", ColType::Str(24))])
}

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("phoebe-recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder().workers(2).slots_per_worker(4).data_dir(&dir).build()?;
    let wal_dir = dir.join("wal");

    // Phase 1: do work, then "crash" (drop the kernel without checkpoint).
    let committed_row = {
        let db = Database::open(cfg.clone())?;
        let kv = db.create_table("kv", schema())?;
        let rt = db.runtime();
        let (db2, kv2) = (db.clone(), kv.clone());
        let row = rt
            .spawn(async move {
                let mut tx = db2.begin(IsolationLevel::ReadCommitted);
                let row = tx
                    .insert(&kv2, vec![Value::I64(1), Value::Str("survives".into())])
                    .await
                    .unwrap();
                tx.update(&kv2, row, &[(1, Value::Str("updated".into()))]).await.unwrap();
                tx.commit().await.unwrap();
                // This one never commits: it must not survive the crash.
                let mut doomed = db2.begin(IsolationLevel::ReadCommitted);
                doomed
                    .insert(&kv2, vec![Value::I64(2), Value::Str("doomed".into())])
                    .await
                    .unwrap();
                std::mem::forget(doomed); // simulate dying mid-transaction
                row
            })
            .join();
        db.shutdown(); // flushes WAL; data pages are NOT checkpointed
        row
    };

    // Phase 2: a fresh kernel over a fresh data dir, same WAL.
    let dir2 = std::env::temp_dir().join("phoebe-recovery-2");
    let _ = std::fs::remove_dir_all(&dir2);
    let cfg2 = KernelConfig::builder().workers(2).slots_per_worker(4).data_dir(dir2).build()?;
    let db = Database::open(cfg2)?;
    let kv = db.create_table("kv", schema())?; // same catalog order
    let replayed = db.replay_wal(&wal_dir)?;
    println!("replayed {replayed} committed transactions");

    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let row = tx.read(&kv, committed_row)?.expect("committed row recovered");
    println!("recovered: {row:?}");
    assert_eq!(row[1], Value::Str("updated".into()));
    assert_eq!(db.approximate_row_count(&kv)?, 1, "uncommitted insert discarded");
    phoebe_runtime::block_on(tx.commit())?;
    println!("recovery OK: committed state restored, in-flight work gone");
    db.shutdown();
    Ok(())
}
