//! Crash recovery: per-slot WAL files merged by GSN, committed transactions
//! replayed, in-flight work discarded (§8).
//!
//! `Database::open` performs recovery automatically: when the data
//! directory holds a previous incarnation's WAL, the catalog is rebuilt
//! from the persisted manifest and every committed transaction is replayed
//! before the kernel accepts new work.
//!
//! Run with: `cargo run --example crash_recovery`

use phoebe_core::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![("k", ColType::I64), ("v", ColType::Str(24))])
}

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("phoebe-recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder().workers(2).slots_per_worker(4).data_dir(&dir).build()?;

    // Phase 1: do work, then "crash" (drop the kernel without checkpoint).
    let committed_row = {
        let db = Database::open(cfg.clone())?;
        let kv = db.create_table("kv", schema())?;
        let rt = db.runtime();
        let (db2, kv2) = (db.clone(), kv.clone());
        let row = rt
            .spawn(async move {
                let mut tx = db2.begin(IsolationLevel::ReadCommitted);
                let row = tx
                    .insert(&kv2, vec![Value::I64(1), Value::Str("survives".into())])
                    .await
                    .unwrap();
                tx.update(&kv2, row, &[(1, Value::Str("updated".into()))]).await.unwrap();
                tx.commit().await.unwrap();
                // This one never commits: it must not survive the crash.
                let mut doomed = db2.begin(IsolationLevel::ReadCommitted);
                doomed
                    .insert(&kv2, vec![Value::I64(2), Value::Str("doomed".into())])
                    .await
                    .unwrap();
                std::mem::forget(doomed); // simulate dying mid-transaction
                row
            })
            .join();
        db.shutdown(); // flushes WAL; data pages are NOT checkpointed
        row
    };

    // Phase 2: reopen the same directory — recovery is automatic. The
    // catalog comes back from the persisted manifest (create_table is
    // idempotent on a recovered kernel) and committed history replays in
    // commit-timestamp order before any new transaction runs.
    let db = Database::open(cfg)?;
    let info = db.recovery_info();
    println!("replayed {} committed transactions (max cts {})", info.txns, info.max_cts);
    assert_eq!(info.txns, 1, "one committed transaction in the log");

    let kv = db.create_table("kv", schema())?; // idempotent: the recovered table
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let row = tx.read(&kv, committed_row)?.expect("committed row recovered");
    println!("recovered: {row:?}");
    assert_eq!(row[1], Value::Str("updated".into()));
    assert_eq!(db.approximate_row_count(&kv)?, 1, "uncommitted insert discarded");
    phoebe_runtime::block_on(tx.commit())?;
    println!("recovery OK: committed state restored, in-flight work gone");
    db.shutdown();
    Ok(())
}
