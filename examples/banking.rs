//! Concurrent bank transfers: MVCC isolation levels in action.
//!
//! 64 transfer co-routines move money between 10 accounts under read
//! committed while a repeatable-read auditor repeatedly sums all balances —
//! every audit must observe the invariant total, demonstrating snapshot
//! isolation over in-place updates with in-memory UNDO (§6).
//!
//! Run with: `cargo run --example banking`

use phoebe_core::prelude::*;

const ACCOUNTS: i64 = 10;
const OPENING: i64 = 1_000;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("phoebe-banking");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder().workers(2).slots_per_worker(16).data_dir(dir).build()?;
    let db = Database::open(cfg)?;
    let accounts = db.create_table(
        "accounts",
        Schema::new(vec![("id", ColType::I64), ("balance", ColType::I64)]),
    )?;

    let rt = db.runtime();
    let rows = {
        let db = db.clone();
        let accounts = accounts.clone();
        rt.spawn(async move {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            let mut rows = Vec::new();
            for i in 0..ACCOUNTS {
                rows.push(tx.insert(&accounts, vec![Value::I64(i), Value::I64(OPENING)]).await?);
            }
            tx.commit().await?;
            Ok::<_, phoebe_common::PhoebeError>(rows)
        })
        .join()?
    };

    // The auditor: repeatable read sees a consistent snapshot every time.
    let auditor = {
        let db = db.clone();
        let accounts = accounts.clone();
        let rows = rows.clone();
        rt.spawn(async move {
            let mut audits = 0u32;
            for _ in 0..50 {
                let mut tx = db.begin(IsolationLevel::RepeatableRead);
                let mut total = 0;
                for r in &rows {
                    total += tx.read(&accounts, *r)?.expect("account")[1].as_i64();
                }
                tx.commit().await?;
                assert_eq!(total, ACCOUNTS * OPENING, "audit must see a consistent cut");
                audits += 1;
                phoebe_runtime::yield_now(phoebe_runtime::Urgency::Low).await;
            }
            Ok::<_, phoebe_common::PhoebeError>(audits)
        })
    };

    // The transfers.
    let transfers: Vec<_> = (0..64u64)
        .map(|i| {
            let db = db.clone();
            let accounts = accounts.clone();
            let rows = rows.clone();
            rt.spawn(async move {
                let from = rows[(i % ACCOUNTS as u64) as usize];
                let to = rows[((i * 7 + 3) % ACCOUNTS as u64) as usize];
                if from == to {
                    return Ok(());
                }
                loop {
                    let mut tx = db.begin(IsolationLevel::ReadCommitted);
                    let amount = 1 + (i as i64 % 20);
                    let a = tx
                        .update_rmw(&accounts, from, &move |cur| {
                            vec![(1, Value::I64(cur[1].as_i64() - amount))]
                        })
                        .await;
                    let b = tx
                        .update_rmw(&accounts, to, &move |cur| {
                            vec![(1, Value::I64(cur[1].as_i64() + amount))]
                        })
                        .await;
                    match (a, b) {
                        (Ok(_), Ok(_)) => {
                            tx.commit().await?;
                            return Ok::<_, phoebe_common::PhoebeError>(());
                        }
                        _ => tx.abort(),
                    }
                }
            })
        })
        .collect();
    for t in transfers {
        t.join()?;
    }
    let audits = auditor.join()?;
    println!("64 transfers done; {audits} consistent audits; invariant held");
    db.shutdown();
    Ok(())
}
