#!/usr/bin/env bash
# CI metrics smoke: boot exp1 under a short TPC-C burst with the live
# telemetry endpoint enabled (PHOEBE_TELEMETRY on an ephemeral port),
# scrape /metrics twice while the bench runs, and validate:
#   * Prometheus text-exposition validity (HELP/TYPE headers, sample
#     grammar) with every latency site and worker time-in-state present,
#   * counter monotonicity between the two scrapes,
#   * histogram consistency (cumulative buckets, +Inf == _count),
#   * /stats returns the kernel JSON document,
#   * /trace?ms=200 returns a Perfetto-loadable trace-event JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
bench_log="$tmp/bench.log"
cleanup() {
  [[ -n "${bench_pid:-}" ]] && kill "$bench_pid" 2>/dev/null || true
  [[ -n "${bench_pid:-}" ]] && wait "$bench_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

# Build first so the wait-for-endpoint loop below times the kernel boot,
# not the compile.
cargo build --release -q -p phoebe-bench --bin exp1_tpmc

PHOEBE_TELEMETRY="127.0.0.1:0" \
PHOEBE_EXP1_POINTS="${PHOEBE_METRICS_SMOKE_WORKERS:-2}" \
PHOEBE_DURATION_SECS="${PHOEBE_DURATION_SECS:-6}" \
  cargo run --release -q -p phoebe-bench --bin exp1_tpmc >"$tmp/bench.json" 2>"$bench_log" &
bench_pid=$!

# The kernel advertises the resolved ephemeral port on stderr.
addr=""
for _ in $(seq 1 120); do
  addr=$(sed -n 's#^phoebe: telemetry listening on http://##p' "$bench_log" | head -n1)
  [[ -n "$addr" ]] && break
  kill -0 "$bench_pid" 2>/dev/null || { cat "$bench_log"; echo "FAIL: bench exited before telemetry came up"; exit 1; }
  sleep 0.5
done
[[ -n "$addr" ]] || { cat "$bench_log"; echo "FAIL: no telemetry address advertised"; exit 1; }
echo "metrics-smoke: scraping http://$addr"

ADDR="$addr" OUT="$tmp" python3 - <<'PY'
import json, os, re, sys, time, urllib.request

addr, out = os.environ["ADDR"], os.environ["OUT"]

def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=30) as r:
        assert r.status == 200, f"{path}: HTTP {r.status}"
        return r.read().decode()

def parse_prom(text):
    """Validate exposition grammar; return {(name, labels): value}."""
    samples, types = {}, {}
    sample_re = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$')
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), f"bad TYPE: {line}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        m = sample_re.match(line)
        assert m, f"invalid sample line: {line!r}"
        samples[(m.group(1), m.group(2) or "")] = float(m.group(3))
    return samples, types

first, types = parse_prom(get("/metrics"))
time.sleep(2)  # let the burst make progress between scrapes
second, _ = parse_prom(get("/metrics"))

# Coverage: every latency site exported as a histogram, plus per-worker
# time-in-state.
sites = {re.search(r'site="([^"]+)"', k[1]).group(1)
         for k in first if k[0] == "phoebe_latency_ns_count"}
need = {"commit", "abort", "wal_flush", "group_commit", "buffer_fault", "lock_wait"}
assert need <= sites, f"latency sites missing from /metrics: {need - sites} (got {sites})"
assert types.get("phoebe_latency_ns") == "histogram"
states = {k for k in first if k[0] == "phoebe_worker_state_ns_total"}
assert len(states) >= 8, f"expected >=2 workers x 4 states, got {states}"

# Monotonicity: every counter-typed sample must not decrease.
for (name, labels), v1 in first.items():
    if types.get(name.replace("_bucket", "").replace("_sum", "").replace("_count", ""),
                 types.get(name)) == "counter" or name.endswith(("_total", "_bucket", "_sum", "_count")):
        v2 = second.get((name, labels))
        if v2 is not None:
            assert v2 >= v1, f"counter went backwards: {name}{labels} {v1} -> {v2}"

# Histogram consistency on the second scrape: cumulative buckets, and
# +Inf == _count per site.
for scrape in (first, second):
    per_site = {}
    for (name, labels), v in scrape.items():
        if name == "phoebe_latency_ns_bucket":
            site = re.search(r'site="([^"]+)"', labels).group(1)
            le = re.search(r'le="([^"]+)"', labels).group(1)
            per_site.setdefault(site, []).append((le, v))
    for site, buckets in per_site.items():
        inf = dict(buckets)["+Inf"]
        count = scrape[("phoebe_latency_ns_count", f'{{site="{site}"}}')]
        assert inf == count, f"{site}: +Inf bucket {inf} != _count {count}"
        finite = sorted((float(le), v) for le, v in buckets if le != "+Inf")
        vals = [v for _, v in finite]
        assert vals == sorted(vals), f"{site}: buckets not cumulative"
        assert all(v <= inf for v in vals), f"{site}: bucket exceeds +Inf"
        sum_ns = scrape[("phoebe_latency_ns_sum", f'{{site="{site}"}}')]
        assert count == 0 or sum_ns > 0, f"{site}: count {count} but zero sum"

commits1 = first[("phoebe_counter_total", '{counter="commits"}')]
commits2 = second[("phoebe_counter_total", '{counter="commits"}')]
assert commits2 > commits1, "no commits between scrapes: burst not running?"

# /stats: the kernel JSON document.
stats = json.loads(get("/stats"))
for key in ("counters", "components", "latency", "runtime", "wal", "buffer"):
    assert key in stats, f"/stats missing {key}"

# /trace?ms=200: a live Perfetto snapshot without stopping the kernel.
trace = json.loads(get("/trace?ms=200"))
events = trace["traceEvents"]
assert events, "live trace snapshot is empty"
assert any(e.get("ph") == "X" for e in events), "no spans in live trace"
with open(os.path.join(out, "live_trace.json"), "w") as f:
    json.dump(trace, f)

print(f"metrics-smoke: {len(first)} samples/scrape, {len(sites)} latency sites, "
      f"commits {int(commits1)} -> {int(commits2)}, live trace {len(events)} events")
print("metrics-smoke: OK")
PY

wait "$bench_pid"
bench_pid=""
echo "metrics-smoke: bench completed cleanly"
