#!/usr/bin/env bash
# CI bench smoke: run exp1 at 1 and 4 workers and fail if throughput
# scales inversely. Strict mode (default, PHOEBE_SMOKE_MIN_RATIO=1.0)
# requires 4-worker tpmC >= 1-worker tpmC and assumes >= 4 cores; on
# smaller hosts set e.g. PHOEBE_SMOKE_MIN_RATIO=0.5 — the seed kernel
# retained only ~19% of 1-worker tpmC at 4 workers, so even the relaxed
# guard catches a scalability regression.
set -euo pipefail
cd "$(dirname "$0")/.."

export PHOEBE_EXP1_POINTS="${PHOEBE_EXP1_POINTS:-1,4}"
export PHOEBE_DURATION_SECS="${PHOEBE_DURATION_SECS:-3}"
MIN_RATIO="${PHOEBE_SMOKE_MIN_RATIO:-1.0}"

out=$(cargo run --release -q -p phoebe-bench --bin exp1_tpmc)
echo "$out"

echo "$out" | grep '^PHOEBE_JSON ' | sed 's/^PHOEBE_JSON //' | MIN_RATIO="$MIN_RATIO" python3 -c '
import json, os, sys

doc = json.load(sys.stdin)
series = doc["data"]["series"]
by_workers = {int(row["workers"]): float(row["tpmC"]) for row in series}
lo, hi = min(by_workers), max(by_workers)
ratio = by_workers[hi] / by_workers[lo] if by_workers[lo] else 0.0
need = float(os.environ["MIN_RATIO"])
print(f"bench-smoke: {lo}w tpmC={by_workers[lo]:.0f}  {hi}w tpmC={by_workers[hi]:.0f}  ratio={ratio:.2f} (need >= {need})")
if ratio < need:
    sys.exit(f"FAIL: tpmC at {hi} workers is {ratio:.2f}x the {lo}-worker figure (minimum {need}) — scaling regressed")
print("bench-smoke: OK")
'
