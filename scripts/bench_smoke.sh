#!/usr/bin/env bash
# CI bench smoke: run exp1 at 1 and 4 workers and fail if throughput
# scales inversely. Strict mode (default, PHOEBE_SMOKE_MIN_RATIO=1.0)
# requires 4-worker tpmC >= 1-worker tpmC and assumes >= 4 cores; on
# smaller hosts set e.g. PHOEBE_SMOKE_MIN_RATIO=0.5 — the seed kernel
# retained only ~19% of 1-worker tpmC at 4 workers, so even the relaxed
# guard catches a scalability regression.
set -euo pipefail
cd "$(dirname "$0")/.."

export PHOEBE_EXP1_POINTS="${PHOEBE_EXP1_POINTS:-1,4}"
export PHOEBE_DURATION_SECS="${PHOEBE_DURATION_SECS:-3}"
MIN_RATIO="${PHOEBE_SMOKE_MIN_RATIO:-1.0}"

out=$(cargo run --release -q -p phoebe-bench --bin exp1_tpmc)
echo "$out"

echo "$out" | grep '^PHOEBE_JSON ' | sed 's/^PHOEBE_JSON //' | MIN_RATIO="$MIN_RATIO" python3 -c '
import json, os, sys

doc = json.load(sys.stdin)
series = doc["data"]["series"]
by_workers = {int(row["workers"]): float(row["tpmC"]) for row in series}
lo, hi = min(by_workers), max(by_workers)
ratio = by_workers[hi] / by_workers[lo] if by_workers[lo] else 0.0
need = float(os.environ["MIN_RATIO"])
print(f"bench-smoke: {lo}w tpmC={by_workers[lo]:.0f}  {hi}w tpmC={by_workers[hi]:.0f}  ratio={ratio:.2f} (need >= {need})")
if ratio < need:
    sys.exit(f"FAIL: tpmC at {hi} workers is {ratio:.2f}x the {lo}-worker figure (minimum {need}) — scaling regressed")
print("bench-smoke: OK")
'

# Interleaved-batch guard: exp6 part (b) reads the same key stream
# sequentially and as interleaved multi_get batches over an all-hot,
# larger-than-cache tree. Quiet-host medians run 1.1-1.3x in favour of
# the batch path, but a shared runner swings individual medians down to
# ~1.0, so the default guard is 0.9: it tolerates runner noise yet still
# fails on the overhead-dominated regressions that measure <= 0.85
# (e.g. a restart storm eating the prefetch win). Tighten via
# PHOEBE_BATCH_MIN_RATIO on dedicated hardware.
BATCH_MIN_RATIO="${PHOEBE_BATCH_MIN_RATIO:-0.9}"

out=$(cargo run --release -q -p phoebe-bench --bin exp6_coro_thread)
echo "$out"

echo "$out" | grep '^PHOEBE_JSON ' | sed 's/^PHOEBE_JSON //' | MIN_RATIO="$BATCH_MIN_RATIO" python3 -c '
import json, os, sys

doc = json.load(sys.stdin)
batch = doc["data"]["batch"]
inter, seq = float(batch["interleaved_rps"]), float(batch["sequential_rps"])
ratio = float(batch["ratio"])
need = float(os.environ["MIN_RATIO"])
print(f"bench-smoke: interleaved {inter:.0f} reads/s  sequential {seq:.0f} reads/s  ratio={ratio:.2f} (need >= {need})")
if ratio < need:
    sys.exit(f"FAIL: interleaved batch reads are only {ratio:.2f}x sequential (minimum {need}) — stall hiding regressed")
print("bench-smoke: OK")
'
