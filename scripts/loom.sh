#!/usr/bin/env bash
# Run the loom model-checking suites (bounded exhaustive interleaving
# search over the kernel's lock-free protocols).
#
# The suites only exist under `--cfg loom`; normal builds compile them to
# empty crates. `cargo test --test` takes exact target names (no globs),
# so every suite is listed explicitly — add new `loom_*.rs` files here.
#
# Knobs (see shims/loom):
#   LOOM_MAX_PREEMPTIONS  context-switch bound per schedule   (default 3)
#   LOOM_MAX_ITERATIONS   schedules explored per model        (default 20000)
#   LOOM_REPLAY           choice trail from a failure — replays exactly it
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="--cfg loom ${RUSTFLAGS:-}"

# lockdep is on so the loom_lockdep suite (wait-for graph models) exists;
# the wrappers themselves are tracking-free pass-throughs under loom.
cargo test -p phoebe-common --features lockdep --test loom_trace_ring --test loom_snapshot --test loom_lockdep "$@"
cargo test -p phoebe-storage --test loom_latch --test loom_fault_ticket "$@"
cargo test -p phoebe-txn --test loom_twin "$@"
