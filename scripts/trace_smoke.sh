#!/usr/bin/env bash
# CI trace smoke: run exp1 briefly with the flight recorder enabled via
# PHOEBE_TRACE and validate the exported Chrome trace-event JSON: it must
# parse, carry at least one task span on every worker's scheduler track,
# and include the global-queue-depth counter track.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS="${PHOEBE_TRACE_SMOKE_WORKERS:-2}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
trace="$tmp/trace.json"

PHOEBE_TRACE="$trace" \
PHOEBE_EXP1_POINTS="$WORKERS" \
PHOEBE_DURATION_SECS="${PHOEBE_DURATION_SECS:-2}" \
  cargo run --release -q -p phoebe-bench --bin exp1_tpmc

test -s "$trace" || { echo "FAIL: $trace missing or empty"; exit 1; }

TRACE_PATH="$trace" WORKERS="$WORKERS" python3 -c '
import json, os, sys

with open(os.environ["TRACE_PATH"]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
workers = int(os.environ["WORKERS"])

# tid scheme: ring*4 + track, track 0 = the scheduler.
spans_per_worker = {w: 0 for w in range(workers)}
for ev in events:
    if ev.get("ph") == "X" and ev["tid"] % 4 == 0:
        w = ev["tid"] // 4
        if w in spans_per_worker:
            spans_per_worker[w] += 1
for w, n in spans_per_worker.items():
    if n < 1:
        sys.exit(f"FAIL: worker {w} scheduler track has no task spans")

depth = [e for e in events if e.get("ph") == "C" and e.get("name") == "global_queue_depth"]
if not depth:
    sys.exit("FAIL: no global_queue_depth counter track")

names = {e.get("name") for e in events}
interesting = sorted(names & {"poll", "commit", "group_commit", "yield"})
print(f"trace-smoke: {len(events)} events, "
      f"sched spans per worker {spans_per_worker}, "
      f"{len(depth)} queue-depth samples, tracks include {interesting}")
print("trace-smoke: OK")
'
