#!/usr/bin/env bash
# Run the concurrency-sensitive kernel modules under Miri (undefined-
# behavior interpreter). Miri executes ~1000x slower than native, so this
# targets the modules with unsafe/atomic cores rather than the whole suite:
#
#   * storage  latch     — OLC hybrid latch (UnsafeCell + version counter)
#   * common   snapshot  — AtomicPtr snapshot list (retire-on-drop)
#   * common   trace     — seq-validated overwrite-on-wrap trace ring
#   * txn      twin      — sharded twin tables + atomic bloom summaries
#
# The latch's raw optimistic read is a deliberate (validated) data race in
# normal builds; under `cfg(miri)` it routes through a non-blocking shared
# latch instead (see HybridLatch::optimistic_read), so Miri checks the rest
# of the latch protocol without tripping on the known-and-contained race.
#
# Requires: rustup nightly toolchain with the `miri` component.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup component list --toolchain nightly --installed 2>/dev/null | grep -q '^miri'; then
  echo "miri.sh: nightly miri component not installed." >&2
  echo "  rustup component add --toolchain nightly miri" >&2
  exit 2
fi

export MIRIFLAGS="${MIRIFLAGS:-}"

run() {
  echo "== miri: $*"
  cargo +nightly miri test "$@"
}

run -p phoebe-storage --lib latch::
run -p phoebe-common --lib -- snapshot:: trace::
run -p phoebe-txn --lib twin::

echo "miri: all targeted modules clean"
