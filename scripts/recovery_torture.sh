#!/usr/bin/env bash
# Crash-consistency torture: seeded fault injection + end-to-end WAL
# recovery with oracle invariants (see crates/bench/src/bin/recovery_torture.rs).
#
# Usage:
#   ./scripts/recovery_torture.sh             # default: seeds 1..50
#   PHOEBE_TORTURE_SEEDS=200 ./scripts/recovery_torture.sh
#   PHOEBE_TORTURE_START=1000 PHOEBE_TORTURE_SEEDS=16 ./scripts/recovery_torture.sh
#
# Every fault decision derives from the seed, so a failing run prints the
# seed to replay it: `recovery_torture --seed N`.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${PHOEBE_TORTURE_SEEDS:-50}"
START="${PHOEBE_TORTURE_START:-1}"

cargo run --release -q -p phoebe-bench --bin recovery_torture -- \
  --start "$START" --seeds "$SEEDS"
