#!/usr/bin/env bash
# Run the concurrency-sensitive kernel modules under ThreadSanitizer.
#
# TSan complements the loom models (scripts/loom.sh): loom exhaustively
# explores interleavings under sequential consistency; TSan observes real
# weak-memory executions of the same protocols at native speed. The latch's
# deliberate optimistic-read race is routed under a shared latch in this
# build via `--cfg phoebe_tsan` (see HybridLatch::optimistic_read), so any
# race TSan reports is a genuine finding.
#
# `-Zbuild-std` is REQUIRED: the workspace's locks bottom out in std
# primitives (the parking_lot shim wraps std::sync), and an uninstrumented
# std hides their acquire/release edges from TSan, producing false "races"
# on correctly lock-guarded code. Requires: nightly toolchain with the
# `rust-src` component (rustup component add --toolchain nightly rust-src).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup component list --toolchain nightly --installed 2>/dev/null | grep -q rust-src; then
  echo "tsan.sh: nightly rust-src component not installed (needed for -Zbuild-std)." >&2
  echo "  rustup component add --toolchain nightly rust-src" >&2
  exit 2
fi

TARGET="${TSAN_TARGET:-x86_64-unknown-linux-gnu}"
export RUSTFLAGS="-Zsanitizer=thread --cfg phoebe_tsan ${RUSTFLAGS:-}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

run() {
  echo "== tsan: $*"
  cargo +nightly test -Zbuild-std --target "$TARGET" "$@"
}

run -p phoebe-storage --lib latch::
run -p phoebe-common --lib -- snapshot:: trace::
run -p phoebe-txn --lib twin::

echo "tsan: all targeted modules clean"
