//! Offline stand-in for the `crossbeam` crate covering the two pieces
//! this workspace uses: `deque::Injector` (a shared MPMC injector
//! queue) and `channel::unbounded` (a cloneable-on-both-ends channel).
//! Implemented with std mutexes — correctness-first, lock-free-second;
//! the scheduler and AIO layers only need the semantics.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Result of a steal attempt, mirroring crossbeam's API.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
        /// Approximate length maintained outside the lock so `is_empty`
        /// stays cheap on the scheduler's idle path.
        len: AtomicUsize,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()), len: AtomicUsize::new(0) }
        }

        pub fn push(&self, task: T) {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(task);
            self.len.store(q.len(), Ordering::Release);
        }

        pub fn steal(&self) -> Steal<T> {
            let Ok(mut q) = self.queue.try_lock() else {
                return Steal::Retry;
            };
            match q.pop_front() {
                Some(v) => {
                    self.len.store(q.len(), Ordering::Release);
                    Steal::Success(v)
                }
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.len.load(Ordering::Acquire) == 0
        }

        pub fn len(&self) -> usize {
            self.len.load(Ordering::Acquire)
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create an unbounded MPMC channel. Both ends are cloneable; the
    /// channel disconnects when every `Sender` is dropped.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they
                // observe the disconnect.
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::deque::{Injector, Steal};

    #[test]
    fn injector_fifo_and_empty() {
        let inj = Injector::new();
        assert!(inj.is_empty());
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn channel_disconnects_when_senders_drop() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx2.recv(), Err(channel::RecvError));
    }

    #[test]
    fn channel_blocking_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(42u64).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }
}
