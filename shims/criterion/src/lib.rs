//! Offline stand-in for `criterion`. Runs each benchmark closure in a
//! warm-up pass followed by timed sample batches and prints a mean
//! ns/iter line — enough to compare hot paths locally without the real
//! statistical machinery.

use std::time::{Duration, Instant};

/// How batched inputs are sized; only a hint in the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time / self.sample_size as u32,
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.samples.is_empty() {
            0.0
        } else {
            b.samples.iter().sum::<f64>() / b.samples.len() as f64
        };
        println!("bench: {name:<44} {mean:>12.1} ns/iter ({} samples)", b.samples.len());
        self
    }

    pub fn final_summary(&self) {}
}

pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly until this sample's budget is spent;
    /// records mean ns/iter for the sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that fills the
        // sample budget without calling Instant::now in the hot loop.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(10));
        let iters = (self.budget.as_nanos() / one.as_nanos()).clamp(1, 10_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let total = t1.elapsed();
        self.samples.push(total.as_nanos() as f64 / iters as f64);
    }

    /// Batched form: `setup` is untimed, `routine` is timed per input.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget && iters < 10_000_000 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        if iters > 0 {
            self.samples.push(total.as_nanos() as f64 / iters as f64);
        }
    }
}

/// `criterion_group! { name = ..; config = ..; targets = .. }` and the
/// positional form `criterion_group!(name, target, ..)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
