//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. Exposes the non-poisoning parking_lot API shape the
//! workspace uses: `Mutex`, `RwLock`, `Condvar` (with `&mut guard`
//! wait), and the named guard types. Poisoned std locks are recovered
//! transparently (`into_inner`), matching parking_lot's behaviour of
//! never poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard wrapping the std guard in an `Option` so `Condvar::wait` can
/// temporarily take ownership through an `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

// -------------------------------------------------------------- Condvar

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[inline]
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_try_semantics() {
        let l = RwLock::new(1);
        let r = l.read();
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_none());
        drop(r);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
