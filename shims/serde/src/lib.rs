//! Offline stand-in for `serde`. The workspace derives
//! `Serialize`/`Deserialize` as a forward-compatibility marker but has
//! no wire format that goes through serde (JSON output is hand-rolled
//! in `phoebe_common::json`). The traits are blanket-implemented so
//! bounds are always satisfiable, and the derives are no-ops.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
