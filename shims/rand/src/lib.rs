//! Offline stand-in for the `rand` crate. Implements the slice of the
//! 0.10 API this workspace uses: `rngs::StdRng`, `SeedableRng`,
//! `RngExt::random_range` over integer/float ranges, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded
//! through splitmix64 — deterministic, fast, and statistically fine
//! for workload generation (not cryptographic).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width range: every u64 is a valid draw.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + unit * (self.end() - self.start())
    }
}

/// Extension methods over any `RngCore` (rand 0.10's `Rng`).
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<G: RngCore + ?Sized> RngExt for G {}

/// Back-compat alias: older call sites may import `Rng`.
pub use RngExt as Rng;

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_bounded() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let x: u32 = a.random_range(5..=15);
            assert!((5..=15).contains(&x));
            assert_eq!(x, b.random_range(5..=15));
        }
    }

    #[test]
    fn f64_range_is_half_open() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
