//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced doubles across a wide magnitude span.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 10f64.powi((rng.next_u64() % 61) as i32 - 30);
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * scale
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
