//! `string_regex` — a generator for the simple character-class regex
//! subset the workspace's tests use (e.g. `"[a-zA-Z0-9 ]{0,12}"`).
//! Supported syntax: literal characters and `[..]` classes (with `a-z`
//! ranges), each optionally followed by `{m}`, `{m,n}`, `*`, `+`, `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex for string strategy: {}", self.0)
    }
}

impl std::error::Error for Error {}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.usize_in(atom.min, atom.max + 1);
            for _ in 0..n {
                let idx = rng.usize_in(0, atom.choices.len());
                out.push(atom.choices[idx]);
            }
        }
        out
    }
}

pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or_else(|| Error(pattern.into()))?
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class).ok_or_else(|| Error(pattern.into()))?
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).ok_or_else(|| Error(pattern.into()))?;
                i += 1;
                vec![c]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => return Err(Error(pattern.into())),
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error(pattern.into()))?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let parts: Vec<&str> = body.split(',').collect();
                match parts.as_slice() {
                    [n] => {
                        let n = n.parse().map_err(|_| Error(pattern.into()))?;
                        (n, n)
                    }
                    [lo, hi] => (
                        lo.parse().map_err(|_| Error(pattern.into()))?,
                        hi.parse().map_err(|_| Error(pattern.into()))?,
                    ),
                    _ => return Err(Error(pattern.into())),
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        if max < min {
            return Err(Error(pattern.into()));
        }
        atoms.push(Atom { choices, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn expand_class(class: &[char]) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                out.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}
