//! Offline stand-in for `proptest`. Provides the strategy combinators,
//! collection/string generators, and the `proptest!`/`prop_assert*`
//! macros this workspace's property tests use. Cases are sampled
//! deterministically (seeded from the test path + case index) and
//! failures are reported by panic without shrinking — smaller surface,
//! same invariant coverage.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Entry macro: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident (
            $($arg:ident in $strat:expr),+ $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — panics on failure (no shrink pass in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_and_boxed_compose(x in any::<i64>().prop_map(|v| v / 2).boxed()) {
            prop_assert!(x <= i64::MAX / 2 + 1);
        }

        #[test]
        fn string_regex_class(s in crate::string::string_regex("[a-z]{1,4}").unwrap()) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn btree_set_sizes(s in crate::collection::btree_set(1u64..1000, 3..9)) {
            prop_assert!((3..9).contains(&s.len()));
        }
    }
}
