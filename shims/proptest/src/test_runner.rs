//! Deterministic RNG + per-test configuration for the proptest stand-in.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Runner configuration; only `cases` is meaningful in the stand-in.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// splitmix64 generator seeded from the test path and case index, so
/// every case of every test explores a distinct deterministic stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h = DefaultHasher::new();
        test_path.hash(&mut h);
        case.hash(&mut h);
        TestRng { state: h.finish() | 1 }
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi)` over `usize`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo + 1 {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }
}
