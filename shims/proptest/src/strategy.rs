//! The `Strategy` trait and core combinators (map, boxing, ranges).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing values of `Self::Value` from a deterministic
/// RNG. Unlike real proptest there is no value tree / shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` combinator: rejection sampling with a retry cap.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// Type-erased strategy, cloneable so one boxed strategy can seed
/// several collection generators.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

// Numeric ranges are strategies, e.g. `0u64..3` or `1u64..=1000`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A `Vec` of strategies is itself a strategy producing one value per
/// element — this is how heterogeneous "rows" are generated.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Constant strategies for literal values.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
