//! Collection strategies: `vec` and `btree_set` with size ranges.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive-lo / exclusive-hi size bounds, converted from the range
/// shapes proptest accepts at call sites.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Bounded rejection sampling: small element domains may not be
        // able to reach `target` distinct values.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(50) + 100 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}
