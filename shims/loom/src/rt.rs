//! The exploration engine: a CHESS-style bounded model checker.
//!
//! One model thread runs at a time. Every synchronization operation
//! (atomic access, lock acquire/release, spawn, join, yield) is a
//! *schedule point*: the running thread stops, the scheduler picks the
//! next thread to run from the runnable set, and the choice is recorded.
//! Executions are replayed depth-first over the recorded choice tree
//! until every schedule (within the preemption bound) has been explored.
//!
//! Context switches away from a still-runnable thread count as
//! *preemptions*; bounding those (CHESS' key insight) keeps the search
//! space polynomial while still covering the interleavings that expose
//! almost all real concurrency bugs. The bound is configurable via
//! `LOOM_MAX_PREEMPTIONS` (default 3).

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel panic payload used to unwind sibling threads once the model
/// has already failed; never reported as a failure itself.
pub(crate) struct Poisoned;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RunState {
    Runnable,
    Blocked,
    Finished,
}

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    /// Thread that hit the schedule point.
    pub from: usize,
    /// Runnable set at that point; `from` is first when runnable.
    pub runnable: Vec<usize>,
    /// Index into `runnable` that was chosen.
    pub idx: usize,
}

impl Choice {
    pub fn chosen(&self) -> usize {
        self.runnable[self.idx]
    }

    /// A switch away from a thread that could have kept running.
    pub fn is_preemption(&self) -> bool {
        self.runnable.first() == Some(&self.from) && self.idx != 0
    }
}

pub(crate) struct MuState {
    pub held: bool,
    pub waiters: Vec<usize>,
}

pub(crate) struct RwState {
    pub writer: bool,
    pub readers: usize,
    pub waiters: Vec<usize>,
}

pub(crate) struct Sched {
    pub threads: Vec<RunState>,
    pub current: usize,
    /// Choices made so far this execution.
    pub path: Vec<Choice>,
    /// Choice indices forced for the replay prefix of this execution.
    pub forced: Vec<usize>,
    pub done: bool,
    pub poisoned: bool,
    pub failure: Option<String>,
    pub mutexes: Vec<MuState>,
    pub rwlocks: Vec<RwState>,
    /// Per thread: tids blocked in `join` on it.
    pub join_waiters: Vec<Vec<usize>>,
    pub max_branches: usize,
}

pub(crate) struct Controller {
    pub sched: Mutex<Sched>,
    pub cv: Condvar,
    /// Distinguishes controllers across executions so lazily registered
    /// resources re-register on each run.
    pub generation: u64,
    pub os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

static GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's (controller, tid) pair, if it is a model thread.
pub(crate) fn ctx() -> Option<(Arc<Controller>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(v: Option<(Arc<Controller>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

fn poison_panic() -> ! {
    std::panic::panic_any(Poisoned)
}

/// Human-readable message for a panic payload; `None` for the internal
/// [`Poisoned`] marker (already-failed model unwinding its siblings).
pub(crate) fn payload_msg(p: &(dyn std::any::Any + Send)) -> Option<String> {
    if p.is::<Poisoned>() {
        return None;
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("model thread panicked (non-string payload)".to_string())
}

impl Controller {
    pub fn new(forced: Vec<usize>, max_branches: usize) -> Self {
        Controller {
            sched: Mutex::new(Sched {
                threads: vec![RunState::Runnable],
                current: 0,
                path: Vec::new(),
                forced,
                done: false,
                poisoned: false,
                failure: None,
                mutexes: Vec::new(),
                rwlocks: Vec::new(),
                join_waiters: vec![Vec::new()],
                max_branches,
            }),
            cv: Condvar::new(),
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    fn lock_sched(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pick the next thread to run; caller holds the lock and has already
    /// updated its own state. Does not wait.
    fn reschedule(&self, s: &mut MutexGuard<'_, Sched>, my: usize) {
        let mut runnable: Vec<usize> = (0..s.threads.len())
            .filter(|&t| s.threads[t] == RunState::Runnable && t != my)
            .collect();
        if s.threads[my] == RunState::Runnable {
            runnable.insert(0, my);
        }
        if runnable.is_empty() {
            if s.threads.iter().all(|t| *t == RunState::Finished) {
                s.done = true;
            } else {
                let blocked: Vec<usize> =
                    (0..s.threads.len()).filter(|&t| s.threads[t] == RunState::Blocked).collect();
                s.failure =
                    Some(format!("deadlock: every live thread is blocked (threads {blocked:?})"));
                s.poisoned = true;
            }
            self.cv.notify_all();
            return;
        }
        let pos = s.path.len();
        let idx = match s.forced.get(pos) {
            Some(&i) => i.min(runnable.len() - 1),
            None => 0,
        };
        let choice = Choice { from: my, runnable, idx };
        let next = choice.chosen();
        s.path.push(choice);
        if s.path.len() > s.max_branches {
            s.failure = Some(format!(
                "execution exceeded {} schedule points — livelock in the model? \
                 (raise LOOM_MAX_BRANCHES if the model is genuinely this long)",
                s.max_branches
            ));
            s.poisoned = true;
            self.cv.notify_all();
            return;
        }
        s.current = next;
        self.cv.notify_all();
    }

    /// Wait until this thread is scheduled. Panics with [`Poisoned`] if the
    /// model failed elsewhere.
    fn wait_for_turn(&self, mut s: MutexGuard<'_, Sched>, my: usize) {
        loop {
            if s.poisoned {
                drop(s);
                poison_panic();
            }
            if s.current == my && s.threads[my] == RunState::Runnable {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Controller::wait_for_turn`] but usable from `Drop` impls:
    /// returns instead of panicking when the model is poisoned.
    fn wait_for_turn_noexcept(&self, mut s: MutexGuard<'_, Sched>, my: usize) {
        loop {
            if s.poisoned || (s.current == my && s.threads[my] == RunState::Runnable) {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain schedule point: the calling thread stays runnable and the
    /// scheduler picks who runs next. Must not panic while the thread is
    /// already unwinding (atomics fire from guard `Drop` impls), so the
    /// poison propagation is suppressed during a panic.
    pub fn schedule_point(&self, my: usize) {
        let panicking = std::thread::panicking();
        let mut s = self.lock_sched();
        if s.poisoned {
            if panicking {
                return;
            }
            drop(s);
            poison_panic();
        }
        self.reschedule(&mut s, my);
        if panicking {
            self.wait_for_turn_noexcept(s, my);
        } else {
            self.wait_for_turn(s, my);
        }
    }

    pub fn register_thread(&self) -> usize {
        let mut s = self.lock_sched();
        s.threads.push(RunState::Runnable);
        s.join_waiters.push(Vec::new());
        s.threads.len() - 1
    }

    /// First wait of a freshly spawned model thread.
    pub fn wait_initial(&self, my: usize) {
        let s = self.lock_sched();
        self.wait_for_turn(s, my);
    }

    /// Mark `my` finished, wake joiners, schedule a successor. `panicked`
    /// carries the failure message for user panics (None for clean exit or
    /// [`Poisoned`] unwinds).
    pub fn finish(&self, my: usize, panicked: Option<String>) {
        let mut s = self.lock_sched();
        s.threads[my] = RunState::Finished;
        let waiters = std::mem::take(&mut s.join_waiters[my]);
        for w in waiters {
            s.threads[w] = RunState::Runnable;
        }
        if let Some(msg) = panicked {
            if s.failure.is_none() {
                s.failure = Some(msg);
            }
            s.poisoned = true;
            self.cv.notify_all();
            return;
        }
        if s.poisoned {
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut s, my);
    }

    /// Block until thread `target` finishes.
    pub fn join_thread(&self, my: usize, target: usize) {
        loop {
            let mut s = self.lock_sched();
            if s.poisoned {
                drop(s);
                poison_panic();
            }
            if s.threads[target] == RunState::Finished {
                // Joining is itself a schedule point.
                self.reschedule(&mut s, my);
                self.wait_for_turn(s, my);
                return;
            }
            s.join_waiters[target].push(my);
            s.threads[my] = RunState::Blocked;
            self.reschedule(&mut s, my);
            self.wait_for_turn(s, my);
        }
    }

    // ------------------------------------------------------------ mutex

    pub fn register_mutex(&self) -> usize {
        let mut s = self.lock_sched();
        s.mutexes.push(MuState { held: false, waiters: Vec::new() });
        s.mutexes.len() - 1
    }

    pub fn mutex_lock(&self, my: usize, id: usize) {
        self.schedule_point(my);
        loop {
            let mut s = self.lock_sched();
            if s.poisoned {
                drop(s);
                poison_panic();
            }
            if !s.mutexes[id].held {
                s.mutexes[id].held = true;
                return;
            }
            s.mutexes[id].waiters.push(my);
            s.threads[my] = RunState::Blocked;
            self.reschedule(&mut s, my);
            self.wait_for_turn(s, my);
        }
    }

    pub fn mutex_try_lock(&self, my: usize, id: usize) -> bool {
        self.schedule_point(my);
        let mut s = self.lock_sched();
        if s.mutexes[id].held {
            false
        } else {
            s.mutexes[id].held = true;
            true
        }
    }

    /// Called from guard `Drop`: must never panic.
    pub fn mutex_unlock(&self, my: usize, id: usize) {
        let mut s = self.lock_sched();
        s.mutexes[id].held = false;
        let waiters = std::mem::take(&mut s.mutexes[id].waiters);
        for w in waiters {
            s.threads[w] = RunState::Runnable;
        }
        if s.poisoned {
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut s, my);
        self.wait_for_turn_noexcept(s, my);
    }

    // ----------------------------------------------------------- rwlock

    pub fn register_rwlock(&self) -> usize {
        let mut s = self.lock_sched();
        s.rwlocks.push(RwState { writer: false, readers: 0, waiters: Vec::new() });
        s.rwlocks.len() - 1
    }

    pub fn rw_read(&self, my: usize, id: usize) {
        self.schedule_point(my);
        loop {
            let mut s = self.lock_sched();
            if s.poisoned {
                drop(s);
                poison_panic();
            }
            if !s.rwlocks[id].writer {
                s.rwlocks[id].readers += 1;
                return;
            }
            s.rwlocks[id].waiters.push(my);
            s.threads[my] = RunState::Blocked;
            self.reschedule(&mut s, my);
            self.wait_for_turn(s, my);
        }
    }

    pub fn rw_try_read(&self, my: usize, id: usize) -> bool {
        self.schedule_point(my);
        let mut s = self.lock_sched();
        if s.rwlocks[id].writer {
            false
        } else {
            s.rwlocks[id].readers += 1;
            true
        }
    }

    pub fn rw_write(&self, my: usize, id: usize) {
        self.schedule_point(my);
        loop {
            let mut s = self.lock_sched();
            if s.poisoned {
                drop(s);
                poison_panic();
            }
            let rw = &mut s.rwlocks[id];
            if !rw.writer && rw.readers == 0 {
                rw.writer = true;
                return;
            }
            s.rwlocks[id].waiters.push(my);
            s.threads[my] = RunState::Blocked;
            self.reschedule(&mut s, my);
            self.wait_for_turn(s, my);
        }
    }

    pub fn rw_try_write(&self, my: usize, id: usize) -> bool {
        self.schedule_point(my);
        let mut s = self.lock_sched();
        let rw = &mut s.rwlocks[id];
        if rw.writer || rw.readers > 0 {
            false
        } else {
            rw.writer = true;
            true
        }
    }

    /// Called from guard `Drop`: must never panic.
    pub fn rw_unlock(&self, my: usize, id: usize, was_writer: bool) {
        let mut s = self.lock_sched();
        if was_writer {
            s.rwlocks[id].writer = false;
        } else {
            s.rwlocks[id].readers -= 1;
        }
        let waiters = std::mem::take(&mut s.rwlocks[id].waiters);
        for w in waiters {
            s.threads[w] = RunState::Runnable;
        }
        if s.poisoned {
            self.cv.notify_all();
            return;
        }
        self.reschedule(&mut s, my);
        self.wait_for_turn_noexcept(s, my);
    }
}

// --------------------------------------------------------------- driver

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Find the next unexplored schedule (DFS backtrack) within the
/// preemption bound, as a forced choice-index prefix.
fn backtrack(mut path: Vec<Choice>, max_preemptions: usize) -> Option<Vec<usize>> {
    loop {
        let last = path.pop()?;
        let preemptions_used: usize = path.iter().filter(|c| c.is_preemption()).count();
        let from_runnable = last.runnable.first() == Some(&last.from);
        for idx in last.idx + 1..last.runnable.len() {
            let is_preemption = from_runnable && idx != 0;
            if !is_preemption || preemptions_used < max_preemptions {
                let mut forced: Vec<usize> = path.iter().map(|c| c.idx).collect();
                forced.push(idx);
                return Some(forced);
            }
        }
    }
}

fn run_one<F>(ctrl: &Arc<Controller>, f: Arc<F>) -> (Vec<Choice>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let c2 = Arc::clone(ctrl);
    let t0 = std::thread::spawn(move || {
        set_ctx(Some((Arc::clone(&c2), 0)));
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f()));
        let msg = out.err().and_then(|p| payload_msg(&*p));
        c2.finish(0, msg);
        set_ctx(None);
    });
    {
        let mut s = ctrl.lock_sched();
        while !s.done && !s.poisoned {
            s = ctrl.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
    t0.join().ok();
    for h in std::mem::take(&mut *ctrl.os_handles.lock().unwrap_or_else(|e| e.into_inner())) {
        h.join().ok();
    }
    let s = ctrl.lock_sched();
    (s.path.clone(), s.failure.clone())
}

/// Explore every schedule of `f` (up to the preemption bound and
/// iteration cap) and panic with a replayable counterexample on the first
/// failing one.
///
/// Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 3),
/// `LOOM_MAX_ITERATIONS` (default 20000), `LOOM_MAX_BRANCHES` (default
/// 50000), `LOOM_REPLAY` (comma-separated choice indices printed by a
/// failure — runs exactly that schedule), `LOOM_LOG` (print exploration
/// stats).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 3);
    let max_iters = env_usize("LOOM_MAX_ITERATIONS", 20_000);
    let max_branches = env_usize("LOOM_MAX_BRANCHES", 50_000);
    let replay: Option<Vec<usize>> = std::env::var("LOOM_REPLAY")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect());
    let replay_only = replay.is_some();

    let mut forced = replay.unwrap_or_default();
    let mut iters = 0usize;
    loop {
        iters += 1;
        let ctrl = Arc::new(Controller::new(std::mem::take(&mut forced), max_branches));
        let (path, failure) = run_one(&ctrl, Arc::clone(&f));
        if let Some(msg) = failure {
            let trail = path.iter().map(|c| c.idx.to_string()).collect::<Vec<_>>().join(",");
            panic!(
                "loom(shim): model failed on execution {iters}: {msg}\n  \
                 reproduce with LOOM_REPLAY=\"{trail}\""
            );
        }
        if replay_only {
            break;
        }
        match backtrack(path, max_preemptions) {
            Some(next) => forced = next,
            None => break,
        }
        if iters >= max_iters {
            eprintln!(
                "loom(shim): exploration capped at {max_iters} executions \
                 (raise LOOM_MAX_ITERATIONS for a deeper search)"
            );
            break;
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom(shim): explored {iters} executions");
    }
}
