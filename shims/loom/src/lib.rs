//! Offline stand-in for the `loom` model checker.
//!
//! Same shape as the real crate — `loom::model`, `loom::thread`,
//! `loom::sync::{Mutex, RwLock, atomic}`, `loom::cell::UnsafeCell` — but
//! implemented in-tree so the workspace builds without registry access.
//! The engine ([`rt`]) is a CHESS-style bounded model checker: real OS
//! threads run one at a time under a cooperative scheduler, every
//! synchronization operation is a schedule point, and schedules are
//! enumerated depth-first with a preemption bound.
//!
//! # What this models, and what it deliberately does not
//!
//! * **Modeled**: every interleaving of synchronization operations (up to
//!   the preemption bound), lost wake-ups, lock-order deadlocks, torn
//!   multi-step protocols, ABA-style races at schedule-point granularity.
//! * **Not modeled**: weak-memory reordering. All atomic operations
//!   execute with sequentially consistent semantics regardless of the
//!   `Ordering` passed, so a bug that *only* reproduces under
//!   relaxed/acquire-release reordering is invisible here (the real loom
//!   models those). The ThreadSanitizer job covers part of that gap with
//!   real hardware reordering under stress.
//!
//! Primitives used outside [`model`] fall back to their `std`
//! equivalents, so `cfg(loom)` builds of non-model unit tests still run.

mod rt;

pub use rt::model;

use rt::ctx;
use std::sync::Mutex as StdMutex;

/// Lazily binds an object to a per-execution controller resource id; the
/// generation check re-registers the resource on every new execution.
struct ResourceId {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl ResourceId {
    const fn new() -> Self {
        ResourceId { slot: StdMutex::new(None) }
    }

    fn get(&self, ctrl: &rt::Controller, register: impl FnOnce() -> usize) -> usize {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        match *slot {
            Some((generation, id)) if generation == ctrl.generation => id,
            _ => {
                let id = register();
                *slot = Some((ctrl.generation, id));
                id
            }
        }
    }
}

pub mod thread {
    use super::rt::{self, ctx};
    use std::panic::AssertUnwindSafe;
    use std::sync::{Arc, Mutex};

    enum Inner<T> {
        Real(std::thread::JoinHandle<T>),
        Model {
            ctrl: Arc<rt::Controller>,
            tid: usize,
            result: Arc<Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Join handle for a model (or fallback std) thread.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Wait for the thread; returns the closure's output like
        /// `std::thread::JoinHandle::join`.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Real(h) => h.join(),
                Inner::Model { ctrl, tid, result } => {
                    let (_, my) = ctx().expect("join called outside the model");
                    ctrl.join_thread(my, tid);
                    result
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("joined thread left no result")
                }
            }
        }
    }

    /// Spawn a thread under the model scheduler (or plainly, outside a
    /// model run).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            None => JoinHandle(Inner::Real(std::thread::spawn(f))),
            Some((ctrl, my)) => {
                let tid = ctrl.register_thread();
                let result = Arc::new(Mutex::new(None));
                let (c2, r2) = (Arc::clone(&ctrl), Arc::clone(&result));
                let os = std::thread::spawn(move || {
                    rt::set_ctx(Some((Arc::clone(&c2), tid)));
                    c2.wait_initial(tid);
                    let out = std::panic::catch_unwind(AssertUnwindSafe(f));
                    let msg = match &out {
                        Ok(_) => None,
                        Err(p) => rt::payload_msg(&**p),
                    };
                    *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    c2.finish(tid, msg);
                    rt::set_ctx(None);
                });
                ctrl.os_handles.lock().unwrap_or_else(|e| e.into_inner()).push(os);
                // Spawning is a schedule point: the child may run first.
                ctrl.schedule_point(my);
                JoinHandle(Inner::Model { ctrl, tid, result })
            }
        }
    }

    /// A pure schedule point (any runnable thread may be chosen).
    pub fn yield_now() {
        match ctx() {
            Some((ctrl, my)) => ctrl.schedule_point(my),
            None => std::thread::yield_now(),
        }
    }
}

pub mod hint {
    use super::ctx;

    /// Spin hint: a schedule point inside the model, a CPU hint outside.
    pub fn spin_loop() {
        match ctx() {
            Some((ctrl, my)) => ctrl.schedule_point(my),
            None => std::hint::spin_loop(),
        }
    }
}

pub mod cell {
    /// Transparent `UnsafeCell` wrapper mirroring the std API (`get`),
    /// plus loom's closure accessors (`with`/`with_mut`). The model
    /// serializes all execution, so no extra access tracking is needed
    /// for soundness of the model run itself.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    impl<T: ?Sized> UnsafeCell<T> {
        pub const fn get(&self) -> *mut T {
            self.0.get()
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }

        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

pub mod sync {
    pub use std::sync::Arc;

    use super::rt::{self, ctx};
    use super::ResourceId;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc as StdArc;

    // ------------------------------------------------------------ Mutex

    /// Model-checked mutex. Diverges from std/loom in returning guards
    /// directly (no `LockResult`); the only consumer is
    /// `phoebe_common::sync`, which wants the parking_lot shape anyway.
    pub struct Mutex<T: ?Sized> {
        id: ResourceId,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex { id: ResourceId::new(), inner: std::sync::Mutex::new(value) }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn model_id(&self, ctrl: &rt::Controller) -> usize {
            self.id.get(ctrl, || ctrl.register_mutex())
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            let model = ctx().map(|(ctrl, my)| {
                let id = self.model_id(&ctrl);
                ctrl.mutex_lock(my, id);
                (ctrl, my, id)
            });
            // With the model grant held, the real lock is uncontended.
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            MutexGuard { inner: Some(inner), model }
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match ctx() {
                Some((ctrl, my)) => {
                    let id = self.model_id(&ctrl);
                    if !ctrl.mutex_try_lock(my, id) {
                        return None;
                    }
                    let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                    Some(MutexGuard { inner: Some(inner), model: Some((ctrl, my, id)) })
                }
                None => match self.inner.try_lock() {
                    Ok(g) => Some(MutexGuard { inner: Some(g), model: None }),
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        Some(MutexGuard { inner: Some(e.into_inner()), model: None })
                    }
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(StdArc<rt::Controller>, usize, usize)>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock before the model release hands the
            // grant to a waiter.
            self.inner = None;
            if let Some((ctrl, my, id)) = self.model.take() {
                ctrl.mutex_unlock(my, id);
            }
        }
    }

    // ----------------------------------------------------------- RwLock

    /// Model-checked reader-writer lock (guard-returning API, as above).
    pub struct RwLock<T: ?Sized> {
        id: ResourceId,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock { id: ResourceId::new(), inner: std::sync::RwLock::new(value) }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        fn model_id(&self, ctrl: &rt::Controller) -> usize {
            self.id.get(ctrl, || ctrl.register_rwlock())
        }

        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let model = ctx().map(|(ctrl, my)| {
                let id = self.model_id(&ctrl);
                ctrl.rw_read(my, id);
                (ctrl, my, id)
            });
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            RwLockReadGuard { inner: Some(inner), model }
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let model = ctx().map(|(ctrl, my)| {
                let id = self.model_id(&ctrl);
                ctrl.rw_write(my, id);
                (ctrl, my, id)
            });
            let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
            RwLockWriteGuard { inner: Some(inner), model }
        }

        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            match ctx() {
                Some((ctrl, my)) => {
                    let id = self.model_id(&ctrl);
                    if !ctrl.rw_try_read(my, id) {
                        return None;
                    }
                    let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
                    Some(RwLockReadGuard { inner: Some(inner), model: Some((ctrl, my, id)) })
                }
                None => match self.inner.try_read() {
                    Ok(g) => Some(RwLockReadGuard { inner: Some(g), model: None }),
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        Some(RwLockReadGuard { inner: Some(e.into_inner()), model: None })
                    }
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
            }
        }

        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            match ctx() {
                Some((ctrl, my)) => {
                    let id = self.model_id(&ctrl);
                    if !ctrl.rw_try_write(my, id) {
                        return None;
                    }
                    let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
                    Some(RwLockWriteGuard { inner: Some(inner), model: Some((ctrl, my, id)) })
                }
                None => match self.inner.try_write() {
                    Ok(g) => Some(RwLockWriteGuard { inner: Some(g), model: None }),
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        Some(RwLockWriteGuard { inner: Some(e.into_inner()), model: None })
                    }
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(e) => e.into_inner(),
            }
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
        model: Option<(StdArc<rt::Controller>, usize, usize)>,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            if let Some((ctrl, my, id)) = self.model.take() {
                ctrl.rw_unlock(my, id, false);
            }
        }
    }

    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
        model: Option<(StdArc<rt::Controller>, usize, usize)>,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            if let Some((ctrl, my, id)) = self.model.take() {
                ctrl.rw_unlock(my, id, true);
            }
        }
    }

    // ---------------------------------------------------------- atomics

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::super::rt::ctx;

        #[inline]
        fn point() {
            if let Some((ctrl, my)) = ctx() {
                ctrl.schedule_point(my);
            }
        }

        /// Fence: a schedule point; the SC engine needs no memory effect.
        pub fn fence(_order: Ordering) {
            point();
        }

        // Every operation is a schedule point executed with SeqCst
        // semantics; the passed ordering is accepted but not weakened
        // (see the crate docs on what this shim does not model).
        macro_rules! atomic_int {
            ($name:ident, $std:ident, $ty:ty) => {
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    pub const fn new(v: $ty) -> Self {
                        $name(std::sync::atomic::$std::new(v))
                    }

                    pub fn into_inner(self) -> $ty {
                        self.0.into_inner()
                    }

                    pub fn get_mut(&mut self) -> &mut $ty {
                        self.0.get_mut()
                    }

                    pub fn load(&self, _o: Ordering) -> $ty {
                        point();
                        self.0.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $ty, _o: Ordering) {
                        point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    pub fn fetch_or(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_or(v, Ordering::SeqCst)
                    }

                    pub fn fetch_and(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_and(v, Ordering::SeqCst)
                    }

                    pub fn fetch_xor(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_xor(v, Ordering::SeqCst)
                    }

                    pub fn fetch_max(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_max(v, Ordering::SeqCst)
                    }

                    pub fn fetch_min(&self, v: $ty, _o: Ordering) -> $ty {
                        point();
                        self.0.fetch_min(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$ty, $ty> {
                        point();
                        self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        s: Ordering,
                        f: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, s, f)
                    }
                }
            };
        }

        atomic_int!(AtomicU8, AtomicU8, u8);
        atomic_int!(AtomicU16, AtomicU16, u16);
        atomic_int!(AtomicU32, AtomicU32, u32);
        atomic_int!(AtomicU64, AtomicU64, u64);
        atomic_int!(AtomicUsize, AtomicUsize, usize);
        atomic_int!(AtomicI64, AtomicI64, i64);

        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub const fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            pub fn into_inner(self) -> bool {
                self.0.into_inner()
            }

            pub fn load(&self, _o: Ordering) -> bool {
                point();
                self.0.load(Ordering::SeqCst)
            }

            pub fn store(&self, v: bool, _o: Ordering) {
                point();
                self.0.store(v, Ordering::SeqCst)
            }

            pub fn swap(&self, v: bool, _o: Ordering) -> bool {
                point();
                self.0.swap(v, Ordering::SeqCst)
            }

            pub fn fetch_or(&self, v: bool, _o: Ordering) -> bool {
                point();
                self.0.fetch_or(v, Ordering::SeqCst)
            }

            pub fn fetch_and(&self, v: bool, _o: Ordering) -> bool {
                point();
                self.0.fetch_and(v, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<bool, bool> {
                point();
                self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn compare_exchange_weak(
                &self,
                current: bool,
                new: bool,
                s: Ordering,
                f: Ordering,
            ) -> Result<bool, bool> {
                self.compare_exchange(current, new, s, f)
            }
        }

        #[derive(Debug)]
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> AtomicPtr<T> {
            pub const fn new(p: *mut T) -> Self {
                AtomicPtr(std::sync::atomic::AtomicPtr::new(p))
            }

            pub fn into_inner(self) -> *mut T {
                self.0.into_inner()
            }

            pub fn load(&self, _o: Ordering) -> *mut T {
                point();
                self.0.load(Ordering::SeqCst)
            }

            pub fn store(&self, p: *mut T, _o: Ordering) {
                point();
                self.0.store(p, Ordering::SeqCst)
            }

            pub fn swap(&self, p: *mut T, _o: Ordering) -> *mut T {
                point();
                self.0.swap(p, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<*mut T, *mut T> {
                point();
                self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    /// The classic lost update: unsynchronized load+store must be caught.
    #[test]
    #[should_panic(expected = "lost update")]
    fn finds_lost_update() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
    }

    /// The fixed version (atomic RMW) passes every schedule.
    #[test]
    fn rmw_has_no_lost_update() {
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    /// Opposite lock order must be reported as a deadlock, not hang.
    #[test]
    #[should_panic(expected = "deadlock")]
    fn finds_lock_order_deadlock() {
        super::model(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = super::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_gb, _ga));
            t.join().unwrap();
        });
    }

    /// Mutexes serialize: increment under a lock never loses updates.
    #[test]
    fn mutex_serializes() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        let mut g = n.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
    }

    /// Primitives work outside `model` (std fallback).
    #[test]
    fn fallback_outside_model() {
        let n = AtomicU64::new(1);
        assert_eq!(n.fetch_add(1, Ordering::SeqCst), 1);
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let t = super::thread::spawn(|| 7u32);
        assert_eq!(t.join().unwrap(), 7);
    }
}
