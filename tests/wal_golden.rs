//! Golden-file test pinning the WAL record wire format byte-for-byte.
//!
//! The on-disk framing is `[len u32 le][crc32 u32 le][payload]` with the
//! payload laid out as `xid u64, gsn u64, lsn u64, body-tag u8, ...`. Any
//! change to this layout silently breaks recovery of logs written by
//! earlier builds, so the exact bytes are pinned in
//! `tests/fixtures/wal_records.hex` (one hex-encoded frame per line).
//!
//! If you change the format *deliberately*, regenerate the fixture with
//! `PHOEBE_REGEN_FIXTURES=1 cargo test -p phoebe-bench --test wal_golden`
//! and bump the recovery code to handle both layouts (or document the
//! log-format break in DESIGN.md).

use phoebe_common::ids::{Gsn, Lsn, RowId, TableId, Xid};
use phoebe_storage::schema::Value;
use phoebe_wal::{crc32, RecordBody, WalRecord};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/wal_records.hex")
}

/// One record per body variant, together covering every value tag
/// (I64, I32, F64, Str) and both empty and multi-entry tuples/deltas.
fn golden_records() -> Vec<WalRecord> {
    let rec = |xid: u64, gsn: u64, lsn: u64, body: RecordBody| WalRecord {
        xid: Xid::from_start_ts(xid),
        gsn: Gsn(gsn),
        lsn: Lsn(lsn),
        body,
    };
    vec![
        rec(1, 10, 1, RecordBody::Begin),
        rec(
            1,
            11,
            2,
            RecordBody::Insert {
                table: TableId(3),
                row: RowId(42),
                tuple: vec![
                    Value::I64(-7),
                    Value::I32(1_000_000),
                    Value::F64(2.5),
                    Value::Str("phoebe".into()),
                ],
            },
        ),
        rec(
            1,
            12,
            3,
            RecordBody::Update {
                table: TableId(3),
                row: RowId(42),
                delta: vec![(0, Value::I64(i64::MAX)), (3, Value::Str(String::new()))],
            },
        ),
        rec(2, 13, 4, RecordBody::Delete { table: TableId(u32::MAX), row: RowId(u64::MAX) }),
        rec(1, 14, 5, RecordBody::Commit { cts: 99 }),
        rec(2, 15, 6, RecordBody::Abort),
        // Degenerate shapes: empty tuple insert and empty delta update.
        rec(3, 16, 7, RecordBody::Insert { table: TableId(0), row: RowId(0), tuple: vec![] }),
        rec(3, 17, 8, RecordBody::Update { table: TableId(0), row: RowId(0), delta: vec![] }),
    ]
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(line: &str) -> Vec<u8> {
    assert!(line.len().is_multiple_of(2), "odd hex line length");
    (0..line.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&line[i..i + 2], 16).expect("hex digit"))
        .collect()
}

#[test]
fn wal_record_encoding_matches_golden_fixture() {
    let records = golden_records();
    let encoded: Vec<String> = records
        .iter()
        .map(|r| {
            let mut buf = Vec::new();
            r.encode_into(&mut buf);
            to_hex(&buf)
        })
        .collect();

    let path = fixture_path();
    if std::env::var("PHOEBE_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encoded.join("\n") + "\n").unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }

    let fixture = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let golden: Vec<&str> = fixture.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(golden.len(), encoded.len(), "fixture record count");
    for (i, (want, got)) in golden.iter().zip(&encoded).enumerate() {
        assert_eq!(
            got, want,
            "record {i} ({:?}) no longer encodes to its pinned bytes — \
             this is an on-disk log format break",
            records[i].body
        );
    }
}

#[test]
fn golden_fixture_decodes_back_to_the_records() {
    if std::env::var("PHOEBE_REGEN_FIXTURES").is_ok() {
        return;
    }
    let fixture = std::fs::read_to_string(fixture_path()).expect("fixture");
    let records = golden_records();
    // Decode each line independently and the concatenation as one log.
    let mut log = Vec::new();
    for (i, line) in fixture.lines().filter(|l| !l.is_empty()).enumerate() {
        let bytes = from_hex(line);
        // Frame integrity: the stored CRC must match the payload.
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(bytes.len(), 8 + len, "record {i}: frame length");
        assert_eq!(crc, crc32(&bytes[8..]), "record {i}: stored CRC");
        let (rec, next) = WalRecord::decode_at(&bytes, 0).unwrap().expect("one record");
        assert_eq!(rec, records[i], "record {i} round-trip");
        assert_eq!(next, bytes.len(), "record {i} consumes the whole frame");
        log.extend_from_slice(&bytes);
    }
    let mut at = 0;
    let mut decoded = Vec::new();
    while let Some((rec, next)) = WalRecord::decode_at(&log, at).unwrap() {
        decoded.push(rec);
        at = next;
    }
    assert_eq!(decoded, records, "concatenated log decodes to the full set");
}
