//! Cross-crate integration: the full stack (runtime + storage + txn + wal +
//! kernel + TPC-C) exercised together, including restart recovery of a
//! TPC-C prefix.

use phoebe_common::KernelConfig;
use phoebe_core::Database;
use phoebe_runtime::block_on;
use phoebe_storage::schema::Value;
use phoebe_tpcc::conn::TpccConn;
use phoebe_tpcc::schema::{cols, Idx};
use phoebe_tpcc::txns::{self, Params};
use phoebe_tpcc::{gen::TpccRng, load, PhoebeEngine, TpccEngine, TpccScale};

fn fresh(tag: &str) -> KernelConfig {
    let mut cfg = KernelConfig::for_tests();
    cfg.workers = 2;
    cfg.slots_per_worker = 8;
    cfg.buffer_frames = 2048;
    cfg.data_dir = std::env::temp_dir().join(format!(
        "phoebe-ws-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    cfg
}

#[test]
fn tpcc_workload_survives_restart_via_wal_replay() {
    let cfg = fresh("restart");
    let wal_dir = cfg.data_dir.join("wal");
    let scale = TpccScale::micro();
    let params = Params { warehouses: 1, scale };

    // Phase 1: load + run a deterministic prefix, remember a counter.
    let next_o_id_before_crash = {
        let db = Database::open(cfg.clone()).unwrap();
        let engine = PhoebeEngine::create(db).unwrap();
        block_on(load(&engine, 1, scale, 1234)).unwrap();
        let mut rng = TpccRng::seeded(99);
        block_on(async {
            for _ in 0..15 {
                let mut conn = engine.begin();
                match txns::new_order(&mut conn, &mut rng, &params, 1).await {
                    Ok(true) => conn.commit().await.unwrap(),
                    Ok(false) => conn.abort(),
                    Err(e) => panic!("new_order: {e}"),
                }
            }
        });
        let counters: Vec<i32> = block_on(async {
            let mut c = engine.begin();
            let mut out = Vec::new();
            for d in 1..=scale.districts_per_warehouse {
                let (_, row) = c
                    .lookup(Idx::DistrictPk, vec![Value::I32(1), Value::I32(d as i32)])
                    .await
                    .unwrap()
                    .unwrap();
                out.push(row[cols::D_NEXT_O_ID].as_i32());
            }
            c.commit().await.unwrap();
            out
        });
        engine.db.shutdown();
        counters
    };

    // Phase 2: fresh kernel + schema, replay the WAL, verify the counters.
    let cfg2 = fresh("restart-recovered");
    let db = Database::open(cfg2).unwrap();
    let engine = PhoebeEngine::create(db).unwrap();
    let replayed = engine.db.replay_wal(&wal_dir).unwrap();
    assert!(replayed > 0, "loader + workload transactions must replay");
    let counters_after: Vec<i32> = block_on(async {
        let mut c = engine.begin();
        let mut out = Vec::new();
        for d in 1..=scale.districts_per_warehouse {
            let (_, row) = c
                .lookup(Idx::DistrictPk, vec![Value::I32(1), Value::I32(d as i32)])
                .await
                .unwrap()
                .unwrap();
            out.push(row[cols::D_NEXT_O_ID].as_i32());
        }
        c.commit().await.unwrap();
        out
    });
    assert_eq!(counters_after, next_o_id_before_crash, "replay restores counters");
    engine.db.shutdown();
}

/// Crash with fault injection, then reopen the *same* directory: recovery
/// runs automatically inside `Database::open` — catalog from the manifest,
/// data from the WAL — with committed rows visible and the uncommitted
/// tail discarded. (The seeded many-seed version of this lives in
/// `recovery_torture`; this pins the single deterministic path in-tree.)
#[test]
fn reopen_after_crash_recovers_automatically() {
    use phoebe_common::fault::FaultConfig;
    use phoebe_common::ids::RowId;
    use phoebe_core::prelude::{row, ColType, IsolationLevel, Schema};

    let mut cfg = fresh("auto-recover");
    cfg.fault = Some(FaultConfig::crash_only(42));
    let dir = cfg.data_dir.clone();

    {
        let db = Database::open(cfg).unwrap();
        let t = db
            .create_table("events", Schema::new(vec![("id", ColType::I64), ("v", ColType::I64)]))
            .unwrap();
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        block_on(tx.insert(&t, row![1i64, 10i64])).unwrap();
        block_on(tx.insert(&t, row![2i64, 20i64])).unwrap();
        block_on(tx.commit()).unwrap();

        // An in-flight transaction that never commits before the crash.
        let mut tx2 = db.begin(IsolationLevel::ReadCommitted);
        block_on(tx2.insert(&t, row![3i64, 30i64])).unwrap();

        db.fault_sim().expect("fault injection enabled").crash();
        assert!(block_on(tx2.commit()).is_err(), "post-crash commit must not ack");
        db.shutdown();
    }

    // Reopen the same directory, no fault layer: `Database::open` recovers.
    let mut cfg2 = fresh("auto-recover-2");
    cfg2.data_dir = dir;
    let db = Database::open(cfg2).unwrap();
    assert!(db.recovery_info().txns > 0, "recovery replayed the committed txn");
    let t = db.table("events").expect("catalog restored from manifest");
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let r1 = tx.read(&t, RowId(1)).unwrap().expect("committed row 1 survives");
    assert_eq!(r1.i64("v"), 10);
    let r2 = tx.read(&t, RowId(2)).unwrap().expect("committed row 2 survives");
    assert_eq!(r2.i64("v"), 20);
    assert!(tx.read(&t, RowId(3)).unwrap().is_none(), "uncommitted tail discarded");
    db.shutdown();
}

#[test]
fn metrics_breakdown_accounts_all_components() {
    use phoebe_common::metrics::{Component, COMPONENTS};
    let cfg = fresh("metrics");
    let db = Database::open(cfg).unwrap();
    let engine = PhoebeEngine::create(db).unwrap();
    let scale = TpccScale::micro();
    block_on(load(&engine, 1, scale, 7)).unwrap();
    let params = Params { warehouses: 1, scale };
    let mut rng = TpccRng::seeded(3);
    let before = engine.db.metrics.snapshot();
    let t0 = std::time::Instant::now();
    block_on(async {
        for _ in 0..30 {
            let mut conn = engine.begin();
            match txns::new_order(&mut conn, &mut rng, &params, 1).await {
                Ok(true) => conn.commit().await.unwrap(),
                _ => conn.abort(),
            }
        }
    });
    let busy = t0.elapsed().as_nanos() as u64;
    let delta = engine.db.metrics.snapshot().delta_since(&before);
    let shares = delta.breakdown(busy);
    assert_eq!(shares.len(), COMPONENTS.len());
    let total: f64 = shares.iter().map(|(_, s)| *s).sum();
    assert!((total - 1.0).abs() < 1e-9, "shares sum to 1");
    assert!(delta.component_ns(Component::Wal) > 0, "WAL work was accounted");
    assert!(delta.component_ns(Component::Mvcc) > 0, "MVCC work was accounted");
    engine.db.shutdown();
}
