//! Loom models for the hybrid latch (OLC) protocol.
//!
//! Run with `scripts/loom.sh` or
//! `RUSTFLAGS="--cfg loom" cargo test -p phoebe-storage --test loom_latch`.
//!
//! The property under test is the OLC contract: an optimistic read that
//! *validates* must have observed a consistent (not torn) snapshot of the
//! protected data, under every interleaving with a concurrent writer the
//! bounded checker can enumerate.
#![cfg(loom)]

use loom::sync::Arc;
use phoebe_storage::latch::HybridLatch;

/// A writer mutates two halves of the payload with a forced scheduling
/// point between them — the widest possible torn-write window. A
/// validated optimistic read must still only ever see the old or the new
/// pair, never a mix.
#[test]
fn optimistic_read_never_torn_by_writer() {
    loom::model(|| {
        let latch = Arc::new(HybridLatch::new([0u64; 2]));
        let writer = {
            let latch = Arc::clone(&latch);
            loom::thread::spawn(move || {
                let mut g = latch.write();
                g[0] = 1;
                // Widen the half-written window to a schedule point.
                loom::thread::yield_now();
                g[1] = 1;
            })
        };
        if let Some(pair) = latch.optimistic(|d| *d) {
            assert!(
                pair == [0, 0] || pair == [1, 1],
                "validated optimistic read saw a torn pair: {pair:?}"
            );
        }
        writer.join().unwrap();
        assert_eq!(latch.optimistic(|d| *d), Some([1, 1]));
    });
}

/// Version validation must fail when a full write cycle (acquire, mutate,
/// release) happened after the version snapshot — even though the latch
/// is free again at validation time.
#[test]
fn validation_fails_after_writer_release() {
    loom::model(|| {
        let latch = Arc::new(HybridLatch::new(0u64));
        let seen = latch.optimistic_version().expect("no writer yet");
        let writer = {
            let latch = Arc::clone(&latch);
            loom::thread::spawn(move || {
                *latch.write() = 7;
            })
        };
        writer.join().unwrap();
        assert!(!latch.validate(seen), "stale version must not validate");
        assert_eq!(latch.optimistic(|v| *v), Some(7));
    });
}

/// The contention fallback terminates and returns a committed value under
/// every schedule against a concurrent writer (no torn 0→1 intermediate
/// exists for a single u64, so any result in {0, 1} is linearizable).
#[test]
fn optimistic_or_shared_returns_committed_value() {
    loom::model(|| {
        let latch = Arc::new(HybridLatch::new(0u64));
        let writer = {
            let latch = Arc::clone(&latch);
            loom::thread::spawn(move || {
                *latch.write() = 1;
            })
        };
        let v = latch.optimistic_or_shared(1, |v| *v);
        assert!(v == 0 || v == 1, "unexpected value {v}");
        writer.join().unwrap();
    });
}

/// Two writers serialize through the exclusive mode: both increments land
/// and the version counter advances twice per acquisition.
#[test]
fn writers_serialize_and_version_advances() {
    loom::model(|| {
        let latch = Arc::new(HybridLatch::new(0u64));
        let before = latch.optimistic_version().expect("free at start");
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let latch = Arc::clone(&latch);
                loom::thread::spawn(move || {
                    *latch.write() += 1;
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(*latch.read(), 2, "lost increment");
        let after = latch.optimistic_version().expect("free at end");
        assert_ne!(before, after, "two write cycles must change the version");
    });
}
