//! Property-based tests over the storage substrates: PAX layout, the
//! frozen-block codec, node split invariants, and page disk encoding.

use phoebe_common::ids::RowId;
use phoebe_storage::node::{IndexLeaf, Page, INDEX_LEAF_CAP, MAX_KEY};
use phoebe_storage::pax::{PaxLayout, PaxLeaf};
use phoebe_storage::schema::{ColType, Schema, Value};
use phoebe_storage::tier::codec;
use proptest::prelude::*;

fn arb_value(ty: ColType) -> BoxedStrategy<Value> {
    match ty {
        ColType::I64 => any::<i64>().prop_map(Value::I64).boxed(),
        ColType::I32 => any::<i32>().prop_map(Value::I32).boxed(),
        ColType::F64 => any::<i64>().prop_map(|v| Value::F64(v as f64 / 7.0)).boxed(),
        ColType::Str(max) => proptest::string::string_regex("[a-zA-Z0-9 ]{0,12}")
            .unwrap()
            .prop_map(move |s| {
                let mut s = s;
                s.truncate(max as usize);
                Value::Str(s)
            })
            .boxed(),
    }
}

fn test_schema() -> Schema {
    Schema::new(vec![
        ("a", ColType::I64),
        ("b", ColType::I32),
        ("c", ColType::F64),
        ("d", ColType::Str(12)),
    ])
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    let types: Vec<ColType> = test_schema().types().to_vec();
    proptest::collection::vec(types.into_iter().map(arb_value).collect::<Vec<_>>(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pax_roundtrips_arbitrary_rows(rows in arb_rows(60)) {
        let schema = test_schema();
        let layout = PaxLayout::for_schema(&schema);
        let mut leaf = PaxLeaf::new();
        for (i, row) in rows.iter().enumerate() {
            leaf.append(&layout, RowId(i as u64 * 3 + 1), row);
        }
        for (i, row) in rows.iter().enumerate() {
            let idx = leaf.find(RowId(i as u64 * 3 + 1)).expect("present");
            prop_assert_eq!(&leaf.read_row(&layout, idx), row);
        }
        // Absent ids (between the stride) must not be found.
        prop_assert!(leaf.find(RowId(2)).is_none());
    }

    #[test]
    fn frozen_codec_roundtrips(rows in arb_rows(200), start in 1u64..1000) {
        let types: Vec<ColType> = test_schema().types().to_vec();
        let ids: Vec<RowId> = (0..rows.len() as u64).map(|i| RowId(start + i * 2)).collect();
        let blob = codec::encode_block(&types, &ids, &rows);
        let (ids2, rows2) = codec::decode_block(&blob).unwrap();
        prop_assert_eq!(ids, ids2);
        prop_assert_eq!(rows, rows2);
    }

    #[test]
    fn frozen_codec_rejects_any_truncation(rows in arb_rows(50)) {
        let types: Vec<ColType> = test_schema().types().to_vec();
        let ids: Vec<RowId> = (1..=rows.len() as u64).map(RowId).collect();
        let blob = codec::encode_block(&types, &ids, &rows);
        for cut in (0..blob.len()).step_by((blob.len() / 17).max(1)) {
            if let Ok((ids2, _)) = codec::decode_block(&blob[..cut]) {
                prop_assert!(ids2.len() <= ids.len());
            }
        }
    }

    #[test]
    fn index_leaf_stays_sorted_and_total(keys in proptest::collection::btree_set(
        proptest::collection::vec(any::<u8>(), 1..MAX_KEY), 1..INDEX_LEAF_CAP)) {
        let mut leaf = IndexLeaf::default();
        for (i, k) in keys.iter().enumerate() {
            prop_assert!(leaf.insert(k, i as u64), "fresh keys insert");
        }
        for w in 1..leaf.count as usize {
            prop_assert!(leaf.key(w - 1) < leaf.key(w));
        }
        // Splits partition without loss.
        let (right, sep) = {
            let mut l2 = IndexLeaf::default();
            for (i, k) in keys.iter().enumerate() {
                l2.insert(k, i as u64);
            }
            l2.split()
        };
        let mut left_only = IndexLeaf::default();
        for (i, k) in keys.iter().enumerate() {
            left_only.insert(k, i as u64);
        }
        let (right2, _) = left_only.split();
        let _ = right2;
        for (i, k) in keys.iter().enumerate() {
            let hit = if k.as_slice() < sep.as_slice() {
                left_only.get(k)
            } else {
                right.get(k)
            };
            prop_assert_eq!(hit, Some(i as u64), "key {:?} sep {:?}", k, sep);
        }
    }

    #[test]
    fn pages_roundtrip_disk_encoding(rows in arb_rows(40)) {
        let schema = test_schema();
        let layout = PaxLayout::for_schema(&schema);
        let mut leaf = PaxLeaf::new();
        for (i, row) in rows.iter().enumerate() {
            leaf.append(&layout, RowId(i as u64 + 1), row);
        }
        let expect_count = leaf.count;
        let mut buf = vec![0u8; phoebe_common::config::PAGE_SIZE];
        Page::TableLeaf(leaf).encode(&mut buf);
        let back = Page::decode(&buf).unwrap();
        let Page::TableLeaf(l2) = back else { panic!("kind changed") };
        prop_assert_eq!(l2.count, expect_count);
        for (i, row) in rows.iter().enumerate() {
            let idx = l2.find(RowId(i as u64 + 1)).expect("present after disk");
            prop_assert_eq!(&l2.read_row(&layout, idx), row);
        }
    }
}
