//! Loom model for the [`FaultTicket`] publish/consume protocol.
//!
//! Run with `scripts/loom.sh` or
//! `RUSTFLAGS="--cfg loom" cargo test -p phoebe-storage --test loom_fault_ticket`.
//!
//! The property under test: a consumer whose `is_done()` poll observes
//! completion must also observe the published result (release store pairs
//! with acquire load), the result is consumed exactly once, and the
//! protocol never deadlocks or panics under any interleaving of the
//! loader's `complete` with the cursor's poll/take cycle.
#![cfg(loom)]

use loom::sync::Arc;
use phoebe_storage::FaultTicket;

/// The core handshake: loader publishes, cursor polls then takes. If the
/// poll says done, the take must yield the result — never `None`, never a
/// stale value.
#[test]
fn done_implies_result_visible() {
    loom::model(|| {
        let ticket = FaultTicket::detached();
        let loader = {
            let ticket = Arc::clone(&ticket);
            loom::thread::spawn(move || {
                ticket.complete(Ok(42));
            })
        };
        if ticket.is_done() {
            let r = ticket.take().expect("done ticket must have a result");
            assert_eq!(r.unwrap(), 42, "acquire must see the published frame id");
        }
        loader.join().unwrap();
        // After the loader is joined the result is definitely published;
        // it may already have been consumed by the branch above, but a
        // second take never panics and never yields a result twice.
        match ticket.take() {
            Some(r) => assert_eq!(r.unwrap(), 42),
            None => {} // consumed above
        }
    });
}

/// Concurrent pollers (the batch round-robin may poll from the worker
/// while the drop path also checks): the result is handed out at most
/// once across racing `take` calls.
#[test]
fn take_is_exactly_once_across_racers() {
    loom::model(|| {
        let ticket = FaultTicket::detached();
        let loader = {
            let ticket = Arc::clone(&ticket);
            loom::thread::spawn(move || {
                ticket.complete(Ok(7));
            })
        };
        let racer = {
            let ticket = Arc::clone(&ticket);
            loom::thread::spawn(move || ticket.take().map(|r| r.unwrap()))
        };
        let mine = ticket.take().map(|r| r.unwrap());
        let theirs = racer.join().unwrap();
        loader.join().unwrap();
        let wins = [mine, theirs].iter().filter(|t| t.is_some()).count();
        assert!(wins <= 1, "result consumed more than once: {mine:?} {theirs:?}");
        for t in [mine, theirs].into_iter().flatten() {
            assert_eq!(t, 7);
        }
    });
}
