//! PAX (Partition Attributes Across) leaf pages (§5.1/§5.2).
//!
//! PhoebeDB stores base-table tuples in PAX format: within one page, values
//! are grouped per column into *minipages*, so a scan of one column touches
//! contiguous bytes (the property the paper keeps for future HTAP), while a
//! single-tuple access still costs one page. The leaf's byte area holds the
//! row-id minipage first, then one minipage per schema column; all slots are
//! fixed width, so every update is in-place (§5.2: "both hot and cold pages
//! support in-place updates").
//!
//! Row ids are monotonically increasing and rows are appended in order, so
//! the row-id minipage is sorted and point lookups are binary searches. A
//! leaf's row-id range is immutable once written: the table B-Tree grows by
//! adding fresh rightmost leaves rather than redistributing rows, which is
//! what makes (table, first_row_id) a stable page identity for twin tables
//! and makes freezing (consecutive leaves → one compressed block) safe.

use crate::schema::{ColType, Schema, Value};
use phoebe_common::ids::RowId;

/// Bytes available for minipages in a table leaf.
pub const LEAF_BYTES: usize = 15 * 1024;

/// Hard cap on rows per leaf (bounds the validity bitmap).
pub const MAX_ROWS_PER_PAGE: usize = 1024;

/// Precomputed PAX geometry for one schema: where each column's minipage
/// starts and how many rows fit. Computed once per table and shared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaxLayout {
    /// Rows per page.
    pub capacity: usize,
    /// Byte offset of each column's minipage inside the leaf data area.
    /// Offset 0 is the row-id minipage; `col_offsets[i]` is column i.
    pub col_offsets: Vec<usize>,
    /// Slot width of each column.
    pub widths: Vec<usize>,
    /// Column types (copied from the schema for slot encoding).
    pub types: Vec<ColType>,
}

impl PaxLayout {
    pub fn for_schema(schema: &Schema) -> Self {
        let row_width = 8 + schema.row_width(); // + row-id slot
        let capacity = (LEAF_BYTES / row_width).min(MAX_ROWS_PER_PAGE);
        assert!(capacity >= 2, "schema row too wide for a page");
        let mut col_offsets = Vec::with_capacity(schema.num_cols());
        let mut widths = Vec::with_capacity(schema.num_cols());
        let mut at = 8 * capacity; // row-id minipage first
        for i in 0..schema.num_cols() {
            let w = schema.col_type(i).slot_width();
            col_offsets.push(at);
            widths.push(w);
            at += w * capacity;
        }
        debug_assert!(at <= LEAF_BYTES);
        PaxLayout { capacity, col_offsets, widths, types: schema.types().to_vec() }
    }

    #[inline]
    fn slot(&self, col: usize, row: usize) -> std::ops::Range<usize> {
        debug_assert!(row < self.capacity);
        let start = self.col_offsets[col] + row * self.widths[col];
        start..start + self.widths[col]
    }
}

/// A PAX table leaf. Fixed-size inline storage only (see the latch module's
/// optimistic-read contract).
pub struct PaxLeaf {
    /// Number of rows appended (including logically deleted ones).
    pub count: u16,
    /// Validity bitmap: bit i set ⇒ row i not physically deleted.
    pub valid: [u64; MAX_ROWS_PER_PAGE / 64],
    /// Minipage byte area.
    pub data: [u8; LEAF_BYTES],
}

impl Default for PaxLeaf {
    fn default() -> Self {
        PaxLeaf { count: 0, valid: [0; MAX_ROWS_PER_PAGE / 64], data: [0; LEAF_BYTES] }
    }
}

impl PaxLeaf {
    pub fn new() -> Self {
        // ~15 KiB by value; lives inline in a buffer frame so optimistic
        // readers never chase a heap pointer that eviction could free.
        Self::default()
    }

    /// Number of appended rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    pub fn is_full(&self, layout: &PaxLayout) -> bool {
        self.len() >= layout.capacity
    }

    /// Row id stored at position `row`.
    #[inline]
    pub fn row_id_at(&self, row: usize) -> RowId {
        let at = row * 8;
        RowId(u64::from_le_bytes(self.data[at..at + 8].try_into().expect("8 bytes")))
    }

    /// First row id in the leaf (page identity); `None` when empty.
    pub fn first_row_id(&self) -> Option<RowId> {
        (self.count > 0).then(|| self.row_id_at(0))
    }

    /// Last row id in the leaf.
    pub fn last_row_id(&self) -> Option<RowId> {
        (self.count > 0).then(|| self.row_id_at(self.len() - 1))
    }

    /// Binary-search the sorted row-id minipage.
    pub fn find(&self, row_id: RowId) -> Option<usize> {
        let n = self.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.row_id_at(mid).cmp(&row_id) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return self.is_valid(mid).then_some(mid);
                }
            }
        }
        None
    }

    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        self.valid[row / 64] & (1 << (row % 64)) != 0
    }

    /// Physically delete a row (GC of globally visible deletions, §7.3).
    pub fn mark_deleted(&mut self, row: usize) {
        self.valid[row / 64] &= !(1 << (row % 64));
    }

    /// Append a row; caller guarantees ascending row ids and free space.
    pub fn append(&mut self, layout: &PaxLayout, row_id: RowId, tuple: &[Value]) -> usize {
        let row = self.len();
        assert!(row < layout.capacity, "append to a full leaf");
        if let Some(last) = self.last_row_id() {
            assert!(row_id > last, "row ids must be appended in ascending order");
        }
        self.data[row * 8..row * 8 + 8].copy_from_slice(&row_id.raw().to_le_bytes());
        for (col, v) in tuple.iter().enumerate() {
            self.write_col(layout, row, col, v);
        }
        self.valid[row / 64] |= 1 << (row % 64);
        self.count += 1;
        row
    }

    /// Read one column of one row.
    pub fn read_col(&self, layout: &PaxLayout, row: usize, col: usize) -> Value {
        let bytes = &self.data[layout.slot(col, row)];
        match layout.types[col] {
            ColType::I64 => Value::I64(i64::from_le_bytes(bytes[..8].try_into().expect("8"))),
            ColType::I32 => Value::I32(i32::from_le_bytes(bytes[..4].try_into().expect("4"))),
            ColType::F64 => Value::F64(f64::from_le_bytes(bytes[..8].try_into().expect("8"))),
            ColType::Str(max) => {
                let len = u16::from_le_bytes(bytes[..2].try_into().expect("2")) as usize;
                let len = len.min(max as usize); // robust to torn optimistic reads
                Value::Str(String::from_utf8_lossy(&bytes[2..2 + len]).into_owned())
            }
        }
    }

    /// Read a whole row.
    pub fn read_row(&self, layout: &PaxLayout, row: usize) -> Vec<Value> {
        (0..layout.types.len()).map(|c| self.read_col(layout, row, c)).collect()
    }

    /// Overwrite one column of one row in place.
    pub fn write_col(&mut self, layout: &PaxLayout, row: usize, col: usize, v: &Value) {
        let slot = layout.slot(col, row);
        let bytes = &mut self.data[slot];
        match (layout.types[col], v) {
            (ColType::I64, Value::I64(x)) => bytes[..8].copy_from_slice(&x.to_le_bytes()),
            (ColType::I32, Value::I32(x)) => bytes[..4].copy_from_slice(&x.to_le_bytes()),
            (ColType::F64, Value::F64(x)) => bytes[..8].copy_from_slice(&x.to_le_bytes()),
            (ColType::Str(max), Value::Str(s)) => {
                assert!(s.len() <= max as usize, "string exceeds column capacity");
                bytes[..2].copy_from_slice(&(s.len() as u16).to_le_bytes());
                bytes[2..2 + s.len()].copy_from_slice(s.as_bytes());
            }
            (t, v) => panic!("type mismatch writing {v:?} into {t:?} column"),
        }
    }

    /// Overwrite a whole row in place.
    pub fn write_row(&mut self, layout: &PaxLayout, row: usize, tuple: &[Value]) {
        for (col, v) in tuple.iter().enumerate() {
            self.write_col(layout, row, col, v);
        }
    }

    /// Count of live (not physically deleted) rows.
    pub fn live_rows(&self) -> usize {
        (0..self.len()).filter(|&r| self.is_valid(r)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn test_layout() -> (Schema, PaxLayout) {
        let s = Schema::new(vec![
            ("a", ColType::I64),
            ("b", ColType::I32),
            ("c", ColType::F64),
            ("d", ColType::Str(12)),
        ]);
        let l = PaxLayout::for_schema(&s);
        (s, l)
    }

    fn tuple(i: i64) -> Vec<Value> {
        vec![
            Value::I64(i),
            Value::I32(i as i32 * 2),
            Value::F64(i as f64 / 2.0),
            Value::Str(format!("s{i}")),
        ]
    }

    #[test]
    fn layout_minipages_do_not_overlap() {
        let (_, l) = test_layout();
        assert!(l.capacity > 100);
        let mut prev_end = 8 * l.capacity;
        for (off, w) in l.col_offsets.iter().zip(&l.widths) {
            assert_eq!(*off, prev_end, "minipages must be adjacent");
            prev_end = off + w * l.capacity;
        }
        assert!(prev_end <= LEAF_BYTES);
    }

    #[test]
    fn append_and_read_back() {
        let (_, l) = test_layout();
        let mut leaf = PaxLeaf::new();
        for i in 0..50i64 {
            leaf.append(&l, RowId(i as u64 * 3), &tuple(i));
        }
        assert_eq!(leaf.len(), 50);
        for i in 0..50i64 {
            let row = leaf.find(RowId(i as u64 * 3)).expect("present");
            assert_eq!(leaf.read_row(&l, row), tuple(i));
        }
        assert_eq!(leaf.find(RowId(1)), None);
    }

    #[test]
    fn first_and_last_row_id() {
        let (_, l) = test_layout();
        let mut leaf = PaxLeaf::new();
        assert_eq!(leaf.first_row_id(), None);
        leaf.append(&l, RowId(10), &tuple(1));
        leaf.append(&l, RowId(20), &tuple(2));
        assert_eq!(leaf.first_row_id(), Some(RowId(10)));
        assert_eq!(leaf.last_row_id(), Some(RowId(20)));
    }

    #[test]
    fn in_place_update_changes_only_target_column() {
        let (_, l) = test_layout();
        let mut leaf = PaxLeaf::new();
        leaf.append(&l, RowId(1), &tuple(7));
        leaf.write_col(&l, 0, 1, &Value::I32(999));
        assert_eq!(leaf.read_col(&l, 0, 1), Value::I32(999));
        assert_eq!(leaf.read_col(&l, 0, 0), Value::I64(7));
        assert_eq!(leaf.read_col(&l, 0, 3), Value::Str("s7".into()));
    }

    #[test]
    fn delete_hides_row_from_find() {
        let (_, l) = test_layout();
        let mut leaf = PaxLeaf::new();
        leaf.append(&l, RowId(5), &tuple(5));
        leaf.append(&l, RowId(6), &tuple(6));
        let row = leaf.find(RowId(5)).unwrap();
        leaf.mark_deleted(row);
        assert_eq!(leaf.find(RowId(5)), None);
        assert!(leaf.find(RowId(6)).is_some());
        assert_eq!(leaf.live_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn append_rejects_out_of_order_row_ids() {
        let (_, l) = test_layout();
        let mut leaf = PaxLeaf::new();
        leaf.append(&l, RowId(9), &tuple(1));
        leaf.append(&l, RowId(3), &tuple(2));
    }

    #[test]
    fn fills_to_capacity() {
        let (_, l) = test_layout();
        let mut leaf = PaxLeaf::new();
        for i in 0..l.capacity {
            assert!(!leaf.is_full(&l));
            leaf.append(&l, RowId(i as u64), &tuple(i as i64));
        }
        assert!(leaf.is_full(&l));
        assert_eq!(leaf.live_rows(), l.capacity);
    }

    #[test]
    fn string_column_roundtrips_max_length() {
        let s = Schema::new(vec![("s", ColType::Str(5))]);
        let l = PaxLayout::for_schema(&s);
        let mut leaf = PaxLeaf::new();
        leaf.append(&l, RowId(0), &[Value::Str("abcde".into())]);
        assert_eq!(leaf.read_col(&l, 0, 0), Value::Str("abcde".into()));
    }
}
