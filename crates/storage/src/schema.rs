//! Relation schemas and tuple values.
//!
//! PhoebeDB stores base tables in PAX pages whose minipage geometry is
//! computed from the schema. Columns are fixed-width on the page: integers
//! and floats at their natural width, strings in a fixed-capacity slot with
//! a length prefix (TPC-C strings are all bounded, and fixed slots are what
//! keeps every update in-place — the property §5.2 relies on for hot/cold
//! pages).

use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::TableId;
use serde::{Deserialize, Serialize};

/// A column's on-page type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit signed integer (also used for decimals as fixed-point cents).
    I64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit float.
    F64,
    /// UTF-8 string with a maximum byte length; stored in a fixed slot of
    /// `2 + max` bytes (u16 length prefix).
    Str(u16),
}

impl ColType {
    /// Fixed slot width of this column inside a PAX minipage.
    pub fn slot_width(self) -> usize {
        match self {
            ColType::I64 | ColType::F64 => 8,
            ColType::I32 => 4,
            ColType::Str(max) => 2 + max as usize,
        }
    }
}

/// A single column value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    I64(i64),
    I32(i32),
    F64(f64),
    Str(String),
}

impl Value {
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            Value::I32(v) => *v as i64,
            _ => panic!("value is not an integer: {self:?}"),
        }
    }

    pub fn as_i32(&self) -> i32 {
        match self {
            Value::I32(v) => *v,
            Value::I64(v) => *v as i32,
            _ => panic!("value is not an integer: {self:?}"),
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            _ => panic!("value is not a float: {self:?}"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            _ => panic!("value is not a string: {self:?}"),
        }
    }

    /// Whether this value can be stored in a column of type `ty`.
    pub fn matches(&self, ty: ColType) -> bool {
        match (self, ty) {
            (Value::I64(_), ColType::I64) => true,
            (Value::I32(_), ColType::I32) => true,
            (Value::F64(_), ColType::F64) => true,
            (Value::Str(s), ColType::Str(max)) => s.len() <= max as usize,
            _ => false,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A tuple: one value per schema column.
pub type Tuple = Vec<Value>;

/// Schema of one relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    cols: Vec<ColType>,
    names: Vec<String>,
}

impl Schema {
    pub fn new(cols: Vec<(&str, ColType)>) -> Self {
        let names = cols.iter().map(|(n, _)| (*n).to_owned()).collect();
        let cols = cols.into_iter().map(|(_, t)| t).collect();
        Schema { cols, names }
    }

    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    pub fn col_type(&self, idx: usize) -> ColType {
        self.cols[idx]
    }

    pub fn col_name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    pub fn types(&self) -> &[ColType] {
        &self.cols
    }

    /// Total fixed width of one row across all minipages (excluding the
    /// row-id minipage).
    pub fn row_width(&self) -> usize {
        self.cols.iter().map(|c| c.slot_width()).sum()
    }

    /// Validate a tuple against this schema.
    pub fn check(&self, table: TableId, tuple: &[Value]) -> Result<()> {
        if tuple.len() != self.cols.len() {
            return Err(PhoebeError::SchemaMismatch {
                table,
                detail: format!("expected {} columns, got {}", self.cols.len(), tuple.len()),
            });
        }
        for (i, (v, &t)) in tuple.iter().zip(&self.cols).enumerate() {
            if !v.matches(t) {
                return Err(PhoebeError::SchemaMismatch {
                    table,
                    detail: format!("column {i} ({}) rejects {v:?}", self.names[i]),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColType::I64),
            ("qty", ColType::I32),
            ("price", ColType::F64),
            ("name", ColType::Str(16)),
        ])
    }

    #[test]
    fn slot_widths() {
        assert_eq!(ColType::I64.slot_width(), 8);
        assert_eq!(ColType::I32.slot_width(), 4);
        assert_eq!(ColType::F64.slot_width(), 8);
        assert_eq!(ColType::Str(10).slot_width(), 12);
    }

    #[test]
    fn row_width_sums_columns() {
        assert_eq!(schema().row_width(), 8 + 4 + 8 + 18);
    }

    #[test]
    fn check_accepts_valid_tuple() {
        let s = schema();
        let t: Tuple = vec![1i64.into(), 2i32.into(), 3.0.into(), "ok".into()];
        assert!(s.check(TableId(1), &t).is_ok());
    }

    #[test]
    fn check_rejects_wrong_arity_and_types() {
        let s = schema();
        assert!(s.check(TableId(1), &[Value::I64(1)]).is_err());
        let wrong: Tuple = vec![1i64.into(), 2i64.into(), 3.0.into(), "ok".into()];
        assert!(s.check(TableId(1), &wrong).is_err());
    }

    #[test]
    fn check_rejects_oversized_string() {
        let s = schema();
        let t: Tuple = vec![1i64.into(), 2i32.into(), 3.0.into(), "seventeen chars!!".into()];
        assert!(s.check(TableId(1), &t).is_err());
    }

    #[test]
    fn col_lookup_by_name() {
        let s = schema();
        assert_eq!(s.col_index("price"), Some(2));
        assert_eq!(s.col_index("missing"), None);
        assert_eq!(s.col_name(3), "name");
    }
}
