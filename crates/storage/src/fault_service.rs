//! Asynchronous page fault-in for interleaved batch descents.
//!
//! A sequential descent that hits a cold swip blocks its co-routine on
//! the Data Page File read. The batch descent
//! ([`crate::btree::DescentCursor`]) must not: it kicks the fault to a
//! background loader and *suspends*, letting sibling descents in the same
//! batch run while the read is in flight. The handshake is a
//! [`FaultTicket`]:
//!
//! * the loader thread runs the allocate-and-read half of
//!   [`crate::buffer::BufferPool::load_cold`] and publishes the outcome
//!   with [`FaultTicket::complete`] — result first under the mutex, then
//!   a release store of `done`;
//! * the suspended cursor polls [`FaultTicket::is_done`] (one acquire
//!   load, no lock) each time the batch round-robin reaches it, and takes
//!   the loaded frame with [`FaultTicket::take`] once ready. It then
//!   performs the swizzle-install half under the parent latch, exactly as
//!   the blocking path does.
//!
//! The publish/consume protocol lives behind `phoebe_common::sync`, so
//! the `loom_fault_ticket` suite model-checks it exhaustively. Dropping
//! the last ticket handle releases an unconsumed loaded frame back to the
//! pool (the batch may abandon a descent mid-fault on error), so frames
//! never leak.

use crate::buffer::BufferPool;
use crate::swip::FrameId;
use phoebe_common::error::Result;
use phoebe_common::ids::PageId;
use phoebe_common::sync::atomic::{AtomicBool, Ordering};
use phoebe_common::sync::{Rank, RankedMutex};
use std::sync::{Arc, Weak};

/// Completion state of one in-flight asynchronous page fault.
pub struct FaultTicket {
    /// Flipped (release) after `result` is published; polled (acquire) by
    /// the suspended cursor.
    done: AtomicBool,
    result: RankedMutex<Option<Result<FrameId>>>,
    /// Owner pool, for releasing an unconsumed frame on drop. Empty in
    /// protocol-only tests (loom).
    pool: Weak<BufferPool>,
    /// Whether this ticket occupies a slot in the pool's in-flight fault
    /// budget ([`BufferPool::fault_budget_available`]) — true only for
    /// tickets minted by `start_fault`; `Drop` gives the slot back.
    counted: bool,
}

impl FaultTicket {
    /// A ticket owned by `pool` (the normal path).
    pub fn new(pool: Weak<BufferPool>) -> Arc<FaultTicket> {
        Arc::new(FaultTicket {
            done: AtomicBool::new(false),
            result: RankedMutex::new(Rank::FaultService, "fault.ticket_result", None),
            pool,
            counted: false,
        })
    }

    /// A ticket counted against `pool`'s in-flight fault budget. The
    /// caller must have incremented the budget already.
    pub(crate) fn counted(pool: Weak<BufferPool>) -> Arc<FaultTicket> {
        Arc::new(FaultTicket {
            done: AtomicBool::new(false),
            result: RankedMutex::new(Rank::FaultService, "fault.ticket_result", None),
            pool,
            counted: true,
        })
    }

    /// A pool-less ticket for protocol tests.
    pub fn detached() -> Arc<FaultTicket> {
        FaultTicket::new(Weak::new())
    }

    /// Publish the fault's outcome. Called exactly once, by the loader.
    pub fn complete(&self, r: Result<FrameId>) {
        *self.result.lock() = Some(r);
        // ORDERING: release pairs with the acquire in `is_done`/`take`;
        // a consumer that observes `done == true` must also observe the
        // result written above (and the frame contents the loader wrote
        // before handing us the frame id).
        self.done.store(true, Ordering::Release);
    }

    /// Whether the fault has finished (one acquire load, no lock) — the
    /// cheap poll the batch round-robin uses to skip still-cold cursors.
    #[inline]
    pub fn is_done(&self) -> bool {
        // ORDERING: acquire pairs with the release in `complete`.
        self.done.load(Ordering::Acquire)
    }

    /// Take the outcome once complete. `None` while the fault is still in
    /// flight; `Some` exactly once after completion (the frame's
    /// ownership transfers to the caller).
    pub fn take(&self) -> Option<Result<FrameId>> {
        if !self.is_done() {
            return None;
        }
        self.result.lock().take()
    }
}

impl Drop for FaultTicket {
    fn drop(&mut self) {
        // Last handle: the loader is finished with its clone, so a
        // present result can no longer be consumed — hand the loaded
        // frame back instead of leaking it.
        // Take the result out before touching the pool: `release` acquires
        // the frame latch, which ranks below the ticket lock.
        let abandoned = self.result.lock().take();
        if let Some(Ok(fid)) = abandoned {
            if let Some(pool) = self.pool.upgrade() {
                // The swizzle install never ran, so the parent's child slot
                // still holds a cold swip referencing this frame's disk
                // PageId. Forget the slot before release() — freeing it
                // would let the page file hand the PageId to an unrelated
                // page while the cold swip still points at it (same hazard
                // as the install_loaded lost-race path).
                pool.frame(fid).meta.disk_page_forget();
                pool.release(fid);
            }
        }
        if self.counted {
            if let Some(pool) = self.pool.upgrade() {
                pool.fault_done();
            }
        }
    }
}

/// One queued fault request.
pub(crate) struct FaultRequest {
    pub page: PageId,
    pub parent: FrameId,
    pub ticket: Arc<FaultTicket>,
}

/// Run one loader loop: drain requests until every sender is gone or the
/// pool itself has been dropped. Each request is the allocate-and-read
/// half of `load_cold`; the requesting cursor performs the swizzle
/// install once it consumes the ticket.
///
/// Several loaders share one queue (a fault storm from a batch must not
/// serialize behind a single reader — the sequential path gets one
/// blocking read *per worker*, so the service needs comparable
/// parallelism). The receiver mutex is held only while waiting: the
/// loader that wins a request drops it before touching the page file,
/// letting the next loader wait concurrently.
pub(crate) fn loader_loop(
    pool: Weak<BufferPool>,
    rx: Arc<std::sync::Mutex<std::sync::mpsc::Receiver<FaultRequest>>>,
) {
    loop {
        let req = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // poisoned: a sibling loader panicked
        };
        let Ok(req) = req else { return };
        let Some(pool) = pool.upgrade() else { return };
        req.ticket.complete(pool.load_cold(req.page, req.parent));
    }
}
