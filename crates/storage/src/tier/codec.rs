//! Column-wise compression codec for frozen data blocks (§5.2).
//!
//! Self-contained (no external compression crates): integers are
//! delta-encoded then zigzag-varint packed, floats are stored raw, and
//! strings are run-length encoded (consecutive identical values collapse
//! into one run). Row ids are ascending by construction, so their deltas
//! are small and varint-friendly.
//!
//! Block layout:
//! ```text
//! [n_rows u32][n_cols u16][col types n_cols bytes + str maxes]
//! [row-id column: varint deltas]
//! per column: [len u32][payload]
//! ```

use crate::schema::{ColType, Value};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::RowId;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], at: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte =
            *buf.get(*at).ok_or_else(|| PhoebeError::corruption("varint past end of block"))?;
        *at += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(PhoebeError::corruption("varint too long"));
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn col_tag(t: ColType) -> (u8, u16) {
    match t {
        ColType::I64 => (0, 0),
        ColType::I32 => (1, 0),
        ColType::F64 => (2, 0),
        ColType::Str(m) => (3, m),
    }
}

fn tag_col(tag: u8, max: u16) -> Result<ColType> {
    Ok(match tag {
        0 => ColType::I64,
        1 => ColType::I32,
        2 => ColType::F64,
        3 => ColType::Str(max),
        t => return Err(PhoebeError::corruption(format!("bad column tag {t}"))),
    })
}

/// Compress `rows` (parallel to ascending `row_ids`) into a frozen block.
pub fn encode_block(types: &[ColType], row_ids: &[RowId], rows: &[Vec<Value>]) -> Vec<u8> {
    assert_eq!(row_ids.len(), rows.len());
    assert!(row_ids.windows(2).all(|w| w[0] < w[1]), "row ids must ascend");
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    out.extend_from_slice(&(types.len() as u16).to_le_bytes());
    for &t in types {
        let (tag, max) = col_tag(t);
        out.push(tag);
        out.extend_from_slice(&max.to_le_bytes());
    }
    // Row ids: ascending deltas.
    let mut prev = 0u64;
    for r in row_ids {
        put_varint(&mut out, r.raw() - prev);
        prev = r.raw();
    }
    // Columns.
    for (c, &t) in types.iter().enumerate() {
        let mut payload = Vec::new();
        match t {
            ColType::I64 | ColType::I32 => {
                let mut prev = 0i64;
                for row in rows {
                    let v = row[c].as_i64();
                    // Wrapping delta: extreme values (i64::MIN/MAX) must
                    // not overflow; decode reverses with wrapping_add.
                    put_varint(&mut payload, zigzag(v.wrapping_sub(prev)));
                    prev = v;
                }
            }
            ColType::F64 => {
                for row in rows {
                    payload.extend_from_slice(&row[c].as_f64().to_le_bytes());
                }
            }
            ColType::Str(_) => {
                // RLE over consecutive identical strings.
                let mut i = 0;
                while i < rows.len() {
                    let s = rows[i][c].as_str();
                    let mut run = 1usize;
                    while i + run < rows.len() && rows[i + run][c].as_str() == s {
                        run += 1;
                    }
                    put_varint(&mut payload, run as u64);
                    payload.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    payload.extend_from_slice(s.as_bytes());
                    i += run;
                }
            }
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decompress a frozen block back into `(row_ids, rows)`.
pub fn decode_block(buf: &[u8]) -> Result<(Vec<RowId>, Vec<Vec<Value>>)> {
    let mut at = 0usize;
    let take = |buf: &[u8], at: &mut usize, n: usize| -> Result<Vec<u8>> {
        if *at + n > buf.len() {
            return Err(PhoebeError::corruption("block truncated"));
        }
        let out = buf[*at..*at + n].to_vec();
        *at += n;
        Ok(out)
    };
    let n_rows = u32::from_le_bytes(take(buf, &mut at, 4)?.try_into().expect("4")) as usize;
    let n_cols = u16::from_le_bytes(take(buf, &mut at, 2)?.try_into().expect("2")) as usize;
    let mut types = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let tag = take(buf, &mut at, 1)?[0];
        let max = u16::from_le_bytes(take(buf, &mut at, 2)?.try_into().expect("2"));
        types.push(tag_col(tag, max)?);
    }
    let mut row_ids = Vec::with_capacity(n_rows);
    let mut prev = 0u64;
    for _ in 0..n_rows {
        prev += get_varint(buf, &mut at)?;
        row_ids.push(RowId(prev));
    }
    let mut rows: Vec<Vec<Value>> = (0..n_rows).map(|_| Vec::with_capacity(n_cols)).collect();
    for &t in &types {
        let len = u32::from_le_bytes(take(buf, &mut at, 4)?.try_into().expect("4")) as usize;
        let end = at + len;
        if end > buf.len() {
            return Err(PhoebeError::corruption("column payload truncated"));
        }
        match t {
            ColType::I64 | ColType::I32 => {
                let mut prev = 0i64;
                for row in rows.iter_mut() {
                    prev = prev.wrapping_add(unzigzag(get_varint(buf, &mut at)?));
                    row.push(if t == ColType::I64 {
                        Value::I64(prev)
                    } else {
                        Value::I32(prev as i32)
                    });
                }
            }
            ColType::F64 => {
                for row in rows.iter_mut() {
                    let b = take(buf, &mut at, 8)?;
                    row.push(Value::F64(f64::from_le_bytes(b.try_into().expect("8"))));
                }
            }
            ColType::Str(_) => {
                let mut filled = 0usize;
                while filled < n_rows {
                    let run = get_varint(buf, &mut at)? as usize;
                    let slen =
                        u16::from_le_bytes(take(buf, &mut at, 2)?.try_into().expect("2")) as usize;
                    let bytes = take(buf, &mut at, slen)?;
                    let s = String::from_utf8(bytes)
                        .map_err(|_| PhoebeError::corruption("non-utf8 frozen string"))?;
                    if filled + run > n_rows {
                        return Err(PhoebeError::corruption("string run overflows block"));
                    }
                    for row in rows[filled..filled + run].iter_mut() {
                        row.push(Value::Str(s.clone()));
                    }
                    filled += run;
                }
            }
        }
        if at != end {
            return Err(PhoebeError::corruption("column payload length mismatch"));
        }
    }
    Ok((row_ids, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_types() -> Vec<ColType> {
        vec![ColType::I64, ColType::I32, ColType::F64, ColType::Str(20)]
    }

    fn sample_rows(n: u64) -> (Vec<RowId>, Vec<Vec<Value>>) {
        let row_ids: Vec<RowId> = (0..n).map(|i| RowId(i * 2 + 5)).collect();
        let rows = (0..n)
            .map(|i| {
                vec![
                    Value::I64(1_000_000 + i as i64 * 7),
                    Value::I32(-(i as i32) * 3),
                    Value::F64(i as f64 * 0.25),
                    Value::Str(if i % 10 < 7 { "common".into() } else { format!("v{i}") }),
                ]
            })
            .collect();
        (row_ids, rows)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let types = sample_types();
        let (ids, rows) = sample_rows(500);
        let blob = encode_block(&types, &ids, &rows);
        let (ids2, rows2) = decode_block(&blob).unwrap();
        assert_eq!(ids, ids2);
        assert_eq!(rows, rows2);
    }

    #[test]
    fn compression_beats_raw_for_regular_data() {
        let types = sample_types();
        let (ids, rows) = sample_rows(1000);
        let blob = encode_block(&types, &ids, &rows);
        // Raw fixed-width: 8 (rowid) + 8 + 4 + 8 + 22 = 50 bytes per row.
        let raw = 1000 * 50;
        assert!(blob.len() < raw / 2, "expected < {} bytes, got {}", raw / 2, blob.len());
    }

    #[test]
    fn empty_block_roundtrips() {
        let types = sample_types();
        let blob = encode_block(&types, &[], &[]);
        let (ids, rows) = decode_block(&blob).unwrap();
        assert!(ids.is_empty() && rows.is_empty());
    }

    #[test]
    fn negative_and_extreme_integers_roundtrip() {
        let types = vec![ColType::I64];
        let ids = vec![RowId(1), RowId(2), RowId(3)];
        let rows = vec![
            vec![Value::I64(i64::MIN + 1)],
            vec![Value::I64(0)],
            vec![Value::I64(i64::MAX - 1)],
        ];
        let blob = encode_block(&types, &ids, &rows);
        let (_, rows2) = decode_block(&blob).unwrap();
        assert_eq!(rows, rows2);
    }

    #[test]
    fn decode_rejects_truncated_blocks() {
        let types = sample_types();
        let (ids, rows) = sample_rows(50);
        let blob = encode_block(&types, &ids, &rows);
        for cut in [0, 3, 7, blob.len() / 2, blob.len() - 1] {
            assert!(decode_block(&blob[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn zigzag_is_its_own_inverse() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        let mut buf = Vec::new();
        let values = [0u64, 127, 128, 16383, 16384, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut at = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut at).unwrap(), v);
        }
        assert_eq!(at, buf.len());
    }
}
