//! The frozen storage layer (§5.2): the Data Block File.
//!
//! Most OLTP data is time-sensitive; once a range of row ids goes cold for
//! long enough, PhoebeDB compresses several consecutive leaf pages into one
//! *frozen data block*, preserving row-id order, and records the advancing
//! `max_frozen_row_id` watermark. Frozen data serves OLAP-style reads
//! without warming the buffer pool; updates and deletes against frozen rows
//! are out-of-place (tombstone + re-insert hot) to avoid decompress/
//! recompress write amplification.

pub mod codec;
pub mod frozen;

pub use frozen::{BlockStats, FrozenStore};
