//! The Data Block File: compressed frozen storage with the
//! `max_frozen_row_id` watermark (§5.2).
//!
//! Freezing appends a compressed block covering a contiguous, ascending
//! row-id range and advances the watermark: afterwards every row id at or
//! below `max_frozen_row_id` is served from this store (or is tombstoned).
//! Deletes and updates of frozen rows are out-of-place: the row is
//! tombstoned here and, for updates/warming, re-inserted into hot storage
//! under a fresh row id by the kernel.
//!
//! Each block counts its reads; blocks crossing the warm threshold are
//! reported by [`FrozenStore::hot_blocks`] so the kernel can warm them
//! (§5.2 case 3: "frequently accessed frozen pages ... are marked as
//! deleted and reinserted into hot storage").

use super::codec;
use crate::schema::{ColType, Value};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::RowId;
use phoebe_common::sync::{Rank, RankedMutex, RankedRwLock};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

struct BlockMeta {
    start: RowId,
    end: RowId,
    offset: u64,
    len: u32,
    reads: AtomicU64,
    /// All rows tombstoned (block fully dead, skip it).
    dead: std::sync::atomic::AtomicBool,
}

/// Per-block statistics for the temperature controller.
#[derive(Debug, Clone)]
pub struct BlockStats {
    pub index: usize,
    pub start: RowId,
    pub end: RowId,
    pub reads: u64,
    pub bytes: u32,
}

/// Append-only compressed block storage for one table.
pub struct FrozenStore {
    file: File,
    append_at: AtomicU64,
    directory: RankedRwLock<Vec<BlockMeta>>,
    tombstones: RankedMutex<HashSet<u64>>,
    max_frozen_row_id: AtomicU64,
    types: Vec<ColType>,
}

/// Watermark value meaning "nothing frozen yet".
pub const NOTHING_FROZEN: u64 = 0;

impl FrozenStore {
    pub fn create(path: &Path, types: Vec<ColType>) -> Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FrozenStore {
            file,
            append_at: AtomicU64::new(0),
            directory: RankedRwLock::new(Rank::FrozenTier, "frozen.directory", Vec::new()),
            tombstones: RankedMutex::new(Rank::FrozenTier, "frozen.tombstones", HashSet::new()),
            max_frozen_row_id: AtomicU64::new(NOTHING_FROZEN),
            types,
        })
    }

    /// Highest frozen row id (`NOTHING_FROZEN` if none). Rows at or below
    /// this watermark are served by this store.
    pub fn max_frozen_row_id(&self) -> u64 {
        self.max_frozen_row_id.load(Ordering::Acquire)
    }

    /// Freeze a contiguous ascending row range into one block. Ranges must
    /// arrive in ascending order (the freezer walks leaves left to right).
    pub fn append_block(&self, row_ids: &[RowId], rows: &[Vec<Value>]) -> Result<()> {
        if row_ids.is_empty() {
            return Ok(());
        }
        let start = row_ids[0];
        let end = *row_ids.last().expect("non-empty");
        if start.raw() <= self.max_frozen_row_id() {
            return Err(PhoebeError::internal(
                "frozen blocks must be appended in ascending row order",
            ));
        }
        let blob = codec::encode_block(&self.types, row_ids, rows);
        let offset = self.append_at.fetch_add(blob.len() as u64, Ordering::SeqCst);
        self.file.write_all_at(&blob, offset)?;
        self.directory.write().push(BlockMeta {
            start,
            end,
            offset,
            len: blob.len() as u32,
            reads: AtomicU64::new(0),
            dead: std::sync::atomic::AtomicBool::new(false),
        });
        self.max_frozen_row_id.fetch_max(end.raw(), Ordering::AcqRel);
        Ok(())
    }

    fn block_index_for(&self, row: RowId) -> Option<usize> {
        let dir = self.directory.read();
        let idx = dir.partition_point(|b| b.end < row);
        (idx < dir.len() && dir[idx].start <= row && row <= dir[idx].end).then_some(idx)
    }

    fn read_block(&self, idx: usize) -> Result<(Vec<RowId>, Vec<Vec<Value>>)> {
        let (offset, len) = {
            let dir = self.directory.read();
            let b = &dir[idx];
            b.reads.fetch_add(1, Ordering::Relaxed);
            (b.offset, b.len as usize)
        };
        let mut buf = vec![0u8; len];
        self.file.read_exact_at(&mut buf, offset)?;
        codec::decode_block(&buf)
    }

    /// Fetch one frozen row (decompressing its block). `None` if the row is
    /// outside the watermark, in no block, or tombstoned.
    pub fn get(&self, row: RowId) -> Result<Option<Vec<Value>>> {
        if row.raw() > self.max_frozen_row_id() || row.raw() == NOTHING_FROZEN {
            return Ok(None);
        }
        if self.tombstones.lock().contains(&row.raw()) {
            return Ok(None);
        }
        let Some(idx) = self.block_index_for(row) else {
            return Ok(None);
        };
        let (ids, mut rows) = self.read_block(idx)?;
        match ids.binary_search(&row) {
            Ok(pos) => Ok(Some(std::mem::take(&mut rows[pos]))),
            Err(_) => Ok(None),
        }
    }

    /// Tombstone a frozen row (out-of-place delete/update, §5.2).
    pub fn mark_deleted(&self, row: RowId) {
        self.tombstones.lock().insert(row.raw());
    }

    /// Whether `row` is tombstoned.
    pub fn is_deleted(&self, row: RowId) -> bool {
        self.tombstones.lock().contains(&row.raw())
    }

    /// Remove a tombstone (rollback of an aborted frozen delete).
    pub fn unmark_deleted(&self, row: RowId) {
        self.tombstones.lock().remove(&row.raw());
    }

    /// Blocks whose read count crossed `threshold` and that still hold live
    /// rows — warming candidates.
    pub fn hot_blocks(&self, threshold: u64) -> Vec<BlockStats> {
        let dir = self.directory.read();
        dir.iter()
            .enumerate()
            .filter(|(_, b)| {
                !b.dead.load(Ordering::Relaxed) && b.reads.load(Ordering::Relaxed) >= threshold
            })
            .map(|(i, b)| BlockStats {
                index: i,
                start: b.start,
                end: b.end,
                reads: b.reads.load(Ordering::Relaxed),
                bytes: b.len,
            })
            .collect()
    }

    /// Extract all live rows of a block and tombstone them (warming: the
    /// kernel re-inserts them hot under fresh row ids). The block is marked
    /// dead afterwards.
    pub fn take_block(&self, idx: usize) -> Result<(Vec<RowId>, Vec<Vec<Value>>)> {
        let (ids, rows) = self.read_block(idx)?;
        let mut tomb = self.tombstones.lock();
        let mut live_ids = Vec::new();
        let mut live_rows = Vec::new();
        for (id, row) in ids.into_iter().zip(rows) {
            if tomb.insert(id.raw()) {
                live_ids.push(id);
                live_rows.push(row);
            }
        }
        drop(tomb);
        self.directory.read()[idx].dead.store(true, Ordering::Relaxed);
        Ok((live_ids, live_rows))
    }

    /// Scan every live frozen row in row-id order (OLAP path; does not
    /// touch the buffer pool, per §5.2 "operations like table scans do not
    /// warm any data"). Read counts are *not* bumped: scans are not an OLTP
    /// access signal.
    pub fn scan(&self, mut f: impl FnMut(RowId, &[Value]) -> bool) -> Result<()> {
        let nblocks = self.directory.read().len();
        for idx in 0..nblocks {
            if self.directory.read()[idx].dead.load(Ordering::Relaxed) {
                continue;
            }
            let (offset, len) = {
                let dir = self.directory.read();
                (dir[idx].offset, dir[idx].len as usize)
            };
            let mut buf = vec![0u8; len];
            self.file.read_exact_at(&mut buf, offset)?;
            let (ids, rows) = codec::decode_block(&buf)?;
            let tomb = self.tombstones.lock();
            for (id, row) in ids.iter().zip(&rows) {
                if tomb.contains(&id.raw()) {
                    continue;
                }
                if !f(*id, row) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// (block count, live block count, total compressed bytes).
    pub fn stats(&self) -> (usize, usize, u64) {
        let dir = self.directory.read();
        let live = dir.iter().filter(|b| !b.dead.load(Ordering::Relaxed)).count();
        (dir.len(), live, self.append_at.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FrozenStore {
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        FrozenStore::create(&dir.join("frozen.db"), vec![ColType::I64, ColType::Str(10)]).unwrap()
    }

    fn rows(range: std::ops::Range<u64>) -> (Vec<RowId>, Vec<Vec<Value>>) {
        let ids: Vec<RowId> = range.clone().map(RowId).collect();
        let rows = range.map(|i| vec![Value::I64(i as i64 * 10), Value::Str("x".into())]).collect();
        (ids, rows)
    }

    #[test]
    fn freeze_then_read_back() {
        let s = store();
        let (ids, data) = rows(1..100);
        s.append_block(&ids, &data).unwrap();
        assert_eq!(s.max_frozen_row_id(), 99);
        assert_eq!(s.get(RowId(42)).unwrap().unwrap()[0], Value::I64(420));
        assert_eq!(s.get(RowId(100)).unwrap(), None, "beyond watermark");
    }

    #[test]
    fn multiple_blocks_are_routed_by_row_id() {
        let s = store();
        let (a_ids, a) = rows(1..50);
        let (b_ids, b) = rows(50..120);
        s.append_block(&a_ids, &a).unwrap();
        s.append_block(&b_ids, &b).unwrap();
        assert_eq!(s.get(RowId(10)).unwrap().unwrap()[0], Value::I64(100));
        assert_eq!(s.get(RowId(110)).unwrap().unwrap()[0], Value::I64(1100));
        assert_eq!(s.stats().0, 2);
    }

    #[test]
    fn out_of_order_blocks_are_rejected() {
        let s = store();
        let (b_ids, b) = rows(50..60);
        s.append_block(&b_ids, &b).unwrap();
        let (a_ids, a) = rows(1..10);
        assert!(s.append_block(&a_ids, &a).is_err());
    }

    #[test]
    fn tombstones_hide_rows() {
        let s = store();
        let (ids, data) = rows(1..20);
        s.append_block(&ids, &data).unwrap();
        s.mark_deleted(RowId(5));
        assert!(s.is_deleted(RowId(5)));
        assert_eq!(s.get(RowId(5)).unwrap(), None);
        assert!(s.get(RowId(6)).unwrap().is_some());
    }

    #[test]
    fn read_counts_drive_hot_block_detection() {
        let s = store();
        let (ids, data) = rows(1..10);
        s.append_block(&ids, &data).unwrap();
        assert!(s.hot_blocks(3).is_empty());
        for _ in 0..3 {
            s.get(RowId(2)).unwrap();
        }
        let hot = s.hot_blocks(3);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].reads, 3);
        assert_eq!((hot[0].start, hot[0].end), (RowId(1), RowId(9)));
    }

    #[test]
    fn take_block_returns_live_rows_and_kills_block() {
        let s = store();
        let (ids, data) = rows(1..10);
        s.append_block(&ids, &data).unwrap();
        s.mark_deleted(RowId(3));
        let (live_ids, live_rows) = s.take_block(0).unwrap();
        assert_eq!(live_ids.len(), 8);
        assert!(!live_ids.contains(&RowId(3)));
        assert_eq!(live_rows.len(), 8);
        // All rows now tombstoned; reads return None; block dead.
        assert_eq!(s.get(RowId(4)).unwrap(), None);
        assert!(s.hot_blocks(0).is_empty());
        assert_eq!(s.stats().1, 0);
    }

    #[test]
    fn scan_visits_live_rows_in_order() {
        let s = store();
        let (ids, data) = rows(1..30);
        s.append_block(&ids, &data).unwrap();
        s.mark_deleted(RowId(7));
        let mut seen = Vec::new();
        s.scan(|id, _| {
            seen.push(id.raw());
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 28);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert!(!seen.contains(&7));
        // Scans must not bump the OLTP read counter.
        assert!(s.hot_blocks(1).is_empty());
    }

    #[test]
    fn scan_stops_early_when_requested() {
        let s = store();
        let (ids, data) = rows(1..30);
        s.append_block(&ids, &data).unwrap();
        let mut n = 0;
        s.scan(|_, _| {
            n += 1;
            n < 5
        })
        .unwrap();
        assert_eq!(n, 5);
    }
}
