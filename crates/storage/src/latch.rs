//! The hybrid latch: optimistic / shared / exclusive page latching (§7.2).
//!
//! PhoebeDB's hybrid lock strategy uses *optimistic* latches during B-Tree
//! traversal (reads proceed without locking and validate a version counter
//! afterwards — Optimistic Lock Coupling [OLC]), and *shared*/*exclusive*
//! latches for tuple operations on leaf nodes. This module provides the
//! primitive: a version-counter latch wrapping the protected value.
//!
//! Implementation: an `RwLock<()>` provides the shared/exclusive modes and
//! writer mutual exclusion; an atomic version counter is incremented to an
//! odd value while a writer holds the latch and back to even on release.
//! An optimistic read snapshots the version (failing fast if odd), runs the
//! caller's closure against the data, then re-validates the version.
//!
//! # Safety contract for optimistic reads
//!
//! An optimistic read may observe a node mid-modification. The closure must
//! therefore (a) only read plain-old-data that is valid for *any* byte
//! pattern — the node types in this crate are fixed-size inline arrays with
//! no heap indirection for exactly this reason — and (b) copy what it needs
//! out; the copy is only trusted after validation succeeds. This mirrors
//! how LeanStore/Umbra implement OLC over raw page frames.

use phoebe_common::sync::atomic::{fence, AtomicU64, Ordering};
use phoebe_common::sync::cell::UnsafeCell;
use phoebe_common::sync::{Rank, RankedReadGuard, RankedRwLock, RankedWriteGuard};

/// A version returned by [`HybridLatch::optimistic_version`]; used for
/// lock-coupling validation across parent/child hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatchVersion(u64);

/// Version-counter latch with optimistic, shared and exclusive modes.
pub struct HybridLatch<T> {
    version: AtomicU64,
    rw: RankedRwLock<()>,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is mediated by the rw-lock for mutation and by
// version validation for optimistic reads; sending the latch just sends the
// owned `T`.
unsafe impl<T: Send> Send for HybridLatch<T> {}
// SAFETY: shared access yields `&T` (guards) and writer-exclusive `&mut T`;
// the usual `Send + Sync` bounds on `T` make both sound across threads.
unsafe impl<T: Send + Sync> Sync for HybridLatch<T> {}

impl<T> HybridLatch<T> {
    pub fn new(value: T) -> Self {
        HybridLatch {
            version: AtomicU64::new(0),
            rw: RankedRwLock::new(Rank::FrameMeta, "latch.frame", ()),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire the latch exclusively (blocking).
    #[track_caller]
    pub fn write(&self) -> WriteGuard<'_, T> {
        let guard = self.rw.write();
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "version must be even before a writer enters");
        WriteGuard { latch: self, _guard: guard }
    }

    /// Try to acquire exclusively without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<WriteGuard<'_, T>> {
        let guard = self.rw.try_write()?;
        self.version.fetch_add(1, Ordering::AcqRel);
        Some(WriteGuard { latch: self, _guard: guard })
    }

    /// Acquire the latch in shared mode (blocking).
    #[track_caller]
    pub fn read(&self) -> ReadGuard<'_, T> {
        let guard = self.rw.read();
        ReadGuard { latch: self, _guard: guard }
    }

    /// Try to acquire in shared mode without blocking.
    #[track_caller]
    pub fn try_read(&self) -> Option<ReadGuard<'_, T>> {
        let guard = self.rw.try_read()?;
        Some(ReadGuard { latch: self, _guard: guard })
    }

    /// Current version if no writer is active; `None` while write-locked.
    pub fn optimistic_version(&self) -> Option<LatchVersion> {
        let v = self.version.load(Ordering::Acquire);
        v.is_multiple_of(2).then_some(LatchVersion(v))
    }

    /// True if the version is still `seen` (no writer has intervened).
    pub fn validate(&self, seen: LatchVersion) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::Acquire) == seen.0
    }

    /// The raw racing read at the heart of OLC. Normal builds run `f`
    /// against the data while a writer may be mutating it — tolerable per
    /// the module contract, with validation discarding torn results.
    /// Miri and ThreadSanitizer would (correctly, by the language rules)
    /// report that read as a data race, so those builds shift the read
    /// under a non-blocking shared latch instead: same restart semantics,
    /// no race, and every other code path stays identical.
    #[cfg(not(any(miri, phoebe_tsan)))]
    #[inline]
    fn optimistic_read<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        // SAFETY: `f` reads potentially racing data; per the module contract
        // the node types are POD-like inline storage and the result is only
        // used after `validate` confirms no writer intervened.
        Some(f(unsafe { &*self.data.get() }))
    }

    #[cfg(any(miri, phoebe_tsan))]
    fn optimistic_read<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let _guard = self.rw.try_read()?;
        // SAFETY: shared rw guard held for the duration of `f`; writers are
        // excluded, so the read cannot race.
        Some(f(unsafe { &*self.data.get() }))
    }

    /// Run `f` against the data optimistically. Returns `None` (restart!)
    /// if a writer was active at the start or intervened before validation.
    ///
    /// See the module docs for the contract `f` must uphold.
    pub fn optimistic<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let seen = self.optimistic_version()?;
        let result = self.optimistic_read(f)?;
        self.validate(seen).then_some(result)
    }

    /// Like [`HybridLatch::optimistic`], but also returns the version the
    /// read validated against — used for OLC parent/child handoff.
    pub fn optimistic_versioned<R>(&self, f: impl FnOnce(&T) -> R) -> Option<(R, LatchVersion)> {
        let seen = self.optimistic_version()?;
        let result = self.optimistic_read(f)?;
        self.validate(seen).then_some((result, seen))
    }

    /// Run `f` optimistically, falling back to a shared latch after
    /// `attempts` failed validations — the paper's contention fallback that
    /// bounds abort rates (§7.2 "hybrid lock strategies").
    pub fn optimistic_or_shared<R>(&self, attempts: usize, mut f: impl FnMut(&T) -> R) -> R {
        for _ in 0..attempts {
            if let Some(r) = self.optimistic(&mut f) {
                return r;
            }
            phoebe_common::sync::hint::spin_loop();
        }
        let guard = self.read();
        f(&guard)
    }
}

/// Exclusive guard; bumps the version to odd for its lifetime.
pub struct WriteGuard<'a, T> {
    latch: &'a HybridLatch<T>,
    _guard: RankedWriteGuard<'a, ()>,
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive rw guard held.
        unsafe { &*self.latch.data.get() }
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive rw guard held.
        unsafe { &mut *self.latch.data.get() }
    }
}

impl<T> WriteGuard<'_, T> {
    /// The version this latch will carry the moment the guard drops. Lets
    /// an optimistic descent re-arm at a node it just wrote instead of
    /// restarting from the root: a writer that sneaks in after the drop
    /// bumps past this stamp and validation fails, exactly as it must.
    pub fn version_on_release(&self) -> LatchVersion {
        // ORDERING: relaxed is enough — we hold the write latch, so no
        // other thread can change `version` until the guard drops, and
        // the drop's AcqRel bump is what publishes it.
        LatchVersion(self.latch.version.load(Ordering::Relaxed).wrapping_add(1))
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        let v = self.latch.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v % 2 == 1, "version must be odd while a writer holds");
    }
}

/// Shared guard.
pub struct ReadGuard<'a, T> {
    latch: &'a HybridLatch<T>,
    _guard: RankedReadGuard<'a, ()>,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared rw guard held; writers are excluded.
        unsafe { &*self.latch.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Miri executes ~1000x slower; the contention tests keep their shape
    /// but shrink their iteration counts under it.
    const SPIN: u64 = if cfg!(miri) { 50 } else { 10_000 };

    #[test]
    fn write_then_read_roundtrips() {
        let l = HybridLatch::new(0u64);
        *l.write() = 42;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn optimistic_read_succeeds_when_uncontended() {
        let l = HybridLatch::new(7u64);
        assert_eq!(l.optimistic(|v| *v), Some(7));
    }

    #[test]
    fn optimistic_read_fails_while_writer_holds() {
        let l = HybridLatch::new(0u64);
        let _w = l.write();
        assert_eq!(l.optimistic(|v| *v), None);
        assert!(l.optimistic_version().is_none());
    }

    #[test]
    fn validation_fails_after_intervening_write() {
        let l = HybridLatch::new(0u64);
        let seen = l.optimistic_version().unwrap();
        *l.write() = 1;
        assert!(!l.validate(seen));
    }

    #[test]
    fn try_write_fails_under_reader() {
        let l = HybridLatch::new(0u64);
        let _r = l.read();
        assert!(l.try_write().is_none());
    }

    #[test]
    fn try_read_fails_under_writer() {
        let l = HybridLatch::new(0u64);
        let _w = l.write();
        assert!(l.try_read().is_none());
    }

    #[test]
    fn optimistic_or_shared_always_returns() {
        let l = Arc::new(HybridLatch::new(0u64));
        let writer = {
            let l = l.clone();
            std::thread::spawn(move || {
                for i in 0..SPIN {
                    *l.write() = i;
                }
            })
        };
        // Under heavy write contention the shared fallback must still
        // produce values.
        for _ in 0..SPIN / 10 {
            let v = l.optimistic_or_shared(3, |v| *v);
            assert!(v <= SPIN);
        }
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = Arc::new(HybridLatch::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..SPIN {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4 * SPIN);
        // Version count: two bumps per write acquisition.
        // ORDERING: test read, ordered by the joins above.
        assert_eq!(l.version.load(Ordering::Relaxed), 8 * SPIN);
    }

    #[test]
    fn optimistic_sees_committed_writes() {
        let l = HybridLatch::new(1u64);
        *l.write() = 2;
        assert_eq!(l.optimistic(|v| *v), Some(2));
    }

    #[test]
    fn validation_fails_after_exclusive_release_even_without_mutation() {
        // The version is bumped on acquire AND release, so a writer that
        // touched nothing still invalidates in-flight optimistic reads —
        // the conservative restart OLC relies on.
        let l = HybridLatch::new(0u64);
        let seen = l.optimistic_version().unwrap();
        drop(l.write()); // acquire + release, no mutation
        assert!(l.optimistic_version().is_some(), "no writer active now");
        assert!(!l.validate(seen), "stale version must not validate");
        // A fresh optimistic read observes the new (even) version and works.
        assert_eq!(l.optimistic(|v| *v), Some(0));
    }

    #[test]
    fn contended_drop_then_upgrade_makes_progress() {
        // The upgrade pattern the B-Tree uses is drop-shared-then-write
        // (never an in-place upgrade, which deadlocks when two holders try
        // it simultaneously). Race several upgraders to prove the pattern
        // is livelock/deadlock free and fully serialized.
        let l = Arc::new(HybridLatch::new(0u64));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let r = l.read();
                    let before = *r;
                    barrier.wait(); // all four hold shared simultaneously
                    drop(r);
                    let mut w = l.write();
                    *w += 1;
                    assert!(*w > before, "upgrade observed its own increment");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn upgrade_revalidation_detects_intervening_writer() {
        // Between dropping shared and acquiring exclusive another writer
        // may slip in; the version counter is what detects it.
        let l = HybridLatch::new(10u64);
        let r = l.read();
        let seen = l.optimistic_version().unwrap();
        drop(r);
        *l.write() = 11; // the intervening writer
        let w = l.write();
        assert!(!l.validate(seen), "upgrade must notice the interleaved write");
        assert_eq!(*w, 11);
    }
}
