//! Inline small-key buffer for B-tree descents and range scans.
//!
//! Separator/fence keys are short — 8 bytes for table trees (big-endian
//! row ids), at most `node::MAX_KEY` for index trees — but the descent
//! used to copy each one into a fresh `Vec<u8>`, one heap allocation per
//! inner hop per restart. [`SmallKey`] keeps keys up to [`INLINE_LEN`]
//! bytes on the stack and only spills longer ones to the heap, so the
//! common descent allocates nothing.

/// Keys at or below this length are stored inline (covers every table key
/// and the typical composite index prefix).
pub const INLINE_LEN: usize = 24;

/// A byte key with inline storage for short keys.
#[derive(Clone)]
pub enum SmallKey {
    Inline { len: u8, buf: [u8; INLINE_LEN] },
    Heap(Vec<u8>),
}

impl SmallKey {
    /// Copy `key` in, inline when it fits.
    #[inline]
    pub fn from_slice(key: &[u8]) -> SmallKey {
        if key.len() <= INLINE_LEN {
            let mut buf = [0u8; INLINE_LEN];
            buf[..key.len()].copy_from_slice(key);
            SmallKey::Inline { len: key.len() as u8, buf }
        } else {
            SmallKey::Heap(key.to_vec())
        }
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            SmallKey::Inline { len, buf } => &buf[..*len as usize],
            SmallKey::Heap(v) => v,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for SmallKey {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SmallKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SmallKey({:02x?})", self.as_slice())
    }
}

impl PartialEq for SmallKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SmallKey {}

impl From<&[u8]> for SmallKey {
    fn from(key: &[u8]) -> SmallKey {
        SmallKey::from_slice(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_keys_stay_inline() {
        let k = SmallKey::from_slice(b"12345678");
        assert!(matches!(k, SmallKey::Inline { .. }));
        assert_eq!(k.as_slice(), b"12345678");
        assert_eq!(k.len(), 8);
    }

    #[test]
    fn boundary_and_spill() {
        let at = vec![7u8; INLINE_LEN];
        let k = SmallKey::from_slice(&at);
        assert!(matches!(k, SmallKey::Inline { .. }));
        assert_eq!(k.as_slice(), &at[..]);

        let over = vec![9u8; INLINE_LEN + 1];
        let k = SmallKey::from_slice(&over);
        assert!(matches!(k, SmallKey::Heap(_)));
        assert_eq!(k.as_slice(), &over[..]);
    }

    #[test]
    fn empty_and_ordering_through_slices() {
        let e = SmallKey::from_slice(b"");
        assert!(e.is_empty());
        let a = SmallKey::from_slice(b"a");
        let b = SmallKey::from_slice(b"b");
        assert!(a.as_slice() < b.as_slice());
        assert_eq!(a, SmallKey::from_slice(b"a"));
    }
}
