//! PhoebeDB's in-memory data-centric storage engine (§5).
//!
//! Three cooperating layers reproduce the paper's storage design:
//!
//! * **Main Storage** ([`buffer`]) — a partitioned buffer pool of fixed
//!   frames holding B-Tree nodes, with pointer swizzling ([`swip`]) instead
//!   of a global page-mapping hash table, and Hot/Cooling/Cold eviction.
//! * **Data Page File** ([`pagefile`]) — the on-disk home of cold pages.
//! * **Data Block File** ([`tier`]) — compressed frozen blocks for data
//!   past the `max_frozen_row_id` watermark.
//!
//! On top sits the swizzling [`btree`]: one tree per relation, table trees
//! keyed by monotonically increasing row ids with PAX leaves ([`pax`]),
//! index trees mapping user keys to row ids. Concurrency uses the hybrid
//! latch ([`latch`]): optimistic lock coupling for traversal, shared/
//! exclusive latches for leaf access (§7.2).

pub mod btree;
pub mod buffer;
pub mod fault_service;
pub mod latch;
pub mod node;
pub mod pagefile;
pub mod pax;
pub mod schema;
pub mod smallkey;
pub mod swip;
pub mod tier;

pub use btree::{row_key, BTree, BatchLeaf, DescentCursor, DescentStep, TreeKind};
pub use buffer::{BufferPool, WalBarrier};
pub use fault_service::FaultTicket;
pub use latch::HybridLatch;
pub use pax::{PaxLayout, PaxLeaf};
pub use schema::{ColType, Schema, Tuple, Value};
pub use smallkey::SmallKey;
pub use swip::{FrameId, Swip, SwipState};
pub use tier::FrozenStore;
