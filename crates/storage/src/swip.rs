//! Swizzled pointers ("swips", §5.3).
//!
//! A swip is a 64-bit word inside a parent B-Tree node that references a
//! child page in one of the paper's three states:
//!
//! * **Hot** — the child is in Main Storage; the swip carries its buffer
//!   frame index, so following it is a plain array index with no mapping
//!   table in between.
//! * **Cooling** — still in memory and still addressed by frame index, but
//!   flagged as an eviction candidate. An access clears the flag (second
//!   chance) instead of paying an I/O.
//! * **Cold** — evicted; the swip carries the page's slot in the Data Page
//!   File, and following it loads the page and re-swizzles the swip to Hot.
//!
//! Bit layout: `bit63` = cold flag (1 ⇒ payload is a [`PageId`]),
//! `bit62` = cooling flag (only meaningful when hot), low 62 bits payload.

use phoebe_common::ids::PageId;

const COLD_BIT: u64 = 1 << 63;
const COOLING_BIT: u64 = 1 << 62;
const PAYLOAD_MASK: u64 = COOLING_BIT - 1;

/// Dense index of a buffer frame in Main Storage.
pub type FrameId = u64;

/// A swizzled child reference stored inside inner nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Swip(u64);

/// The decoded state of a swip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwipState {
    Hot(FrameId),
    Cooling(FrameId),
    Cold(PageId),
}

impl Swip {
    /// A swip that references nothing (used for vacant child slots).
    pub const NULL: Swip = Swip(PAYLOAD_MASK);

    pub fn hot(frame: FrameId) -> Self {
        debug_assert!(frame < PAYLOAD_MASK);
        Swip(frame)
    }

    pub fn cooling(frame: FrameId) -> Self {
        debug_assert!(frame < PAYLOAD_MASK);
        Swip(frame | COOLING_BIT)
    }

    pub fn cold(page: PageId) -> Self {
        debug_assert!(page.raw() < PAYLOAD_MASK);
        Swip(page.raw() | COLD_BIT)
    }

    pub fn is_null(self) -> bool {
        self == Swip::NULL
    }

    pub fn state(self) -> SwipState {
        if self.0 & COLD_BIT != 0 {
            SwipState::Cold(PageId(self.0 & PAYLOAD_MASK))
        } else if self.0 & COOLING_BIT != 0 {
            SwipState::Cooling(self.0 & PAYLOAD_MASK)
        } else {
            SwipState::Hot(self.0)
        }
    }

    /// Frame id if the page is memory-resident (hot or cooling).
    pub fn frame(self) -> Option<FrameId> {
        match self.state() {
            SwipState::Hot(f) | SwipState::Cooling(f) => Some(f),
            SwipState::Cold(_) => None,
        }
    }

    /// Raw encoding, for storage inside fixed-size node arrays.
    pub fn raw(self) -> u64 {
        self.0
    }

    pub fn from_raw(raw: u64) -> Self {
        Swip(raw)
    }

    /// The hot version of a cooling swip (second-chance promotion).
    pub fn heated(self) -> Self {
        debug_assert!(self.0 & COLD_BIT == 0, "cannot heat a cold swip in place");
        Swip(self.0 & !COOLING_BIT)
    }
}

impl std::fmt::Debug for Swip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "Swip(null)")
        } else {
            write!(f, "Swip({:?})", self.state())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_roundtrip() {
        let s = Swip::hot(12345);
        assert_eq!(s.state(), SwipState::Hot(12345));
        assert_eq!(s.frame(), Some(12345));
    }

    #[test]
    fn cooling_roundtrip_and_heating() {
        let s = Swip::cooling(77);
        assert_eq!(s.state(), SwipState::Cooling(77));
        assert_eq!(s.frame(), Some(77));
        assert_eq!(s.heated().state(), SwipState::Hot(77));
    }

    #[test]
    fn cold_roundtrip() {
        let s = Swip::cold(PageId(987654));
        assert_eq!(s.state(), SwipState::Cold(PageId(987654)));
        assert_eq!(s.frame(), None);
    }

    #[test]
    fn raw_encoding_roundtrips_through_node_storage() {
        for s in [Swip::hot(1), Swip::cooling(2), Swip::cold(PageId(3)), Swip::NULL] {
            assert_eq!(Swip::from_raw(s.raw()), s);
        }
    }

    #[test]
    fn null_is_distinct_from_real_swips() {
        assert!(Swip::NULL.is_null());
        assert!(!Swip::hot(0).is_null());
        assert!(!Swip::cold(PageId(0)).is_null());
    }
}
