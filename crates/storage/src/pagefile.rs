//! The Data Page File: on-disk home of *cold* pages (§5.2).
//!
//! A flat file of `PAGE_SIZE` slots addressed by [`PageId`]. Eviction writes
//! a page image into a slot; re-swizzling reads it back. Slots are recycled
//! through a free list when pages are destroyed (e.g. after freezing).

use phoebe_common::config::PAGE_SIZE;
use phoebe_common::error::Result;
use phoebe_common::fault::{FaultFile, FaultFs, OsFs};
use phoebe_common::ids::PageId;
use phoebe_common::sync::{Rank, RankedMutex};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slot-addressed page storage.
pub struct PageFile {
    file: Arc<dyn FaultFile>,
    next: AtomicU64,
    free: RankedMutex<Vec<PageId>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl PageFile {
    /// Create (or truncate) the page file at `path` on the real filesystem.
    pub fn create(path: &Path) -> Result<Self> {
        Self::create_with(&OsFs, path)
    }

    /// [`PageFile::create`] over an injected filesystem — the seam the
    /// crash-torture harness uses to route cold-page I/O through a
    /// [`phoebe_common::fault::SimFs`] torture disk.
    pub fn create_with(fs: &dyn FaultFs, path: &Path) -> Result<Self> {
        let file = fs.create(path)?;
        Ok(PageFile {
            file,
            next: AtomicU64::new(0),
            free: RankedMutex::new(Rank::PageFile, "pagefile.free", Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Reserve a slot for a page being evicted for the first time.
    pub fn alloc(&self) -> PageId {
        if let Some(id) = self.free.lock().pop() {
            return id;
        }
        PageId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Return a slot to the free list (page destroyed).
    pub fn release(&self, id: PageId) {
        self.free.lock().push(id);
    }

    /// Write a page image into its slot.
    pub fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.file.write_all_at(id.raw() * PAGE_SIZE as u64, buf)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read a page image from its slot.
    pub fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.file.read_exact_at(id.raw() * PAGE_SIZE as u64, buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Durability barrier for every previously written page image.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// (physical reads, physical writes) so far.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads.load(Ordering::Relaxed), self.writes.load(Ordering::Relaxed))
    }

    /// Highest slot ever allocated (file length in pages).
    pub fn high_water(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> std::path::PathBuf {
        phoebe_common::KernelConfig::for_tests().data_dir.join("pages.db")
    }

    #[test]
    fn write_then_read_roundtrips() {
        let pf = PageFile::create(&tmp()).unwrap();
        let id = pf.alloc();
        let img = vec![7u8; PAGE_SIZE];
        pf.write_page(id, &img).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        pf.read_page(id, &mut back).unwrap();
        assert_eq!(img, back);
        assert_eq!(pf.io_counts(), (1, 1));
    }

    #[test]
    fn alloc_is_dense_and_recycles() {
        let pf = PageFile::create(&tmp()).unwrap();
        let a = pf.alloc();
        let b = pf.alloc();
        assert_ne!(a, b);
        pf.release(a);
        assert_eq!(pf.alloc(), a, "released slots are reused first");
        assert_eq!(pf.high_water(), 2);
    }

    #[test]
    fn pages_are_independent_slots() {
        let pf = PageFile::create(&tmp()).unwrap();
        let a = pf.alloc();
        let b = pf.alloc();
        pf.write_page(a, &vec![1u8; PAGE_SIZE]).unwrap();
        pf.write_page(b, &vec![2u8; PAGE_SIZE]).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        pf.read_page(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1));
        pf.read_page(b, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2));
    }
}
