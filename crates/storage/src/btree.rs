//! The swizzling B-Tree (§5.1, §5.3).
//!
//! Each relation is one B-Tree rooted in Main Storage. Table trees are
//! keyed by the monotonically increasing row id (big-endian encoded so byte
//! order equals numeric order); index trees map arbitrary byte keys to row
//! ids. Child references are swips, so a hot traversal never consults a
//! mapping table — the paper's replacement for the global buffer hash map.
//!
//! Concurrency follows the paper's hybrid lock strategy (§7.2): descents
//! use optimistic lock coupling (read versions, validate the parent after
//! each hop, restart on interference); leaf operations take shared or
//! exclusive latches. Structure modifications (splits) run on a pessimistic
//! path that holds the tree-meta latch and crabs exclusive latches with
//! preemptive splitting, so they coexist with optimistic readers simply by
//! bumping versions.
//!
//! Two invariants keep swizzling sound:
//! * **single parent** — every swip value (hot frame id or cold page id)
//!   appears in exactly one child slot, so eviction/loading can relocate a
//!   page by searching the (validated) parent for the exact swip value;
//! * **append-only table leaves** — table splits never move rows, they add
//!   a fresh rightmost leaf; a table leaf's row-id range is immutable,
//!   giving upper layers a stable page identity for twin tables (§6.2).

use crate::buffer::{BufferPool, NO_PARENT};
use crate::latch::{LatchVersion, ReadGuard, WriteGuard};
use crate::node::{IndexLeaf, InnerNode, Page};
use crate::pax::{PaxLayout, PaxLeaf};
use crate::schema::Value;
use crate::smallkey::SmallKey;
use crate::swip::{FrameId, Swip, SwipState};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::hist::LatencySite;
use phoebe_common::ids::{RowId, TableId};
use phoebe_common::metrics::{Counter, Metrics};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Which leaf kind the tree stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    Table,
    Index,
}

struct TreeMeta {
    root: Swip,
    /// Levels in the tree; 1 ⇒ the root is a leaf.
    height: u32,
}

/// A B-Tree over buffer frames.
pub struct BTree {
    pub table: TableId,
    kind: TreeKind,
    pool: Arc<BufferPool>,
    meta: crate::latch::HybridLatch<TreeMeta>,
    metrics: Arc<Metrics>,
}

/// Encode a row id as a byte-comparable table key.
#[inline]
pub fn row_key(row: RowId) -> [u8; 8] {
    row.raw().to_be_bytes()
}

#[derive(Clone, Copy)]
enum ParentRef {
    Meta,
    Node(FrameId),
}

impl BTree {
    /// Create a tree whose root is a fresh empty leaf.
    pub fn create(
        pool: Arc<BufferPool>,
        table: TableId,
        kind: TreeKind,
        metrics: Arc<Metrics>,
    ) -> Result<Self> {
        let root = pool.allocate()?;
        {
            let mut g = pool.frame(root).latch.write();
            *g = match kind {
                TreeKind::Table => Page::TableLeaf(PaxLeaf::new()),
                TreeKind::Index => Page::IndexLeaf(IndexLeaf::default()),
            };
        }
        pool.frame(root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
        Ok(BTree {
            table,
            kind,
            pool,
            meta: crate::latch::HybridLatch::new(TreeMeta { root: Swip::hot(root), height: 1 }),
            metrics,
        })
    }

    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Current tree height (levels).
    pub fn height(&self) -> u32 {
        self.meta.optimistic_or_shared(3, |m| m.height)
    }

    // ------------------------------------------------------------------
    // Optimistic descent
    // ------------------------------------------------------------------

    fn validate_parent(&self, parent: &ParentRef, ver: LatchVersion) -> bool {
        match parent {
            ParentRef::Meta => self.meta.validate(ver),
            ParentRef::Node(fid) => self.pool.frame(*fid).latch.validate(ver),
        }
    }

    /// Descend to the leaf responsible for `key` and latch it.
    ///
    /// Returns the leaf frame, its guard (shared or exclusive per `WRITE`),
    /// and — only when `FENCE` — the *next separator*: the tightest upper
    /// bound on this leaf's key range seen on the path, which is exactly
    /// the first key of the next leaf, the resume point for range scans.
    /// Point operations pass `FENCE = false` so the hop loop never copies
    /// separator bytes at all; range scans get the fence in a [`SmallKey`]
    /// that keeps short separators (every table key, most index prefixes)
    /// on the stack.
    fn descend<const WRITE: bool, const FENCE: bool>(
        &self,
        key: &[u8],
    ) -> Result<(FrameId, LeafGuard<'_>, Option<SmallKey>)> {
        // Figure 12's "latching" component: traversal latch work.
        let _t = self.metrics.timer(phoebe_common::metrics::Component::Latch);
        // Each restarted attempt's wasted traversal time feeds the
        // btree_restart latency histogram.
        let mut attempt = std::time::Instant::now();
        let restart = |attempt: &mut std::time::Instant| self.note_restart(attempt);
        'restart: loop {
            let Some(((root, height), meta_ver)) =
                self.meta.optimistic_versioned(|m| (m.root, m.height))
            else {
                std::hint::spin_loop();
                continue 'restart;
            };
            let mut parent = ParentRef::Meta;
            let mut parent_ver = meta_ver;
            let mut cur = root;
            let mut level = height;
            let mut next_sep: Option<SmallKey> = None;
            loop {
                let fid = match cur.state() {
                    SwipState::Hot(f) => f,
                    SwipState::Cooling(f) => {
                        // Second chance: heat through the parent, best effort.
                        if let ParentRef::Node(pfid) = parent {
                            self.heat(pfid, f);
                        }
                        f
                    }
                    SwipState::Cold(pid) => {
                        let ParentRef::Node(pfid) = parent else {
                            return Err(PhoebeError::internal("root swip went cold"));
                        };
                        self.fix_cold(pfid, cur, pid)?;
                        continue 'restart;
                    }
                };
                let frame = self.pool.frame(fid);
                if level == 1 {
                    let guard = if WRITE {
                        LeafGuard::Write(frame.latch.write())
                    } else {
                        LeafGuard::Read(frame.latch.read())
                    };
                    if !self.validate_parent(&parent, parent_ver) {
                        drop(guard);
                        restart(&mut attempt);
                        continue 'restart;
                    }
                    return Ok((fid, guard, next_sep));
                }
                // Inner hop: read the child slot optimistically.
                let Some((read, ver)) = frame.latch.optimistic_versioned(|p| match p {
                    Page::Inner(n) => {
                        let i = n.child_index(key);
                        let sep =
                            (FENCE && i < n.count as usize).then(|| SmallKey::from_slice(n.key(i)));
                        Some((n.children[i], sep))
                    }
                    _ => None,
                }) else {
                    restart(&mut attempt);
                    std::hint::spin_loop();
                    continue 'restart;
                };
                if !self.validate_parent(&parent, parent_ver) {
                    restart(&mut attempt);
                    continue 'restart;
                }
                let Some((child_raw, sep)) = read else {
                    // Frame was repurposed under us.
                    restart(&mut attempt);
                    continue 'restart;
                };
                if let Some(s) = sep {
                    next_sep = Some(s);
                }
                parent = ParentRef::Node(fid);
                parent_ver = ver;
                cur = Swip::from_raw(child_raw);
                level -= 1;
            }
        }
    }

    /// Re-swizzle a cold child in (validated) parent `pfid`. The exact cold
    /// swip value identifies the slot thanks to the single-parent invariant.
    ///
    /// The frame allocation and read I/O run *before* the parent latch is
    /// taken (the caller holds nothing here), so eviction — which needs
    /// parent latches — can always make progress.
    fn fix_cold(&self, pfid: FrameId, cold: Swip, pid: phoebe_common::ids::PageId) -> Result<()> {
        // Epoch before the read: install_loaded rejects the frame if the
        // page goes through an install/evict cycle while we read stale
        // bytes (PageId ABA behind a byte-identical cold swip).
        let epoch = self.pool.fault_epoch(pid);
        let fid = self.pool.load_cold(pid, pfid)?;
        // The blocking descent restarts unconditionally after a fault, so
        // the re-arm stamp is only for the batch cursor.
        let _ = self.install_loaded(pfid, cold, fid, epoch);
        Ok(())
    }

    /// Swizzle-install half of a cold-page fault: swing the parent's child
    /// slot from `cold` to the freshly loaded `fid`, or discard the
    /// duplicate if a racing loader won. Shared by the blocking
    /// [`BTree::fix_cold`] path and the asynchronous ticket resume in
    /// [`DescentCursor::step`]. `fault_epoch` is the page's
    /// [`BufferPool::fault_epoch`] captured before the disk read was
    /// issued; if it has moved, the page was installed, possibly
    /// modified, and evicted again while the fault was in flight, so
    /// `fid` holds bytes read before those committed writes — installing
    /// it over the (byte-identical) cold swip would silently lose them.
    /// The stale frame is discarded like a lost race.
    ///
    /// On success, returns the parent's post-install version and its
    /// reuse epoch (read under the latch) so a suspended cursor can
    /// re-arm its optimistic descent right at the parent instead of
    /// re-descending from the root; `None` means the caller must restart
    /// to re-route (the slot stays cold in the stale-epoch case, so the
    /// restart re-faults and reads current bytes).
    fn install_loaded(
        &self,
        pfid: FrameId,
        cold: Swip,
        fid: FrameId,
        fault_epoch: u64,
    ) -> Option<(LatchVersion, u64)> {
        let SwipState::Cold(pid) = cold.state() else {
            unreachable!("install_loaded takes the cold swip being replaced")
        };
        let mut pguard = self.pool.frame(pfid).latch.write();
        let installed = self.pool.fault_epoch(pid) == fault_epoch
            && match &mut *pguard {
                Page::Inner(pnode) => match pnode.find_child_slot(cold.raw()) {
                    Some(slot) => {
                        pnode.children[slot] = Swip::hot(fid).raw();
                        true
                    }
                    None => false, // someone else already loaded it
                },
                _ => false, // parent relocated; restart will re-route
            };
        if installed {
            self.pool.frame(pfid).meta.dirty.store(true, Ordering::Relaxed);
            let rearm = pguard.version_on_release();
            // Under the write latch the frame cannot be recycled, so this
            // epoch read names the parent node we just installed into.
            let pepoch = self.pool.frame(pfid).meta.reuse_epoch();
            drop(pguard);
            Some((rearm, pepoch))
        } else {
            drop(pguard);
            // Drop the duplicate (or stale) copy we loaded; forget its disk
            // slot first so release() does not free a PageId that is still
            // referenced.
            self.pool.frame(fid).meta.disk_page_forget();
            self.pool.release(fid);
            None
        }
    }

    /// Best-effort Cooling → Hot promotion through the parent.
    fn heat(&self, pfid: FrameId, fid: FrameId) {
        if let Some(mut pguard) = self.pool.frame(pfid).latch.try_write() {
            if let Page::Inner(pnode) = &mut *pguard {
                if let Some(slot) = pnode.find_child_slot(Swip::cooling(fid).raw()) {
                    BufferPool::heat_in_parent(pnode, slot);
                }
            }
        }
    }

    /// One descent restart: the counter and the wasted-work histogram are
    /// two views of the same event and must stay in lockstep (asserted by
    /// `restart_counter_matches_restart_latency_samples`).
    fn note_restart(&self, attempt: &mut std::time::Instant) {
        self.metrics.incr(Counter::LatchRestarts);
        self.metrics.record_latency(LatencySite::BtreeRestart, attempt.elapsed().as_nanos() as u64);
        self.metrics.tracer().instant(
            phoebe_common::trace::EventKind::LatchRestart,
            0,
            attempt.elapsed().as_nanos() as u64,
            0,
        );
        *attempt = std::time::Instant::now();
    }

    // ------------------------------------------------------------------
    // Resumable descent (interleaved batch execution)
    // ------------------------------------------------------------------

    /// Open a resumable point-lookup descent for `key`. The cursor runs
    /// the same optimistic-lock-coupling hop loop as the blocking descent
    /// but suspends between hops (after prefetching the next node) and on
    /// cold-page faults (after kicking the read to the background
    /// loader), so a batch of cursors can overlap each other's cache
    /// misses and disk I/O. `write` selects the leaf latch mode.
    pub fn batch_cursor(&self, key: &[u8], write: bool) -> DescentCursor<'_> {
        DescentCursor {
            tree: self,
            key: SmallKey::from_slice(key),
            write,
            state: CursorState::Start,
            parent: ParentRef::Meta,
            parent_ver: LatchVersion::default(),
            parent_epoch: 0,
            cur: Swip::NULL,
            level: 0,
            attempt: std::time::Instant::now(),
        }
    }

    // ------------------------------------------------------------------
    // Table operations
    // ------------------------------------------------------------------

    /// Append a tuple under a row id drawn *inside* the rightmost leaf's
    /// exclusive latch, so allocation order equals append order — the
    /// invariant behind the monotonically increasing row-id key (§5.1).
    /// Returns `(row_id, leaf frame, first row id)`; `under_latch` runs
    /// after the append while the leaf is still latched (twin install).
    pub fn table_append_alloc(
        &self,
        layout: &PaxLayout,
        alloc: &(dyn Fn() -> RowId + Sync),
        tuple: &[Value],
        under_latch: impl FnOnce(&mut PaxLeaf, usize, RowId, FrameId),
    ) -> Result<(RowId, FrameId, RowId)> {
        debug_assert_eq!(self.kind, TreeKind::Table);
        // Rightmost descent: longer than any 8-byte row key.
        const MAX_KEY_SENTINEL: [u8; 9] = [0xff; 9];
        {
            let (fid, mut guard, _) = self.descend::<true, false>(&MAX_KEY_SENTINEL)?;
            if let Page::TableLeaf(leaf) = guard.page_mut() {
                if !leaf.is_full(layout) {
                    let row_id = alloc();
                    let idx = leaf.append(layout, row_id, tuple);
                    let first = leaf.first_row_id().expect("non-empty leaf");
                    under_latch(leaf, idx, first, fid);
                    self.mark_dirty(fid);
                    return Ok((row_id, fid, first));
                }
            } else {
                return Err(PhoebeError::internal("table descend hit non-table leaf"));
            }
        }
        self.grow_table_alloc(layout, alloc, tuple, under_latch)
    }

    /// Pessimistic variant of [`BTree::table_append_alloc`]: walk the right
    /// spine under the meta latch, splitting full inners preemptively, and
    /// allocate the row id once the target leaf is exclusively held.
    fn grow_table_alloc(
        &self,
        layout: &PaxLayout,
        alloc: &(dyn Fn() -> RowId + Sync),
        tuple: &[Value],
        under_latch: impl FnOnce(&mut PaxLeaf, usize, RowId, FrameId),
    ) -> Result<(RowId, FrameId, RowId)> {
        const MAX_KEY_SENTINEL: [u8; 9] = [0xff; 9];
        let key: &[u8] = &MAX_KEY_SENTINEL;
        let mut reserve = self.pool.reserve(6);
        let mut meta = self.meta.write();
        // Root-is-leaf: either append in place or grow a root above it.
        if meta.height == 1 {
            let root_fid = meta.root.frame().expect("root is always hot");
            let mut root_guard = self.pool.frame(root_fid).latch.write();
            let Page::TableLeaf(leaf) = &mut *root_guard else {
                return Err(PhoebeError::internal("corrupt root"));
            };
            if !leaf.is_full(layout) {
                let row_id = alloc();
                let idx = leaf.append(layout, row_id, tuple);
                let first = leaf.first_row_id().expect("non-empty leaf");
                under_latch(leaf, idx, first, root_fid);
                drop(root_guard);
                self.mark_dirty(root_fid);
                return Ok((row_id, root_fid, first));
            }
            drop(root_guard);
            let new_root = reserve.take()?;
            {
                let mut g = self.pool.frame(new_root).latch.write();
                let mut inner = InnerNode::default();
                inner.children[0] = Swip::hot(root_fid).raw();
                *g = Page::Inner(inner);
            }
            self.pool.frame(new_root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
            self.pool.frame(root_fid).meta.parent.store(new_root, Ordering::Relaxed);
            self.mark_dirty(new_root);
            meta.root = Swip::hot(new_root);
            meta.height += 1;
        }
        // Crab down the right spine.
        let mut cur = meta.root.frame().expect("root hot");
        let mut level = meta.height;
        let mut guard = self.pool.frame(cur).latch.write();
        loop {
            if let Page::Inner(n) = &*guard {
                if n.is_full() {
                    let parent_hint = self.pool.frame(cur).meta.parent.load(Ordering::Relaxed);
                    let (right_fid, sep) = self.split_inner(&mut reserve, &mut guard)?;
                    if parent_hint == NO_PARENT {
                        let new_root = reserve.take()?;
                        {
                            let mut g = self.pool.frame(new_root).latch.write();
                            let mut inner = InnerNode::default();
                            inner.children[0] = Swip::hot(cur).raw();
                            inner.insert_separator(0, &sep, Swip::hot(right_fid).raw());
                            *g = Page::Inner(inner);
                        }
                        self.pool.frame(new_root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
                        self.pool.frame(cur).meta.parent.store(new_root, Ordering::Relaxed);
                        self.pool.frame(right_fid).meta.parent.store(new_root, Ordering::Relaxed);
                        self.mark_dirty(new_root);
                        meta.root = Swip::hot(new_root);
                        meta.height += 1;
                    } else {
                        let mut pg = self.pool.frame(parent_hint).latch.write();
                        let Page::Inner(pn) = &mut *pg else {
                            return Err(PhoebeError::internal("parent hint corrupt"));
                        };
                        let slot = pn
                            .find_child_slot(Swip::hot(cur).raw())
                            .ok_or_else(|| PhoebeError::internal("child slot missing"))?;
                        pn.insert_separator(slot, &sep, Swip::hot(right_fid).raw());
                        self.pool
                            .frame(right_fid)
                            .meta
                            .parent
                            .store(parent_hint, Ordering::Relaxed);
                        self.mark_dirty(parent_hint);
                    }
                    // Rightmost descent always follows the right half.
                    drop(guard);
                    cur = right_fid;
                    guard = self.pool.frame(cur).latch.write();
                    continue;
                }
            }
            match &mut *guard {
                Page::Inner(n) => {
                    let idx = n.child_index(key);
                    let child = Swip::from_raw(n.children[idx]);
                    let next = match child.state() {
                        SwipState::Hot(f) | SwipState::Cooling(f) => f,
                        SwipState::Cold(pid) => {
                            let f = reserve.take()?;
                            self.pool.read_into_frame(f, pid, cur)?;
                            n.children[idx] = Swip::hot(f).raw();
                            self.mark_dirty(cur);
                            f
                        }
                    };
                    if level == 2 {
                        // The child is the rightmost leaf.
                        let mut leaf_guard = self.pool.frame(next).latch.write();
                        let Page::TableLeaf(leaf) = &mut *leaf_guard else {
                            return Err(PhoebeError::internal("expected table leaf"));
                        };
                        if !leaf.is_full(layout) {
                            let row_id = alloc();
                            let idx0 = leaf.append(layout, row_id, tuple);
                            let first = leaf.first_row_id().expect("non-empty leaf");
                            under_latch(leaf, idx0, first, next);
                            drop(leaf_guard);
                            self.mark_dirty(next);
                            return Ok((row_id, next, first));
                        }
                        drop(leaf_guard);
                        // Hang a fresh rightmost leaf; the row id drawn now
                        // is strictly greater than everything appended so
                        // far (we hold the parent, the old leaf is full).
                        let row_id = alloc();
                        let new_leaf = reserve.take()?;
                        {
                            let mut g = self.pool.frame(new_leaf).latch.write();
                            let mut fresh = PaxLeaf::new();
                            let idx0 = fresh.append(layout, row_id, tuple);
                            under_latch(&mut fresh, idx0, row_id, new_leaf);
                            *g = Page::TableLeaf(fresh);
                        }
                        self.pool.frame(new_leaf).meta.parent.store(cur, Ordering::Relaxed);
                        n.insert_separator(idx, &row_key(row_id), Swip::hot(new_leaf).raw());
                        self.mark_dirty(cur);
                        self.mark_dirty(new_leaf);
                        return Ok((row_id, new_leaf, row_id));
                    }
                    let next_guard = self.pool.frame(next).latch.write();
                    drop(guard);
                    cur = next;
                    guard = next_guard;
                    level -= 1;
                }
                Page::TableLeaf(_) => {
                    return Err(PhoebeError::internal("leaf above level 1 in table tree"));
                }
                _ => return Err(PhoebeError::internal("unexpected page kind in table tree")),
            }
        }
    }

    /// Append a tuple under `row_id` (must exceed every existing row id).
    /// Returns the leaf frame and its first row id (the page identity the
    /// twin table keys on). `under_latch` runs right after the append while
    /// the leaf is still exclusively latched — MVCC uses it to install the
    /// twin entry before the tuple becomes readable. Single-writer only
    /// (loader/recovery); concurrent inserts go through
    /// [`BTree::table_append_alloc`].
    pub fn table_append(
        &self,
        layout: &PaxLayout,
        row_id: RowId,
        tuple: &[Value],
        under_latch: impl FnOnce(&mut PaxLeaf, usize, RowId, FrameId),
    ) -> Result<(FrameId, RowId)> {
        debug_assert_eq!(self.kind, TreeKind::Table);
        let key = row_key(row_id);
        {
            let (fid, mut guard, _) = self.descend::<true, false>(&key)?;
            if let Page::TableLeaf(leaf) = guard.page_mut() {
                if !leaf.is_full(layout) {
                    let idx = leaf.append(layout, row_id, tuple);
                    let first = leaf.first_row_id().expect("non-empty leaf");
                    under_latch(leaf, idx, first, fid);
                    self.mark_dirty(fid);
                    return Ok((fid, first));
                }
            } else {
                return Err(PhoebeError::internal("table descend hit non-table leaf"));
            }
        }
        // Leaf full: grow a fresh rightmost leaf on the pessimistic path.
        self.grow_table(layout, row_id, tuple, under_latch)
    }

    /// Read `row_id` under a shared leaf latch. `f` also receives the
    /// leaf's first row id — the stable page identity twin tables key on.
    pub fn table_read<R>(
        &self,
        row_id: RowId,
        f: impl FnOnce(&PaxLeaf, usize, RowId, FrameId) -> R,
    ) -> Result<Option<R>> {
        debug_assert_eq!(self.kind, TreeKind::Table);
        let key = row_key(row_id);
        let (fid, guard, _) = self.descend::<false, false>(&key)?;
        let Page::TableLeaf(leaf) = guard.page() else {
            return Err(PhoebeError::internal("table descend hit non-table leaf"));
        };
        let out = leaf.find(row_id).map(|row| {
            let first = leaf.first_row_id().expect("non-empty leaf");
            f(leaf, row, first, fid)
        });
        if out.is_some() {
            self.pool.touch(fid);
        }
        Ok(out)
    }

    /// Mutate the row under an exclusive leaf latch (in-place update path).
    pub fn table_modify<R>(
        &self,
        row_id: RowId,
        f: impl FnOnce(&mut PaxLeaf, usize, RowId, FrameId) -> R,
    ) -> Result<Option<R>> {
        debug_assert_eq!(self.kind, TreeKind::Table);
        let key = row_key(row_id);
        let (fid, mut guard, _) = self.descend::<true, false>(&key)?;
        let Page::TableLeaf(leaf) = guard.page_mut() else {
            return Err(PhoebeError::internal("table descend hit non-table leaf"));
        };
        let out = leaf.find(row_id).map(|row| {
            let first = leaf.first_row_id().expect("non-empty leaf");
            f(leaf, row, first, fid)
        });
        if out.is_some() {
            self.mark_dirty(fid);
            self.pool.touch(fid);
        }
        Ok(out)
    }

    /// Visit every leaf left-to-right under shared latches (one at a time).
    /// `f` returns `false` to stop early. Used by temperature scans (§5.2).
    pub fn table_for_each_leaf(&self, mut f: impl FnMut(FrameId, &PaxLeaf) -> bool) -> Result<()> {
        debug_assert_eq!(self.kind, TreeKind::Table);
        let mut lo = SmallKey::from_slice(&[0u8; 8]);
        loop {
            let (fid, guard, next) = self.descend::<false, true>(&lo)?;
            let Page::TableLeaf(leaf) = guard.page() else {
                return Err(PhoebeError::internal("table descend hit non-table leaf"));
            };
            if !f(fid, leaf) {
                return Ok(());
            }
            drop(guard);
            match next {
                Some(s) => lo = s,
                None => return Ok(()),
            }
        }
    }

    fn mark_dirty(&self, fid: FrameId) {
        self.pool.frame(fid).meta.dirty.store(true, Ordering::Relaxed);
    }

    /// Record `gsn` as the newest WAL touching the leaf holding `fid`
    /// (write-barrier input for Steal eviction, §8).
    pub fn stamp_gsn(&self, fid: FrameId, gsn: u64) {
        self.pool.frame(fid).meta.page_gsn.fetch_max(gsn, Ordering::Relaxed);
    }

    /// Pessimistic growth for table trees: walk the right spine with
    /// exclusive crabbing, splitting full inner nodes preemptively, then
    /// hang a fresh empty leaf for `row_id` and append into it.
    fn grow_table(
        &self,
        layout: &PaxLayout,
        row_id: RowId,
        tuple: &[Value],
        under_latch: impl FnOnce(&mut PaxLeaf, usize, RowId, FrameId),
    ) -> Result<(FrameId, RowId)> {
        let key = row_key(row_id);
        // Pre-reserve frames before taking any latch: allocating under an
        // exclusive latch would starve eviction of every child of that node.
        let mut reserve = self.pool.reserve(6);
        let mut meta = self.meta.write();
        // Root may itself be the full leaf.
        let root_fid = meta.root.frame().expect("root is always hot");
        if meta.height == 1 {
            let root_guard = self.pool.frame(root_fid).latch.write();
            let Page::TableLeaf(leaf) = &*root_guard else {
                return Err(PhoebeError::internal("corrupt root"));
            };
            if !leaf.is_full(layout) {
                drop(root_guard);
                drop(meta);
                return self.table_append(layout, row_id, tuple, under_latch);
            }
            drop(root_guard);
            let new_root = reserve.take()?;
            {
                let mut g = self.pool.frame(new_root).latch.write();
                let mut inner = InnerNode::default();
                inner.children[0] = Swip::hot(root_fid).raw();
                *g = Page::Inner(inner);
            }
            self.pool.frame(new_root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
            self.pool.frame(root_fid).meta.parent.store(new_root, Ordering::Relaxed);
            self.mark_dirty(new_root);
            meta.root = Swip::hot(new_root);
            meta.height += 1;
        }

        // Crab down the right spine.
        let mut cur = meta.root.frame().expect("root hot");
        let mut level = meta.height;
        let mut guard = self.pool.frame(cur).latch.write();
        loop {
            // Preemptively split a full inner so a child split always fits.
            if let Page::Inner(n) = &*guard {
                if n.is_full() {
                    let parent_hint = self.pool.frame(cur).meta.parent.load(Ordering::Relaxed);
                    let (right_fid, sep) = self.split_inner(&mut reserve, &mut guard)?;
                    if parent_hint == NO_PARENT {
                        // cur was the root: grow a new root.
                        let new_root = reserve.take()?;
                        {
                            let mut g = self.pool.frame(new_root).latch.write();
                            let mut inner = InnerNode::default();
                            inner.children[0] = Swip::hot(cur).raw();
                            inner.insert_separator(0, &sep, Swip::hot(right_fid).raw());
                            *g = Page::Inner(inner);
                        }
                        self.pool.frame(new_root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
                        self.pool.frame(cur).meta.parent.store(new_root, Ordering::Relaxed);
                        self.pool.frame(right_fid).meta.parent.store(new_root, Ordering::Relaxed);
                        self.mark_dirty(new_root);
                        meta.root = Swip::hot(new_root);
                        meta.height += 1;
                    } else {
                        // Parent has room (preemptive invariant).
                        let mut pg = self.pool.frame(parent_hint).latch.write();
                        let Page::Inner(pn) = &mut *pg else {
                            return Err(PhoebeError::internal("parent hint corrupt"));
                        };
                        let slot = pn
                            .find_child_slot(Swip::hot(cur).raw())
                            .ok_or_else(|| PhoebeError::internal("child slot missing"))?;
                        pn.insert_separator(slot, &sep, Swip::hot(right_fid).raw());
                        self.pool
                            .frame(right_fid)
                            .meta
                            .parent
                            .store(parent_hint, Ordering::Relaxed);
                        self.mark_dirty(parent_hint);
                    }
                    // Re-route: the key may now belong right of the split.
                    if key.as_slice() >= sep.as_slice() {
                        drop(guard);
                        cur = right_fid;
                        guard = self.pool.frame(cur).latch.write();
                    }
                    continue;
                }
            }
            match &mut *guard {
                Page::Inner(n) => {
                    if level == 2 {
                        // The child is the (full) rightmost leaf: hang a new
                        // empty leaf for row ids >= row_id.
                        let idx = n.child_index(&key);
                        let child = Swip::from_raw(n.children[idx]);
                        let full = match child.state() {
                            SwipState::Hot(f) | SwipState::Cooling(f) => {
                                self.pool.frame(f).latch.read().table_leaf_full(layout)
                            }
                            SwipState::Cold(_) => false, // must load to know
                        };
                        if !full {
                            // Either not full (raced) or cold: retry fast path.
                            drop(guard);
                            drop(meta);
                            return self.table_append(layout, row_id, tuple, under_latch);
                        }
                        let new_leaf = reserve.take()?;
                        {
                            let mut g = self.pool.frame(new_leaf).latch.write();
                            let mut leaf = PaxLeaf::new();
                            let idx0 = leaf.append(layout, row_id, tuple);
                            under_latch(&mut leaf, idx0, row_id, new_leaf);
                            *g = Page::TableLeaf(leaf);
                        }
                        self.pool.frame(new_leaf).meta.parent.store(cur, Ordering::Relaxed);
                        n.insert_separator(idx, &key, Swip::hot(new_leaf).raw());
                        self.mark_dirty(cur);
                        self.mark_dirty(new_leaf);
                        return Ok((new_leaf, row_id));
                    }
                    let idx = n.child_index(&key);
                    let child = Swip::from_raw(n.children[idx]);
                    let next = match child.state() {
                        SwipState::Hot(f) | SwipState::Cooling(f) => f,
                        SwipState::Cold(pid) => {
                            let f = reserve.take()?;
                            self.pool.read_into_frame(f, pid, cur)?;
                            n.children[idx] = Swip::hot(f).raw();
                            self.mark_dirty(cur);
                            f
                        }
                    };
                    let next_guard = self.pool.frame(next).latch.write();
                    drop(guard);
                    cur = next;
                    guard = next_guard;
                    level -= 1;
                }
                Page::TableLeaf(leaf) => {
                    // height == 1 case resolved above; reaching a leaf here
                    // means it has room (preemptive splits above).
                    if leaf.is_full(layout) {
                        return Err(PhoebeError::internal("leaf full on pessimistic path"));
                    }
                    let idx = leaf.append(layout, row_id, tuple);
                    let first = leaf.first_row_id().expect("non-empty leaf");
                    under_latch(leaf, idx, first, cur);
                    self.mark_dirty(cur);
                    return Ok((cur, first));
                }
                _ => return Err(PhoebeError::internal("unexpected page kind in table tree")),
            }
        }
    }

    /// Split an exclusively held inner node; returns the new right sibling's
    /// frame and the promoted separator. Updates moved children's parent
    /// hints.
    fn split_inner(
        &self,
        reserve: &mut crate::buffer::FrameReserve,
        guard: &mut WriteGuard<'_, Page>,
    ) -> Result<(FrameId, Vec<u8>)> {
        let right_fid = reserve.take()?;
        let Page::Inner(n) = &mut **guard else {
            return Err(PhoebeError::internal("split_inner on non-inner"));
        };
        let (right, sep) = n.split();
        for i in 0..=right.count as usize {
            if let Some(f) = Swip::from_raw(right.children[i]).frame() {
                self.pool.frame(f).meta.parent.store(right_fid, Ordering::Relaxed);
            }
        }
        {
            let mut g = self.pool.frame(right_fid).latch.write();
            *g = Page::Inner(right);
        }
        self.mark_dirty(right_fid);
        Ok((right_fid, sep))
    }

    // ------------------------------------------------------------------
    // Index operations
    // ------------------------------------------------------------------

    /// Insert `(key, row_id)`; `Err(DuplicateKey)` if the key exists.
    pub fn index_insert(&self, key: &[u8], row_id: RowId) -> Result<()> {
        debug_assert_eq!(self.kind, TreeKind::Index);
        {
            let (fid, mut guard, _) = self.descend::<true, false>(key)?;
            if let Page::IndexLeaf(leaf) = guard.page_mut() {
                if !leaf.is_full() {
                    return if leaf.insert(key, row_id.raw()) {
                        self.mark_dirty(fid);
                        self.pool.touch(fid);
                        Ok(())
                    } else {
                        Err(PhoebeError::DuplicateKey { index: self.table })
                    };
                }
            } else {
                return Err(PhoebeError::internal("index descend hit non-index leaf"));
            }
        }
        self.index_insert_pessimistic(key, row_id)
    }

    /// Exact lookup.
    pub fn index_get(&self, key: &[u8]) -> Result<Option<RowId>> {
        debug_assert_eq!(self.kind, TreeKind::Index);
        let (_fid, guard, _) = self.descend::<false, false>(key)?;
        let Page::IndexLeaf(leaf) = guard.page() else {
            return Err(PhoebeError::internal("index descend hit non-index leaf"));
        };
        Ok(leaf.get(key).map(RowId))
    }

    /// Remove `key`; returns the row id it mapped to.
    pub fn index_remove(&self, key: &[u8]) -> Result<Option<RowId>> {
        debug_assert_eq!(self.kind, TreeKind::Index);
        let (fid, mut guard, _) = self.descend::<true, false>(key)?;
        let Page::IndexLeaf(leaf) = guard.page_mut() else {
            return Err(PhoebeError::internal("index descend hit non-index leaf"));
        };
        let out = leaf.remove(key).map(RowId);
        if out.is_some() {
            self.mark_dirty(fid);
        }
        Ok(out)
    }

    /// Visit entries with `low <= key <= high` in order; `f` returns
    /// `false` to stop. Latches one leaf at a time; resumes across leaves
    /// via the descent's next-separator fence key.
    pub fn index_range(
        &self,
        low: &[u8],
        high: &[u8],
        mut f: impl FnMut(&[u8], RowId) -> bool,
    ) -> Result<()> {
        debug_assert_eq!(self.kind, TreeKind::Index);
        let mut lo = SmallKey::from_slice(low);
        loop {
            let (_fid, guard, next) = self.descend::<false, true>(&lo)?;
            let Page::IndexLeaf(leaf) = guard.page() else {
                return Err(PhoebeError::internal("index descend hit non-index leaf"));
            };
            let start = leaf.lower_bound(&lo);
            for i in start..leaf.count as usize {
                let k = leaf.key(i);
                if k > high {
                    return Ok(());
                }
                if !f(k, RowId(leaf.row_ids[i])) {
                    return Ok(());
                }
            }
            drop(guard);
            match next {
                Some(s) if s.as_slice() <= high => lo = s,
                _ => return Ok(()),
            }
        }
    }

    /// Pessimistic insert with preemptive splitting (index trees).
    fn index_insert_pessimistic(&self, key: &[u8], row_id: RowId) -> Result<()> {
        // See grow_table: frames must be reserved before latching.
        let mut reserve = self.pool.reserve(8);
        let mut meta = self.meta.write();
        let root_fid = meta.root.frame().expect("root is always hot");
        // Root leaf split.
        if meta.height == 1 {
            let mut root_guard = self.pool.frame(root_fid).latch.write();
            let Page::IndexLeaf(leaf) = &mut *root_guard else {
                return Err(PhoebeError::internal("corrupt root"));
            };
            if leaf.is_full() {
                let (right, sep) = leaf.split();
                let right_fid = reserve.take()?;
                {
                    let mut g = self.pool.frame(right_fid).latch.write();
                    *g = Page::IndexLeaf(right);
                }
                let new_root = reserve.take()?;
                {
                    let mut g = self.pool.frame(new_root).latch.write();
                    let mut inner = InnerNode::default();
                    inner.children[0] = Swip::hot(root_fid).raw();
                    inner.insert_separator(0, &sep, Swip::hot(right_fid).raw());
                    *g = Page::Inner(inner);
                }
                self.pool.frame(new_root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
                self.pool.frame(root_fid).meta.parent.store(new_root, Ordering::Relaxed);
                self.pool.frame(right_fid).meta.parent.store(new_root, Ordering::Relaxed);
                self.mark_dirty(root_fid);
                self.mark_dirty(right_fid);
                self.mark_dirty(new_root);
                meta.root = Swip::hot(new_root);
                meta.height += 1;
            }
            drop(root_guard);
        }
        if meta.height == 1 {
            // Still a leaf root (it had room after all); plain insert.
            let mut g = self.pool.frame(meta.root.frame().expect("hot")).latch.write();
            let Page::IndexLeaf(leaf) = &mut *g else {
                return Err(PhoebeError::internal("corrupt root"));
            };
            return if leaf.insert(key, row_id.raw()) {
                Ok(())
            } else {
                Err(PhoebeError::DuplicateKey { index: self.table })
            };
        }

        // Crab down, splitting full nodes preemptively.
        let mut cur = meta.root.frame().expect("hot");
        let mut guard = self.pool.frame(cur).latch.write();
        loop {
            if let Page::Inner(n) = &*guard {
                if n.is_full() {
                    let parent_hint = self.pool.frame(cur).meta.parent.load(Ordering::Relaxed);
                    let (right_fid, sep) = self.split_inner(&mut reserve, &mut guard)?;
                    if parent_hint == NO_PARENT {
                        let new_root = reserve.take()?;
                        {
                            let mut g = self.pool.frame(new_root).latch.write();
                            let mut inner = InnerNode::default();
                            inner.children[0] = Swip::hot(cur).raw();
                            inner.insert_separator(0, &sep, Swip::hot(right_fid).raw());
                            *g = Page::Inner(inner);
                        }
                        self.pool.frame(new_root).meta.parent.store(NO_PARENT, Ordering::Relaxed);
                        self.pool.frame(cur).meta.parent.store(new_root, Ordering::Relaxed);
                        self.pool.frame(right_fid).meta.parent.store(new_root, Ordering::Relaxed);
                        self.mark_dirty(new_root);
                        meta.root = Swip::hot(new_root);
                        meta.height += 1;
                    } else {
                        let mut pg = self.pool.frame(parent_hint).latch.write();
                        let Page::Inner(pn) = &mut *pg else {
                            return Err(PhoebeError::internal("parent hint corrupt"));
                        };
                        let slot = pn
                            .find_child_slot(Swip::hot(cur).raw())
                            .ok_or_else(|| PhoebeError::internal("child slot missing"))?;
                        pn.insert_separator(slot, &sep, Swip::hot(right_fid).raw());
                        self.pool
                            .frame(right_fid)
                            .meta
                            .parent
                            .store(parent_hint, Ordering::Relaxed);
                        self.mark_dirty(parent_hint);
                    }
                    if key >= sep.as_slice() {
                        drop(guard);
                        cur = right_fid;
                        guard = self.pool.frame(cur).latch.write();
                    }
                    continue;
                }
            }
            match &mut *guard {
                Page::Inner(n) => {
                    let idx = n.child_index(key);
                    let child = Swip::from_raw(n.children[idx]);
                    let next = match child.state() {
                        SwipState::Hot(f) | SwipState::Cooling(f) => f,
                        SwipState::Cold(pid) => {
                            let f = reserve.take()?;
                            self.pool.read_into_frame(f, pid, cur)?;
                            n.children[idx] = Swip::hot(f).raw();
                            self.mark_dirty(cur);
                            f
                        }
                    };
                    let mut next_guard = self.pool.frame(next).latch.write();
                    // Split a full child leaf while we still hold its parent.
                    if let Page::IndexLeaf(leaf) = &mut *next_guard {
                        if leaf.is_full() {
                            let (right, sep) = leaf.split();
                            let right_fid = reserve.take()?;
                            {
                                let mut g = self.pool.frame(right_fid).latch.write();
                                *g = Page::IndexLeaf(right);
                            }
                            self.pool.frame(right_fid).meta.parent.store(cur, Ordering::Relaxed);
                            n.insert_separator(idx, &sep, Swip::hot(right_fid).raw());
                            self.mark_dirty(cur);
                            self.mark_dirty(next);
                            self.mark_dirty(right_fid);
                            if key >= sep.as_slice() {
                                drop(next_guard);
                                drop(guard);
                                cur = right_fid;
                                guard = self.pool.frame(cur).latch.write();
                                continue;
                            }
                        }
                    }
                    drop(guard);
                    cur = next;
                    guard = next_guard;
                }
                Page::IndexLeaf(leaf) => {
                    return if leaf.insert(key, row_id.raw()) {
                        self.mark_dirty(cur);
                        Ok(())
                    } else {
                        Err(PhoebeError::DuplicateKey { index: self.table })
                    };
                }
                _ => return Err(PhoebeError::internal("unexpected page kind in index tree")),
            }
        }
    }
}

/// Either-latched leaf guard.
pub enum LeafGuard<'a> {
    Read(ReadGuard<'a, Page>),
    Write(WriteGuard<'a, Page>),
}

impl LeafGuard<'_> {
    fn page(&self) -> &Page {
        match self {
            LeafGuard::Read(g) => g,
            LeafGuard::Write(g) => g,
        }
    }

    fn page_mut(&mut self) -> &mut Page {
        match self {
            LeafGuard::Read(_) => panic!("page_mut on a shared guard"),
            LeafGuard::Write(g) => g,
        }
    }
}

// ----------------------------------------------------------------------
// Resumable descent state machine
// ----------------------------------------------------------------------

/// Where a resumable descent currently stands.
enum CursorState {
    /// Not yet started, or restarting after optimistic validation failed.
    Start,
    /// Mid-descent: `cur`/`level`/`parent` identify the next hop.
    Hop,
    /// Suspended on a cold-page read running in the background loader.
    /// `epoch` is the page's fault epoch captured before the read was
    /// kicked, re-checked by the install (PageId ABA guard).
    Fault { ticket: Arc<crate::fault_service::FaultTicket>, pfid: FrameId, cold: Swip, epoch: u64 },
    /// The leaf was delivered; the cursor is spent.
    Done,
}

/// One resumable point-lookup descent (see [`BTree::batch_cursor`]).
///
/// The cursor carries only plain values between [`DescentCursor::step`]
/// calls — swip, level, parent frame id plus its optimistic version stamp,
/// never a latch guard — so suspending it costs nothing and holds nothing.
/// Guards exist solely as locals inside a single `step` call (the leaf
/// guard escapes *into* the returned [`BatchLeaf`], at which point the
/// descent is over).
pub struct DescentCursor<'t> {
    tree: &'t BTree,
    key: SmallKey,
    write: bool,
    state: CursorState,
    parent: ParentRef,
    parent_ver: LatchVersion,
    /// The parent frame's [`FrameMeta::reuse_epoch`], captured while the
    /// hop into it was validated. [`DescentCursor::parent_routes_to`]
    /// compares it before trusting a slot re-read: a suspended cursor's
    /// parent frame may have been evicted and recycled as an unrelated
    /// node, which would still "route" any key somewhere because
    /// `child_index` clamps. Meaningless while `parent` is `Meta`.
    parent_epoch: u64,
    cur: Swip,
    level: u32,
    /// Start of the current attempt, for the restart wasted-work histogram.
    attempt: std::time::Instant,
}

/// Outcome of one [`DescentCursor::step`] call.
pub enum DescentStep<'t> {
    /// Descent finished: the responsible leaf, latched per the cursor's
    /// `write` mode. The cursor must not be stepped again.
    Leaf(BatchLeaf<'t>),
    /// Made a hop and issued a software prefetch for the next node (or
    /// backed off a contended latch): run a sibling, then step again —
    /// the line will have arrived by the time the round-robin returns.
    Prefetched,
    /// A cold-page read is in flight in the background loader: stepping
    /// again is a cheap completion poll, but the caller should prefer
    /// siblings (or yield) until it flips.
    FaultPending,
}

impl<'t> DescentCursor<'t> {
    /// Advance the descent as far as it can go without waiting, then
    /// report why it stopped. Mirrors [`BTree::descend`] hop for hop; on
    /// any optimistic validation failure it restarts from the root (same
    /// restart bookkeeping), but returns `Prefetched` first so sibling
    /// descents get the CPU while the conflict drains.
    pub fn step(&mut self) -> Result<DescentStep<'t>> {
        // No per-step component timer: a batch makes height+1 short steps
        // per key and two clock reads each would dominate the hop itself.
        // Batch descent cost is visible under the `batch_get` latency site.
        loop {
            match &self.state {
                CursorState::Done => {
                    return Err(PhoebeError::internal("step on a finished descent cursor"))
                }
                CursorState::Start => {
                    let Some(((root, height), meta_ver)) =
                        self.tree.meta.optimistic_versioned(|m| (m.root, m.height))
                    else {
                        // Meta is write-latched (split in flight): back off
                        // to a sibling instead of spinning.
                        return Ok(DescentStep::Prefetched);
                    };
                    self.parent = ParentRef::Meta;
                    self.parent_ver = meta_ver;
                    self.parent_epoch = 0;
                    self.cur = root;
                    self.level = height;
                    self.state = CursorState::Hop;
                }
                CursorState::Hop => {
                    if let Some(stop) = self.hop()? {
                        return Ok(stop);
                    }
                    // `None`: cold child discovered right after a hop —
                    // loop so the fault branch runs in this same call
                    // (one suspend, not a prefetch suspend followed by a
                    // fault suspend).
                }
                CursorState::Fault { ticket, .. } => {
                    if !ticket.is_done() {
                        return Ok(DescentStep::FaultPending);
                    }
                    let CursorState::Fault { ticket, pfid, cold, epoch } =
                        std::mem::replace(&mut self.state, CursorState::Start)
                    else {
                        unreachable!()
                    };
                    let fid = match ticket.take().expect("completed fault has a result") {
                        Ok(fid) => fid,
                        // The loader could not allocate: a wide batch can
                        // have more faults in flight than the pool has
                        // frames (loaded-but-uninstalled frames are
                        // parentless, so eviction cannot reclaim them).
                        // That is backpressure, not failure — back off to
                        // the siblings; their installs put pages back under
                        // parents, where the retry's allocate can evict.
                        Err(PhoebeError::OutOfFrames) => return Ok(self.restart()),
                        Err(e) => return Err(e),
                    };
                    if let Some((rearm, pepoch)) = self.tree.install_loaded(pfid, cold, fid, epoch)
                    {
                        // Resume mid-path: the child is hot in the slot we
                        // just wrote, and the parent stamp is our own
                        // install's release version — no root re-descent
                        // through parents the page-swap duty is churning.
                        self.parent = ParentRef::Node(pfid);
                        self.parent_ver = rearm;
                        self.parent_epoch = pepoch;
                        self.cur = Swip::hot(fid);
                        self.state = CursorState::Hop;
                    }
                    // Lost the install race: state is already `Start`, so
                    // the descent re-routes from the root, exactly like
                    // the blocking `fix_cold` path's `continue 'restart`.
                }
            }
        }
    }

    /// One hop of the descent. `Ok(Some(_))` stops the step (suspend or
    /// leaf); `Ok(None)` means "loop again within this step".
    fn hop(&mut self) -> Result<Option<DescentStep<'t>>> {
        let tree = self.tree;
        let fid = match self.cur.state() {
            SwipState::Hot(f) => f,
            SwipState::Cooling(f) => {
                // Second chance: heat through the parent, best effort.
                if let ParentRef::Node(pfid) = self.parent {
                    tree.heat(pfid, f);
                }
                f
            }
            SwipState::Cold(pid) => {
                let ParentRef::Node(pfid) = self.parent else {
                    return Err(PhoebeError::internal("root swip went cold"));
                };
                // Over the in-flight fault budget: back off to the
                // siblings instead of kicking yet another frame-holding
                // load. The state stays `Hop`, so the next step re-checks
                // the budget — it frees as sibling faults install.
                if !tree.pool.fault_budget_available() {
                    return Ok(Some(DescentStep::Prefetched));
                }
                // Kick the read to the background loader and suspend —
                // the blocking path would eat the whole I/O right here.
                // Epoch before the kick, so the loader's read is ordered
                // after the capture and the install can reject a frame
                // made stale by a concurrent install/evict cycle.
                let epoch = tree.pool.fault_epoch(pid);
                let ticket = tree.pool.start_fault(pid, pfid);
                tree.metrics.incr(Counter::FaultSuspends);
                self.state = CursorState::Fault { ticket, pfid, cold: self.cur, epoch };
                return Ok(Some(DescentStep::FaultPending));
            }
        };
        let frame = tree.pool.frame(fid);
        if self.level == 1 {
            let guard = if self.write {
                LeafGuard::Write(frame.latch.write())
            } else {
                LeafGuard::Read(frame.latch.read())
            };
            // Version stamp first (cheap); on failure fall back to
            // re-reading the parent slot: we hold the leaf latch, so if
            // the parent routes this key here *right now*, this is the
            // right leaf no matter how often the stamp was bumped while
            // we were suspended.
            let on_track =
                tree.validate_parent(&self.parent, self.parent_ver) || self.parent_routes_to(fid);
            if !on_track {
                drop(guard);
                return Ok(Some(self.restart()));
            }
            self.state = CursorState::Done;
            return Ok(Some(DescentStep::Leaf(BatchLeaf { tree, fid, guard })));
        }
        // Inner hop: read the child slot optimistically. The reuse epoch
        // is captured *before* the read: if it still matches at a later
        // `parent_routes_to` check, no recycle happened in between, so
        // the frame still holds the node this validated read saw.
        let fid_epoch = frame.meta.reuse_epoch();
        let key = &self.key;
        let Some((read, ver)) = frame.latch.optimistic_versioned(|p| match p {
            Page::Inner(n) => Some(n.children[n.child_index(key)]),
            _ => None,
        }) else {
            return Ok(Some(self.restart()));
        };
        // Same slow-path revalidation as the leaf, with one extra check:
        // no latch is held here, so the child slot we just read is only
        // trustworthy if this frame's own version is also unchanged.
        let on_track = tree.validate_parent(&self.parent, self.parent_ver)
            || (self.parent_routes_to(fid) && frame.latch.validate(ver));
        if !on_track {
            return Ok(Some(self.restart()));
        }
        let Some(child_raw) = read else {
            // Frame was repurposed under us.
            return Ok(Some(self.restart()));
        };
        self.parent = ParentRef::Node(fid);
        self.parent_ver = ver;
        self.parent_epoch = fid_epoch;
        self.cur = Swip::from_raw(child_raw);
        self.level -= 1;
        match self.cur.state() {
            SwipState::Hot(cf) | SwipState::Cooling(cf) => {
                // Pull the child frame's header and first node lines
                // toward L1, then suspend: a sibling descent runs while
                // the lines arrive, hiding the stall (§7.1).
                phoebe_common::prefetch_read_span(tree.pool.frame(cf), 4);
                tree.metrics.incr(Counter::PrefetchesIssued);
                Ok(Some(DescentStep::Prefetched))
            }
            // Cold child: no point prefetch-suspending on the way to a
            // disk read — loop so this same step kicks the fault.
            SwipState::Cold(_) => Ok(None),
        }
    }

    /// Restart bookkeeping (shared with the blocking descent via
    /// [`BTree::note_restart`]), then back off to the siblings.
    fn restart(&mut self) -> DescentStep<'t> {
        self.tree.note_restart(&mut self.attempt);
        self.state = CursorState::Start;
        DescentStep::Prefetched
    }

    /// Does the parent *currently* route this cursor's key to `fid`?
    ///
    /// Slot-level revalidation for when the version stamp fails. A
    /// suspended cursor's stamp goes stale on *any* write latch of the
    /// parent — and under memory pressure the page-swap duty stages
    /// children through parent write latches constantly, so near the
    /// root every suspend window eats a bump. Most of those writes never
    /// touch our slot: re-read it and accept the descent if the key
    /// still routes here.
    ///
    /// The re-read alone is *not* sound against frame recycling:
    /// `InnerNode::child_index` clamps rather than range-checks, so if
    /// the parent frame was evicted and reused as an unrelated inner
    /// node (the pool is shared across trees), it would still route any
    /// key to *some* slot, which could spuriously hold `Hot(fid)` if the
    /// child frame was recycled into that node's subtree too. The
    /// `reuse_epoch` comparison closes this: the epoch was captured at
    /// hop time, while a validated optimistic read proved the frame held
    /// the on-path node, so an unchanged epoch means it still does — and
    /// a same-node parent routes `key` correctly by the fence invariant
    /// (splits move the key's range, and its child reference, out
    /// together). The caller separately guarantees the *child's* content
    /// is current: leaf arrival holds the leaf latch, the inner hop
    /// revalidates the frame's own version.
    fn parent_routes_to(&self, fid: FrameId) -> bool {
        let hit = |raw: u64| {
            matches!(Swip::from_raw(raw).state(),
                SwipState::Hot(f) | SwipState::Cooling(f) if f == fid)
        };
        match self.parent {
            ParentRef::Meta => self.tree.meta.optimistic(|m| m.root.raw()).is_some_and(hit),
            ParentRef::Node(pfid) => {
                let routed = self
                    .tree
                    .pool
                    .frame(pfid)
                    .latch
                    .optimistic(|p| match p {
                        Page::Inner(n) => Some(n.children[n.child_index(&self.key)]),
                        _ => None,
                    })
                    .flatten()
                    .is_some_and(hit);
                // Epoch after the re-read: a recycle before the read
                // bumps the epoch under a write latch whose release the
                // validated read observed (see FrameMeta::reuse_epoch).
                routed && self.tree.pool.frame(pfid).meta.reuse_epoch() == self.parent_epoch
            }
        }
    }
}

/// A latched leaf delivered by a finished [`DescentCursor`]: the same
/// entry points as [`BTree::table_read`] / [`BTree::table_modify`] /
/// [`BTree::index_get`] minus the descent, so the touch/dirty bookkeeping
/// stays inside the storage crate. Dropping it releases the leaf latch.
pub struct BatchLeaf<'t> {
    tree: &'t BTree,
    fid: FrameId,
    guard: LeafGuard<'t>,
}

impl BatchLeaf<'_> {
    /// Read `row_id` in this leaf (leaf-local [`BTree::table_read`]).
    pub fn table_read<R>(
        &self,
        row_id: RowId,
        f: impl FnOnce(&PaxLeaf, usize, RowId, FrameId) -> R,
    ) -> Result<Option<R>> {
        let Page::TableLeaf(leaf) = self.guard.page() else {
            return Err(PhoebeError::internal("table descend hit non-table leaf"));
        };
        let out = leaf.find(row_id).map(|row| {
            let first = leaf.first_row_id().expect("non-empty leaf");
            f(leaf, row, first, self.fid)
        });
        if out.is_some() {
            self.tree.pool.touch(self.fid);
        }
        Ok(out)
    }

    /// Mutate `row_id` in this leaf (leaf-local [`BTree::table_modify`];
    /// requires a `write` cursor).
    pub fn table_modify<R>(
        &mut self,
        row_id: RowId,
        f: impl FnOnce(&mut PaxLeaf, usize, RowId, FrameId) -> R,
    ) -> Result<Option<R>> {
        let fid = self.fid;
        let Page::TableLeaf(leaf) = self.guard.page_mut() else {
            return Err(PhoebeError::internal("table descend hit non-table leaf"));
        };
        let out = leaf.find(row_id).map(|row| {
            let first = leaf.first_row_id().expect("non-empty leaf");
            f(leaf, row, first, fid)
        });
        if out.is_some() {
            self.tree.mark_dirty(fid);
            self.tree.pool.touch(fid);
        }
        Ok(out)
    }

    /// Exact lookup in this leaf (leaf-local [`BTree::index_get`]).
    pub fn index_get(&self, key: &[u8]) -> Result<Option<RowId>> {
        let Page::IndexLeaf(leaf) = self.guard.page() else {
            return Err(PhoebeError::internal("index descend hit non-index leaf"));
        };
        Ok(leaf.get(key).map(RowId))
    }
}

trait TableLeafFull {
    fn table_leaf_full(&self, layout: &PaxLayout) -> bool;
}

impl TableLeafFull for ReadGuard<'_, Page> {
    fn table_leaf_full(&self, layout: &PaxLayout) -> bool {
        matches!(&**self, Page::TableLeaf(l) if l.is_full(layout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema};
    use phoebe_common::KernelConfig;

    fn pool(frames: usize) -> Arc<BufferPool> {
        let cfg = KernelConfig::for_tests();
        BufferPool::new(frames, 2, &cfg.data_dir, Arc::new(Metrics::new(2))).unwrap()
    }

    fn table_tree(frames: usize) -> (BTree, PaxLayout) {
        let p = pool(frames);
        let schema = Schema::new(vec![("v", ColType::I64), ("s", ColType::Str(8))]);
        let layout = PaxLayout::for_schema(&schema);
        let t = BTree::create(p.clone(), TableId(1), TreeKind::Table, Arc::new(Metrics::new(2)))
            .unwrap();
        (t, layout)
    }

    fn index_tree(frames: usize) -> BTree {
        let p = pool(frames);
        BTree::create(p, TableId(2), TreeKind::Index, Arc::new(Metrics::new(2))).unwrap()
    }

    fn tup(i: u64) -> Vec<Value> {
        vec![Value::I64(i as i64), Value::Str(format!("s{}", i % 100))]
    }

    #[test]
    fn table_append_and_point_reads() {
        let (t, l) = table_tree(256);
        for i in 1..=5_000u64 {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        assert!(t.height() >= 2, "5k rows must split the root leaf");
        for i in (1..=5_000u64).step_by(97) {
            let v = t
                .table_read(RowId(i), |leaf, row, _, _| leaf.read_col(&l, row, 0))
                .unwrap()
                .expect("row present");
            assert_eq!(v, Value::I64(i as i64));
        }
        assert!(t.table_read(RowId(0), |_, _, _, _| ()).unwrap().is_none());
        assert!(t.table_read(RowId(99_999), |_, _, _, _| ()).unwrap().is_none());
    }

    #[test]
    fn table_modify_updates_in_place() {
        let (t, l) = table_tree(64);
        t.table_append(&l, RowId(7), &tup(7), |_, _, _, _| {}).unwrap();
        let changed = t
            .table_modify(RowId(7), |leaf, row, _, _| {
                leaf.write_col(&l, row, 0, &Value::I64(-1));
            })
            .unwrap();
        assert!(changed.is_some());
        let v = t.table_read(RowId(7), |leaf, row, _, _| leaf.read_col(&l, row, 0)).unwrap();
        assert_eq!(v, Some(Value::I64(-1)));
    }

    #[test]
    fn table_page_identity_is_stable_across_splits() {
        let (t, l) = table_tree(256);
        t.table_append(&l, RowId(1), &tup(1), |_, _, _, _| {}).unwrap();
        let first_identity = t.table_read(RowId(1), |_, _, first, _| first).unwrap().unwrap();
        for i in 2..=4_000u64 {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        // Row 1's leaf never changed identity despite thousands of appends.
        let identity_after = t.table_read(RowId(1), |_, _, first, _| first).unwrap().unwrap();
        assert_eq!(first_identity, identity_after);
    }

    #[test]
    fn table_for_each_leaf_walks_in_order() {
        let (t, l) = table_tree(256);
        for i in 1..=3_000u64 {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        let mut firsts = Vec::new();
        t.table_for_each_leaf(|_, leaf| {
            firsts.push(leaf.first_row_id().unwrap().raw());
            true
        })
        .unwrap();
        assert!(firsts.len() > 2);
        assert!(firsts.windows(2).all(|w| w[0] < w[1]), "leaves must ascend");
        // Early stop works.
        let mut n = 0;
        t.table_for_each_leaf(|_, _| {
            n += 1;
            false
        })
        .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn index_insert_get_remove_with_splits() {
        let t = index_tree(256);
        let n = 20_000u64;
        for i in 0..n {
            let k = (i * 2_654_435_761 % 1_000_003).to_be_bytes();
            let _ = t.index_insert(&k, RowId(i)); // dups possible, ignore
        }
        assert!(t.height() >= 2);
        // Spot-check round trips on keys we know are present.
        let mut found = 0;
        for i in 0..n {
            let k = (i * 2_654_435_761 % 1_000_003).to_be_bytes();
            if let Some(r) = t.index_get(&k).unwrap() {
                // Remove and verify gone.
                if i % 1000 == 0 {
                    assert_eq!(t.index_remove(&k).unwrap(), Some(r));
                    assert_eq!(t.index_get(&k).unwrap(), None);
                }
                found += 1;
            }
        }
        assert!(found > n as usize / 2);
    }

    #[test]
    fn index_duplicate_key_is_rejected() {
        let t = index_tree(64);
        t.index_insert(b"alpha", RowId(1)).unwrap();
        match t.index_insert(b"alpha", RowId(2)) {
            Err(PhoebeError::DuplicateKey { .. }) => {}
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        assert_eq!(t.index_get(b"alpha").unwrap(), Some(RowId(1)));
    }

    #[test]
    fn index_range_scans_across_leaves() {
        let t = index_tree(512);
        let n = 2_000u64;
        for i in 0..n {
            t.index_insert(&i.to_be_bytes(), RowId(i)).unwrap();
        }
        assert!(t.height() >= 2, "need multiple leaves to test resume");
        let mut seen = Vec::new();
        t.index_range(&100u64.to_be_bytes(), &1_500u64.to_be_bytes(), |_, r| {
            seen.push(r.raw());
            true
        })
        .unwrap();
        assert_eq!(seen, (100..=1_500).collect::<Vec<_>>());
        // Early termination.
        let mut count = 0;
        t.index_range(&0u64.to_be_bytes(), &u64::MAX.to_be_bytes(), |_, _| {
            count += 1;
            count < 10
        })
        .unwrap();
        assert_eq!(count, 10);
        // Empty range.
        let mut empty = 0;
        t.index_range(&5_000u64.to_be_bytes(), &6_000u64.to_be_bytes(), |_, _| {
            empty += 1;
            true
        })
        .unwrap();
        assert_eq!(empty, 0);
    }

    /// Drive a cursor to its leaf the way the batch round-robin would,
    /// counting how it suspended along the way.
    fn drive<'t>(mut c: DescentCursor<'t>) -> (BatchLeaf<'t>, u64, u64) {
        let (mut prefetches, mut faults) = (0u64, 0u64);
        loop {
            match c.step().unwrap() {
                DescentStep::Leaf(l) => return (l, prefetches, faults),
                DescentStep::Prefetched => prefetches += 1,
                DescentStep::FaultPending => {
                    faults += 1;
                    // A real batch would run siblings here; give the
                    // background loader the same window.
                    std::thread::yield_now();
                }
            }
        }
    }

    #[test]
    fn batch_cursor_matches_blocking_reads_hot() {
        let (t, l) = table_tree(256);
        for i in 1..=5_000u64 {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        assert!(t.height() >= 2);
        let mut suspended = 0u64;
        for i in (1..=5_000u64).step_by(97) {
            let (leaf, prefetches, _) = drive(t.batch_cursor(&row_key(RowId(i)), false));
            suspended += prefetches;
            let v = leaf
                .table_read(RowId(i), |leaf, row, _, _| leaf.read_col(&l, row, 0))
                .unwrap()
                .expect("row present");
            assert_eq!(v, Value::I64(i as i64));
        }
        assert!(suspended > 0, "multi-level descents must suspend at least once per hop");
        // Misses behave like the blocking path too.
        let (leaf, _, _) = drive(t.batch_cursor(&row_key(RowId(99_999)), false));
        assert!(leaf.table_read(RowId(99_999), |_, _, _, _| ()).unwrap().is_none());
    }

    #[test]
    fn batch_cursor_write_mode_modifies_in_place() {
        let (t, l) = table_tree(256);
        for i in 1..=3_000u64 {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        let (mut leaf, _, _) = drive(t.batch_cursor(&row_key(RowId(1_500)), true));
        let changed = leaf
            .table_modify(RowId(1_500), |leaf, row, _, _| {
                leaf.write_col(&l, row, 0, &Value::I64(-42));
            })
            .unwrap();
        assert!(changed.is_some());
        drop(leaf);
        let v = t.table_read(RowId(1_500), |leaf, row, _, _| leaf.read_col(&l, row, 0)).unwrap();
        assert_eq!(v, Some(Value::I64(-42)));
    }

    #[test]
    fn batch_cursor_index_lookup_matches_blocking() {
        let t = index_tree(256);
        for i in 0..20_000u64 {
            let k = (i * 2_654_435_761 % 1_000_003).to_be_bytes();
            t.index_insert(&k, RowId(i)).unwrap();
        }
        for i in (0..20_000u64).step_by(331) {
            let k = (i * 2_654_435_761 % 1_000_003).to_be_bytes();
            let (leaf, _, _) = drive(t.batch_cursor(&k, false));
            assert_eq!(leaf.index_get(&k).unwrap(), t.index_get(&k).unwrap());
        }
    }

    #[test]
    fn batch_cursor_suspends_on_cold_pages_and_resumes() {
        // Pool far smaller than the data: most leaves are cold, so the
        // cursor must go through kick-fault / suspend / resume instead of
        // blocking, and still read every row correctly.
        let p = pool(24);
        let schema = Schema::new(vec![("v", ColType::I64), ("s", ColType::Str(8))]);
        let l = PaxLayout::for_schema(&schema);
        let m = Arc::new(Metrics::new(2));
        let t = BTree::create(p, TableId(1), TreeKind::Table, m.clone()).unwrap();
        let n = 20_000u64;
        for i in 1..=n {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        let before = m.snapshot();
        for i in (1..=n).step_by(513) {
            let (leaf, _, _) = drive(t.batch_cursor(&row_key(RowId(i)), false));
            let v = leaf
                .table_read(RowId(i), |leaf, row, _, _| leaf.read_col(&l, row, 0))
                .unwrap()
                .expect("row present after eviction cycles");
            assert_eq!(v, Value::I64(i as i64));
        }
        let after = m.snapshot();
        assert!(
            after.counter(Counter::FaultSuspends) > before.counter(Counter::FaultSuspends),
            "cold reads must take the suspend path"
        );
        assert!(
            after.counter(Counter::PrefetchesIssued) > before.counter(Counter::PrefetchesIssued)
        );
    }

    #[test]
    fn table_survives_eviction_pressure() {
        // Pool far smaller than the data: leaves must cycle through the
        // Data Page File and come back intact.
        let (t, l) = table_tree(24);
        let n = 20_000u64;
        for i in 1..=n {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        let (reads, writes) = t.pool().io_counts();
        assert!(writes > 0, "eviction must have written pages");
        for i in (1..=n).step_by(513) {
            let v = t
                .table_read(RowId(i), |leaf, row, _, _| leaf.read_col(&l, row, 0))
                .unwrap()
                .expect("row present after eviction cycles");
            assert_eq!(v, Value::I64(i as i64));
        }
        let (reads2, _) = t.pool().io_counts();
        assert!(reads2 > reads, "point reads of cold rows must load pages");
    }

    #[test]
    fn index_survives_eviction_pressure() {
        let t = index_tree(24);
        let n = 30_000u64;
        for i in 0..n {
            t.index_insert(&i.to_be_bytes(), RowId(i)).unwrap();
        }
        for i in (0..n).step_by(997) {
            assert_eq!(t.index_get(&i.to_be_bytes()).unwrap(), Some(RowId(i)));
        }
        let (_, writes) = t.pool().io_counts();
        assert!(writes > 0);
    }

    #[test]
    fn concurrent_index_readers_and_writers() {
        let t = Arc::new(index_tree(512));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let k = (w * 1_000_000 + i).to_be_bytes();
                        t.index_insert(&k, RowId(i)).unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    for i in 0..20_000u64 {
                        let k = (i % 2 * 1_000_000 + i % 5_000).to_be_bytes();
                        if t.index_get(&k).unwrap().is_some() {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        // Everything inserted must be found afterwards.
        for w in 0..2u64 {
            for i in (0..5_000u64).step_by(111) {
                let k = (w * 1_000_000 + i).to_be_bytes();
                assert_eq!(t.index_get(&k).unwrap(), Some(RowId(i)));
            }
        }
    }

    #[test]
    fn concurrent_table_appenders_on_disjoint_trees() {
        // Two tables sharing one pool: appends must not interfere.
        let p = pool(128);
        let schema = Schema::new(vec![("v", ColType::I64)]);
        let l = PaxLayout::for_schema(&schema);
        let m = Arc::new(Metrics::new(2));
        let t1 =
            Arc::new(BTree::create(p.clone(), TableId(1), TreeKind::Table, m.clone()).unwrap());
        let t2 = Arc::new(BTree::create(p, TableId(2), TreeKind::Table, m).unwrap());
        let h1 = {
            let (t, l) = (t1.clone(), l.clone());
            std::thread::spawn(move || {
                for i in 1..=5_000u64 {
                    t.table_append(&l, RowId(i), &[Value::I64(i as i64)], |_, _, _, _| {}).unwrap();
                }
            })
        };
        let h2 = {
            let (t, l) = (t2.clone(), l.clone());
            std::thread::spawn(move || {
                for i in 1..=5_000u64 {
                    t.table_append(&l, RowId(i), &[Value::I64(-(i as i64))], |_, _, _, _| {})
                        .unwrap();
                }
            })
        };
        h1.join().unwrap();
        h2.join().unwrap();
        let v1 = t1.table_read(RowId(4_999), |leaf, r, _, _| leaf.read_col(&l, r, 0)).unwrap();
        let v2 = t2.table_read(RowId(4_999), |leaf, r, _, _| leaf.read_col(&l, r, 0)).unwrap();
        assert_eq!(v1, Some(Value::I64(4_999)));
        assert_eq!(v2, Some(Value::I64(-4_999)));
    }

    #[test]
    fn sequential_workload_records_zero_restarts() {
        let p = pool(256);
        let metrics = Arc::new(Metrics::new(2));
        let schema = Schema::new(vec![("v", ColType::I64)]);
        let layout = PaxLayout::for_schema(&schema);
        let t = BTree::create(p, TableId(1), TreeKind::Table, Arc::clone(&metrics)).unwrap();
        for i in 1..=2_000u64 {
            t.table_append(&layout, RowId(i), &[Value::I64(i as i64)], |_, _, _, _| {}).unwrap();
        }
        for i in (1..=2_000u64).step_by(37) {
            t.table_read(RowId(i), |leaf, r, _, _| leaf.read_col(&layout, r, 0)).unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(Counter::LatchRestarts), 0, "no interference, no restarts");
        assert_eq!(snap.latency(LatencySite::BtreeRestart).count(), 0);
    }

    #[test]
    fn restart_counter_matches_restart_latency_samples() {
        // Every descent restart must feed the counter AND the wasted-work
        // histogram exactly once (the observability layer treats them as
        // two views of the same event). Hammer point reads while an
        // appender forces splits (each split bumps versions on the path),
        // then check the two stay in lockstep.
        let p = pool(512);
        let metrics = Arc::new(Metrics::new(4));
        let schema = Schema::new(vec![("v", ColType::I64)]);
        let layout = PaxLayout::for_schema(&schema);
        let t =
            Arc::new(BTree::create(p, TableId(1), TreeKind::Table, Arc::clone(&metrics)).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 1u64;
                    // ORDERING: stop flag only gates loop exit.
                    while !stop.load(Ordering::Relaxed) {
                        let _ = t.table_read(RowId(i % 4_000 + 1), |_, _, _, _| ());
                        i += 1;
                    }
                })
            })
            .collect();
        for i in 1..=8_000u64 {
            t.table_append(&layout, RowId(i), &[Value::I64(i as i64)], |_, _, _, _| {}).unwrap();
        }
        // ORDERING: stop flag; the joins below order everything else.
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter(Counter::LatchRestarts),
            snap.latency(LatencySite::BtreeRestart).count(),
            "restart counter and restart latency samples must agree"
        );
    }

    /// Any cold child of the root, as `(slot swip, page id)`.
    fn find_cold_child(t: &BTree, root_fid: FrameId) -> Option<(Swip, phoebe_common::ids::PageId)> {
        let g = t.pool.frame(root_fid).latch.read();
        let Page::Inner(n) = &*g else { panic!("root is not inner") };
        (0..=n.count as usize).find_map(|i| {
            let s = Swip::from_raw(n.children[i]);
            match s.state() {
                SwipState::Cold(pid) => Some((s, pid)),
                _ => None,
            }
        })
    }

    /// PageId ABA across a suspended fault: while a batch cursor's read is
    /// in flight, the same page is faulted in by someone else, modified,
    /// and evicted back to the *same* PageId — restoring a byte-identical
    /// cold swip. The suspended cursor's install must reject its stale
    /// frame (fault-epoch mismatch) instead of clobbering the slot and
    /// losing the committed write.
    #[test]
    fn stale_fault_install_is_rejected_after_page_cycle() {
        let (t, l) = table_tree(256);
        for i in 1..=5_000u64 {
            t.table_append(&l, RowId(i), &tup(i), |_, _, _, _| {}).unwrap();
        }
        assert!(t.height() >= 2);
        let root_fid = {
            let root = t.meta.optimistic(|m| m.root).unwrap();
            let SwipState::Hot(f) = root.state() else { panic!("root not hot") };
            f
        };
        // Page one leaf out.
        let (cold, pid) = loop {
            for part in 0..t.pool.partition_count() {
                t.pool.stage_cooling(part, 8);
                let _ = t.pool.evict_one(part).unwrap();
            }
            if let Some(found) = find_cold_child(&t, root_fid) {
                break found;
            }
        };

        // Suspended cursor: epoch captured, loader reads the old bytes.
        let epoch0 = t.pool.fault_epoch(pid);
        let stale = t.pool.load_cold(pid, root_fid).unwrap();

        // Concurrent blocking descent wins the fault, a writer modifies a
        // row, and the page-swap duty evicts the page again.
        let fresh = t.pool.load_cold(pid, root_fid).unwrap();
        assert!(t.install_loaded(root_fid, cold, fresh, t.pool.fault_epoch(pid)).is_some());
        let victim = {
            let g = t.pool.frame(fresh).latch.read();
            let Page::TableLeaf(leaf) = &*g else { panic!("expected table leaf") };
            leaf.first_row_id().unwrap()
        };
        t.table_modify(victim, |leaf, row, _, _| leaf.write_col(&l, row, 0, &Value::I64(-7)))
            .unwrap()
            .expect("victim row present");
        let mut cycled = false;
        'out: for _ in 0..1_000 {
            for part in 0..t.pool.partition_count() {
                t.pool.stage_cooling(part, 8);
                let _ = t.pool.evict_one(part).unwrap();
            }
            let g = t.pool.frame(root_fid).latch.read();
            let Page::Inner(n) = &*g else { panic!("root is not inner") };
            for i in 0..=n.count as usize {
                if Swip::from_raw(n.children[i]).state() == SwipState::Cold(pid) {
                    cycled = true;
                    break 'out;
                }
            }
        }
        assert!(cycled, "page must evict back to the same PageId");

        // The resumed cursor's install must lose: its frame predates the
        // committed write even though the cold swip is byte-identical.
        assert!(
            t.install_loaded(root_fid, cold, stale, epoch0).is_none(),
            "stale frame installed over a cycled page (ABA)"
        );
        let v = t.table_read(victim, |leaf, row, _, _| leaf.read_col(&l, row, 0)).unwrap();
        assert_eq!(v, Some(Value::I64(-7)), "committed write lost to a stale install");
    }

    /// A suspended cursor's parent frame can be evicted and recycled as an
    /// unrelated inner node; `child_index` clamps, so the recycled node
    /// still "routes" any key to some slot. Slot-level revalidation must
    /// therefore refuse a parent whose reuse epoch moved since hop time,
    /// even if the re-read lands on the expected child frame.
    #[test]
    fn recycled_parent_frame_is_not_trusted_by_slot_revalidation() {
        let (t, _l) = table_tree(64);
        let route_to = |pfid: FrameId, leaf: FrameId| {
            let mut g = t.pool.frame(pfid).latch.write();
            let mut inner = InnerNode::default();
            inner.children[0] = Swip::hot(leaf).raw();
            *g = Page::Inner(inner);
        };
        let pfid = t.pool.allocate().unwrap();
        let leaf = t.pool.allocate().unwrap();
        *t.pool.frame(leaf).latch.write() = Page::TableLeaf(PaxLeaf::new());
        route_to(pfid, leaf);

        let mut cur = t.batch_cursor(b"k", false);
        cur.parent = ParentRef::Node(pfid);
        cur.parent_epoch = t.pool.frame(pfid).meta.reuse_epoch();
        assert!(cur.parent_routes_to(leaf), "live parent must pass slot revalidation");

        // Recycle pfid (release + reallocate) as a different inner node
        // that happens to route to the same child frame.
        t.pool.release(pfid);
        let mut held = Vec::new();
        let back = loop {
            let f = t.pool.allocate().unwrap();
            if f == pfid {
                break f;
            }
            held.push(f);
        };
        for f in held {
            t.pool.release(f);
        }
        route_to(back, leaf);
        assert!(
            !cur.parent_routes_to(leaf),
            "recycled parent frame accepted by slot revalidation (clamped routing)"
        );
    }
}
