//! B-Tree node types (§5.1, §5.3).
//!
//! Every relation — base table or secondary index — is one B-Tree whose
//! nodes live in buffer frames. Three node kinds exist:
//!
//! * [`InnerNode`]: separator keys + swizzled child references.
//! * [`crate::pax::PaxLeaf`]: table leaves holding tuples in PAX format,
//!   keyed by the monotonically increasing row id.
//! * [`IndexLeaf`]: secondary-index leaves holding sorted
//!   `(key, row_id)` pairs (§5.1: "user-defined indexes ... storing
//!   (key, row_id) pairs").
//!
//! All node storage is fixed-size and inline — no `Vec`, no `Box` — so an
//! optimistic reader that loses the version race reads stale plain bytes,
//! never a dangling pointer (see the latch module's contract). Keys are
//! byte strings compared lexicographically; callers encode typed keys
//! order-preservingly (big-endian ints etc.).

use crate::pax::PaxLeaf;
use phoebe_common::config::PAGE_SIZE;
use phoebe_common::error::{PhoebeError, Result};

/// Maximum key length storable inline in inner and index nodes.
pub const MAX_KEY: usize = 56;

/// Separator keys per inner node (fanout = FANOUT + 1 children).
pub const FANOUT: usize = 200;

/// Entries per index leaf.
pub const INDEX_LEAF_CAP: usize = 224;

/// An inner node: `count` separator keys and `count + 1` children.
/// `children[i]` holds keys `k` with `keys[i-1] <= k < keys[i]`
/// (with implicit sentinels at both ends).
pub struct InnerNode {
    pub count: u16,
    pub key_lens: [u8; FANOUT],
    pub keys: [[u8; MAX_KEY]; FANOUT],
    /// Raw [`crate::swip::Swip`] encodings.
    pub children: [u64; FANOUT + 1],
}

impl Default for InnerNode {
    fn default() -> Self {
        InnerNode {
            count: 0,
            key_lens: [0; FANOUT],
            keys: [[0; MAX_KEY]; FANOUT],
            children: [crate::swip::Swip::NULL.raw(); FANOUT + 1],
        }
    }
}

impl InnerNode {
    pub fn key(&self, i: usize) -> &[u8] {
        &self.keys[i][..self.key_lens[i] as usize]
    }

    fn set_key(&mut self, i: usize, key: &[u8]) {
        assert!(key.len() <= MAX_KEY, "key exceeds {MAX_KEY} bytes");
        self.key_lens[i] = key.len() as u8;
        self.keys[i][..key.len()].copy_from_slice(key);
    }

    pub fn is_full(&self) -> bool {
        self.count as usize >= FANOUT
    }

    /// Child index to descend into for `key`: the first separator greater
    /// than `key` bounds the subtree on the right.
    pub fn child_index(&self, key: &[u8]) -> usize {
        let n = self.count as usize;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key < self.key(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Insert separator `key` at child position `pos` with `right` becoming
    /// `children[pos + 1]` (the result of splitting `children[pos]`).
    pub fn insert_separator(&mut self, pos: usize, key: &[u8], right: u64) {
        let n = self.count as usize;
        assert!(n < FANOUT, "insert into a full inner node");
        assert!(pos <= n);
        for i in (pos..n).rev() {
            self.keys[i + 1] = self.keys[i];
            self.key_lens[i + 1] = self.key_lens[i];
        }
        for i in (pos + 1..=n + 1).rev() {
            self.children[i] = self.children[i - 1];
        }
        self.set_key(pos, key);
        self.children[pos + 1] = right;
        self.count += 1;
    }

    /// Split in half: returns the new right sibling and the separator key
    /// promoted to the parent (the median, which moves up and out).
    pub fn split(&mut self) -> (InnerNode, Vec<u8>) {
        let n = self.count as usize;
        let mid = n / 2;
        let sep = self.key(mid).to_vec();
        let mut right = InnerNode::default();
        let moved = n - mid - 1;
        for i in 0..moved {
            let src = mid + 1 + i;
            right.keys[i] = self.keys[src];
            right.key_lens[i] = self.key_lens[src];
        }
        for i in 0..=moved {
            right.children[i] = self.children[mid + 1 + i];
        }
        right.count = moved as u16;
        self.count = mid as u16;
        (right, sep)
    }

    /// Position of the child whose raw swip equals `raw`, if any (used by
    /// eviction to find a victim's slot in its parent).
    pub fn find_child_slot(&self, raw: u64) -> Option<usize> {
        self.children[..=self.count as usize].iter().position(|&c| c == raw)
    }
}

/// A secondary-index leaf: entries sorted by key. Keys are unique — the
/// upper layer suffixes non-unique user keys with the row id.
pub struct IndexLeaf {
    pub count: u16,
    pub key_lens: [u8; INDEX_LEAF_CAP],
    pub keys: [[u8; MAX_KEY]; INDEX_LEAF_CAP],
    pub row_ids: [u64; INDEX_LEAF_CAP],
}

impl Default for IndexLeaf {
    fn default() -> Self {
        IndexLeaf {
            count: 0,
            key_lens: [0; INDEX_LEAF_CAP],
            keys: [[0; MAX_KEY]; INDEX_LEAF_CAP],
            row_ids: [0; INDEX_LEAF_CAP],
        }
    }
}

impl IndexLeaf {
    pub fn key(&self, i: usize) -> &[u8] {
        &self.keys[i][..self.key_lens[i] as usize]
    }

    pub fn is_full(&self) -> bool {
        self.count as usize >= INDEX_LEAF_CAP
    }

    /// First position with `key(pos) >= key`.
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        let n = self.count as usize;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Exact-match lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let pos = self.lower_bound(key);
        (pos < self.count as usize && self.key(pos) == key).then(|| self.row_ids[pos])
    }

    /// Insert `(key, row_id)`; returns false if the key already exists.
    pub fn insert(&mut self, key: &[u8], row_id: u64) -> bool {
        assert!(key.len() <= MAX_KEY, "key exceeds {MAX_KEY} bytes");
        let n = self.count as usize;
        assert!(n < INDEX_LEAF_CAP, "insert into a full index leaf");
        let pos = self.lower_bound(key);
        if pos < n && self.key(pos) == key {
            return false;
        }
        for i in (pos..n).rev() {
            self.keys[i + 1] = self.keys[i];
            self.key_lens[i + 1] = self.key_lens[i];
            self.row_ids[i + 1] = self.row_ids[i];
        }
        self.key_lens[pos] = key.len() as u8;
        self.keys[pos] = [0; MAX_KEY];
        self.keys[pos][..key.len()].copy_from_slice(key);
        self.row_ids[pos] = row_id;
        self.count += 1;
        true
    }

    /// Remove `key`; returns the row id it mapped to, if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        let n = self.count as usize;
        let pos = self.lower_bound(key);
        if pos >= n || self.key(pos) != key {
            return None;
        }
        let row = self.row_ids[pos];
        for i in pos..n - 1 {
            self.keys[i] = self.keys[i + 1];
            self.key_lens[i] = self.key_lens[i + 1];
            self.row_ids[i] = self.row_ids[i + 1];
        }
        self.count -= 1;
        Some(row)
    }

    /// Split in half: returns the right sibling and the separator (the
    /// right sibling's first key; it stays in the leaf — leaf separators
    /// are copied up, not moved up).
    pub fn split(&mut self) -> (IndexLeaf, Vec<u8>) {
        let n = self.count as usize;
        let mid = n / 2;
        let mut right = IndexLeaf::default();
        let moved = n - mid;
        for i in 0..moved {
            right.keys[i] = self.keys[mid + i];
            right.key_lens[i] = self.key_lens[mid + i];
            right.row_ids[i] = self.row_ids[mid + i];
        }
        right.count = moved as u16;
        self.count = mid as u16;
        let sep = right.key(0).to_vec();
        (right, sep)
    }
}

/// The content of one buffer frame. Variant sizes differ by design:
/// every frame stores a full page image, so there is nothing to box.
#[allow(clippy::large_enum_variant)]
pub enum Page {
    /// Frame not in use.
    Free,
    Inner(InnerNode),
    TableLeaf(PaxLeaf),
    IndexLeaf(IndexLeaf),
}

impl Page {
    pub fn kind_name(&self) -> &'static str {
        match self {
            Page::Free => "free",
            Page::Inner(_) => "inner",
            Page::TableLeaf(_) => "table-leaf",
            Page::IndexLeaf(_) => "index-leaf",
        }
    }

    pub fn is_free(&self) -> bool {
        matches!(self, Page::Free)
    }

    /// Serialize into an on-disk page image (Data Page File slot).
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= PAGE_SIZE);
        out[..PAGE_SIZE].fill(0);
        let mut w = Writer { buf: out, at: 0 };
        match self {
            Page::Free => w.u8(0),
            Page::Inner(n) => {
                w.u8(1);
                w.u16(n.count);
                w.bytes(&n.key_lens);
                for k in &n.keys[..n.count as usize] {
                    w.bytes(k);
                }
                for c in &n.children[..=n.count as usize] {
                    w.u64(*c);
                }
            }
            Page::TableLeaf(l) => {
                w.u8(2);
                w.u16(l.count);
                for v in &l.valid {
                    w.u64(*v);
                }
                w.bytes(&l.data);
            }
            Page::IndexLeaf(l) => {
                w.u8(3);
                w.u16(l.count);
                w.bytes(&l.key_lens[..l.count as usize]);
                for k in &l.keys[..l.count as usize] {
                    w.bytes(k);
                }
                for r in &l.row_ids[..l.count as usize] {
                    w.u64(*r);
                }
            }
        }
    }

    /// Deserialize a page image read back from the Data Page File.
    pub fn decode(buf: &[u8]) -> Result<Page> {
        if buf.len() < PAGE_SIZE {
            return Err(PhoebeError::corruption("short page image"));
        }
        let mut r = Reader { buf, at: 0 };
        match r.u8() {
            0 => Ok(Page::Free),
            1 => {
                let count = r.u16();
                let mut n = InnerNode { count, ..Default::default() };
                if n.count as usize > FANOUT {
                    return Err(PhoebeError::corruption("inner count out of range"));
                }
                r.read(&mut n.key_lens);
                for i in 0..n.count as usize {
                    let mut k = [0u8; MAX_KEY];
                    r.read(&mut k);
                    n.keys[i] = k;
                }
                for i in 0..=n.count as usize {
                    n.children[i] = r.u64();
                }
                Ok(Page::Inner(n))
            }
            2 => {
                let mut l = PaxLeaf::new();
                l.count = r.u16();
                for v in l.valid.iter_mut() {
                    *v = r.u64();
                }
                r.read(&mut l.data);
                Ok(Page::TableLeaf(l))
            }
            3 => {
                let count = r.u16();
                let mut l = IndexLeaf { count, ..Default::default() };
                if l.count as usize > INDEX_LEAF_CAP {
                    return Err(PhoebeError::corruption("index leaf count out of range"));
                }
                r.read(&mut l.key_lens[..l.count as usize]);
                for i in 0..l.count as usize {
                    let mut k = [0u8; MAX_KEY];
                    r.read(&mut k);
                    l.keys[i] = k;
                }
                for i in 0..l.count as usize {
                    l.row_ids[i] = r.u64();
                }
                Ok(Page::IndexLeaf(l))
            }
            t => Err(PhoebeError::corruption(format!("unknown page kind {t}"))),
        }
    }
}

struct Writer<'a> {
    buf: &'a mut [u8],
    at: usize,
}

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.buf[self.at] = v;
        self.at += 1;
    }
    fn u16(&mut self, v: u16) {
        self.buf[self.at..self.at + 2].copy_from_slice(&v.to_le_bytes());
        self.at += 2;
    }
    fn u64(&mut self, v: u64) {
        self.buf[self.at..self.at + 8].copy_from_slice(&v.to_le_bytes());
        self.at += 8;
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf[self.at..self.at + v.len()].copy_from_slice(v);
        self.at += v.len();
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> u8 {
        let v = self.buf[self.at];
        self.at += 1;
        v
    }
    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.at..self.at + 2].try_into().expect("2"));
        self.at += 2;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.at..self.at + 8].try_into().expect("8"));
        self.at += 8;
        v
    }
    fn read(&mut self, out: &mut [u8]) {
        out.copy_from_slice(&self.buf[self.at..self.at + out.len()]);
        self.at += out.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema, Value};
    use phoebe_common::ids::RowId;

    #[test]
    fn inner_child_index_partitions_key_space() {
        let mut n = InnerNode::default();
        n.children[0] = 100;
        n.insert_separator(0, b"m", 200);
        n.insert_separator(1, b"t", 300);
        assert_eq!(n.child_index(b"a"), 0);
        assert_eq!(n.child_index(b"m"), 1); // separator belongs right
        assert_eq!(n.child_index(b"p"), 1);
        assert_eq!(n.child_index(b"t"), 2);
        assert_eq!(n.child_index(b"z"), 2);
        assert_eq!(n.children[..3], [100, 200, 300]);
    }

    #[test]
    fn inner_insert_separator_shifts_correctly() {
        let mut n = InnerNode::default();
        n.children[0] = 1;
        n.insert_separator(0, b"d", 2);
        n.insert_separator(1, b"h", 3);
        // Now split child 1 ("d".."h") with separator "f".
        n.insert_separator(1, b"f", 9);
        assert_eq!(n.count, 3);
        assert_eq!(n.key(0), b"d");
        assert_eq!(n.key(1), b"f");
        assert_eq!(n.key(2), b"h");
        assert_eq!(n.children[..4], [1, 2, 9, 3]);
    }

    #[test]
    fn inner_split_preserves_navigation() {
        let mut n = InnerNode::default();
        n.children[0] = 0;
        for i in 0..FANOUT {
            let key = format!("{i:05}");
            n.insert_separator(i, key.as_bytes(), (i + 1) as u64);
        }
        assert!(n.is_full());
        let (right, sep) = n.split();
        // Every original child must be reachable via the correct side.
        for i in 0..FANOUT {
            let key = format!("{i:05}");
            let child = if key.as_bytes() < sep.as_slice() {
                n.children[n.child_index(key.as_bytes())]
            } else {
                right.children[right.child_index(key.as_bytes())]
            };
            assert_eq!(child, (i + 1) as u64, "child for separator {key}");
        }
    }

    #[test]
    fn index_leaf_insert_get_remove() {
        let mut l = IndexLeaf::default();
        assert!(l.insert(b"bob", 2));
        assert!(l.insert(b"alice", 1));
        assert!(l.insert(b"carol", 3));
        assert!(!l.insert(b"bob", 9), "duplicate must be rejected");
        assert_eq!(l.get(b"alice"), Some(1));
        assert_eq!(l.get(b"bob"), Some(2));
        assert_eq!(l.get(b"dave"), None);
        assert_eq!(l.remove(b"bob"), Some(2));
        assert_eq!(l.get(b"bob"), None);
        assert_eq!(l.remove(b"bob"), None);
        assert_eq!(l.count, 2);
    }

    #[test]
    fn index_leaf_stays_sorted_under_random_inserts() {
        let mut l = IndexLeaf::default();
        let mut keys: Vec<u64> = (0..200).map(|i| (i * 7919) % 1000).collect();
        keys.dedup();
        for &k in &keys {
            l.insert(&k.to_be_bytes(), k);
        }
        for w in 0..l.count as usize - 1 {
            assert!(l.key(w) < l.key(w + 1));
        }
    }

    #[test]
    fn index_leaf_split_partitions_entries() {
        let mut l = IndexLeaf::default();
        for i in 0..INDEX_LEAF_CAP {
            l.insert(&(i as u64).to_be_bytes(), i as u64);
        }
        assert!(l.is_full());
        let (right, sep) = l.split();
        assert_eq!(l.count as usize + right.count as usize, INDEX_LEAF_CAP);
        for i in 0..INDEX_LEAF_CAP as u64 {
            let key = i.to_be_bytes();
            let got = if key.as_slice() < sep.as_slice() { l.get(&key) } else { right.get(&key) };
            assert_eq!(got, Some(i));
        }
    }

    #[test]
    fn find_child_slot_locates_swips() {
        let mut n = InnerNode::default();
        n.children[0] = 11;
        n.insert_separator(0, b"x", 22);
        assert_eq!(n.find_child_slot(11), Some(0));
        assert_eq!(n.find_child_slot(22), Some(1));
        assert_eq!(n.find_child_slot(33), None);
    }

    #[test]
    fn pages_roundtrip_through_disk_encoding() {
        let mut inner = InnerNode::default();
        inner.children[0] = 5;
        inner.insert_separator(0, b"hello", 6);
        let mut index = IndexLeaf::default();
        index.insert(b"k1", 10);
        index.insert(b"k2", 20);
        let schema = Schema::new(vec![("a", ColType::I64), ("s", ColType::Str(8))]);
        let layout = crate::pax::PaxLayout::for_schema(&schema);
        let mut leaf = PaxLeaf::new();
        leaf.append(&layout, RowId(3), &[Value::I64(42), Value::Str("hi".into())]);

        let mut buf = vec![0u8; PAGE_SIZE];
        for page in [Page::Inner(inner), Page::IndexLeaf(index), Page::TableLeaf(leaf), Page::Free]
        {
            page.encode(&mut buf);
            let back = Page::decode(&buf).expect("decode");
            assert_eq!(back.kind_name(), page.kind_name());
            match (&page, &back) {
                (Page::Inner(a), Page::Inner(b)) => {
                    assert_eq!(a.count, b.count);
                    assert_eq!(a.key(0), b.key(0));
                    assert_eq!(a.children[..2], b.children[..2]);
                }
                (Page::IndexLeaf(a), Page::IndexLeaf(b)) => {
                    assert_eq!(a.count, b.count);
                    assert_eq!(b.get(b"k1"), Some(10));
                    assert_eq!(b.get(b"k2"), Some(20));
                    assert_eq!(a.key(1), b.key(1));
                }
                (Page::TableLeaf(a), Page::TableLeaf(b)) => {
                    assert_eq!(a.count, b.count);
                    assert_eq!(b.find(RowId(3)), Some(0));
                    assert_eq!(b.read_col(&layout, 0, 1), Value::Str("hi".into()));
                }
                (Page::Free, Page::Free) => {}
                _ => panic!("kind mismatch after roundtrip"),
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = 99;
        assert!(Page::decode(&buf).is_err());
        assert!(Page::decode(&buf[..10]).is_err());
        // Out-of-range counts are rejected, not trusted.
        buf[0] = 1;
        buf[1..3].copy_from_slice(&(FANOUT as u16 + 1).to_le_bytes());
        assert!(Page::decode(&buf).is_err());
    }
}
