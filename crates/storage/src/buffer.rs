//! Main Storage: the partitioned buffer pool (§5.3, §7.1).
//!
//! All B-Tree nodes live in fixed buffer frames. There is deliberately *no
//! global hash table* mapping page ids to frames — the paper's central
//! storage claim: a page is found only by following swizzled pointers from
//! its parent, so the lookup path is contention-free. Consequently eviction
//! must go through the parent too: each frame keeps a *parent hint* that is
//! validated under the parent's latch before unswizzling.
//!
//! Frames are partitioned per worker (§7.1 "a worker thread manages its own
//! buffer pool partition and handles page swaps locally"): allocation draws
//! from the calling worker's partition, and the cooling queue + clock hand
//! are per partition, so page swaps do not contend across workers.
//!
//! Eviction follows the paper's three swizzle states: a clock pass over the
//! partition *stages* candidates by setting the cooling bit in the parent's
//! child swip (Hot → Cooling); accessors that reach a cooling page heat it
//! back (second chance); when frames are needed, staged candidates still
//! cooling are written out and their swips turned cold (Cooling → Cold).

use crate::latch::HybridLatch;
use crate::node::Page;
use crate::pagefile::PageFile;
use crate::swip::{FrameId, Swip, SwipState};
use phoebe_common::config::PAGE_SIZE;
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::hist::LatencySite;
use phoebe_common::ids::PageId;
use phoebe_common::metrics::{Component, Counter, Metrics};
use phoebe_common::sync::{Rank, RankedMutex, RankedRwLock};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sentinel for "no parent": the frame is a tree root and never evictable.
pub const NO_PARENT: u64 = u64::MAX;

/// Sentinel for "no disk slot assigned yet".
const NO_DISK: u64 = u64::MAX;

/// Shards of the per-PageId fault-epoch table. Collisions are harmless:
/// they can only make an in-flight fault's install reject spuriously
/// (forcing a restart + re-fault), never accept a stale frame.
const FAULT_EPOCH_SHARDS: usize = 1024;

/// Bookkeeping carried outside the latch so it can be touched without
/// latching the page content.
pub struct FrameMeta {
    /// Page modified since last write-out.
    pub dirty: AtomicBool,
    /// OLTP access counter for temperature classification (§5.2).
    pub access_count: AtomicU64,
    /// Milliseconds-since-pool-start of the last access (§5.2 "last OLTP
    /// access time").
    pub last_access: AtomicU64,
    /// Frame id of the (probable) parent; validated under the parent latch.
    pub parent: AtomicU64,
    /// Disk slot this page occupies in the Data Page File, if any.
    disk_page: AtomicU64,
    /// GSN of the newest WAL record touching this page — the write barrier
    /// ensures WAL reaches disk before the page does (Steal, §8).
    pub page_gsn: AtomicU64,
    /// Flat slot index of the last transaction that modified this page
    /// (RFA dependency tracking, §8). `u64::MAX` = never written.
    pub last_writer_slot: AtomicU64,
    /// Bumped every time the frame is recycled (release or eviction), so
    /// a suspended batch descent can detect that a frame id it captured
    /// no longer names the node it validated — see
    /// `BTree::parent_routes_to`, which would otherwise accept a
    /// repurposed frame via `child_index`'s slot clamping.
    reuse_epoch: AtomicU64,
}

impl Default for FrameMeta {
    fn default() -> Self {
        FrameMeta {
            dirty: AtomicBool::new(false),
            access_count: AtomicU64::new(0),
            last_access: AtomicU64::new(0),
            parent: AtomicU64::new(NO_PARENT),
            disk_page: AtomicU64::new(NO_DISK),
            page_gsn: AtomicU64::new(0),
            last_writer_slot: AtomicU64::new(u64::MAX),
            reuse_epoch: AtomicU64::new(0),
        }
    }
}

impl FrameMeta {
    /// Detach the frame from its disk slot *without* freeing the slot —
    /// used when a racing loader discards its duplicate copy while the
    /// winner's frame still references the same slot.
    pub fn disk_page_forget(&self) {
        self.disk_page.store(NO_DISK, Ordering::Relaxed);
    }

    /// Recycle generation of this frame (see the field doc). A reader
    /// that captures the epoch while the frame is known to hold a given
    /// node, and later sees it unchanged, knows the frame still holds
    /// that node.
    #[inline]
    pub fn reuse_epoch(&self) -> u64 {
        // ORDERING: acquire pairs with the release bump in `reset`; the
        // surrounding latch version protocol (a recycled frame's content
        // is only reachable after a write-latch release) carries the bump
        // to any reader whose optimistic read validated.
        self.reuse_epoch.load(Ordering::Acquire)
    }

    fn reset(&self) {
        self.dirty.store(false, Ordering::Relaxed);
        self.access_count.store(0, Ordering::Relaxed);
        self.last_access.store(0, Ordering::Relaxed);
        self.parent.store(NO_PARENT, Ordering::Relaxed);
        self.disk_page.store(NO_DISK, Ordering::Relaxed);
        self.page_gsn.store(0, Ordering::Relaxed);
        self.last_writer_slot.store(u64::MAX, Ordering::Relaxed);
        // ORDERING: release pairs with the acquire in `reuse_epoch`.
        self.reuse_epoch.fetch_add(1, Ordering::Release);
    }
}

/// One buffer frame: a latched page plus its metadata.
pub struct Frame {
    pub latch: HybridLatch<Page>,
    pub meta: FrameMeta,
}

/// Callback the WAL layer installs so dirty-page write-out obeys
/// write-ahead ordering ("Non-Force, Steal", §8).
pub trait WalBarrier: Send + Sync + 'static {
    /// Block until all WAL up to `gsn` is durable.
    fn ensure_durable(&self, gsn: u64);
}

struct Partition {
    free: RankedMutex<Vec<FrameId>>,
    cooling: RankedMutex<VecDeque<FrameId>>,
    clock: AtomicUsize,
}

/// The buffer pool.
pub struct BufferPool {
    frames: Box<[Frame]>,
    partitions: Vec<Partition>,
    frames_per_partition: usize,
    page_file: PageFile,
    barrier: RankedRwLock<Option<Arc<dyn WalBarrier>>>,
    metrics: Arc<Metrics>,
    start: Instant,
    /// Lazily-started background loader for asynchronous page faults
    /// (interleaved batch descents, see [`crate::fault_service`]). The
    /// sender drops with the pool, which ends the loader thread.
    fault_tx: RankedMutex<Option<std::sync::mpsc::Sender<crate::fault_service::FaultRequest>>>,
    /// Asynchronous faults currently holding (or about to hold) a frame.
    /// Loaded-but-not-yet-installed frames are parentless — eviction
    /// cannot reclaim them — so a wide batch kicking one fault per key
    /// could eat the whole pool and starve even the blocking fault path.
    /// [`BufferPool::fault_budget_available`] caps them.
    faults_inflight: AtomicUsize,
    /// Per-PageId (sharded) unswizzle epochs, bumped under the parent
    /// latch whenever a slot turns Cooling → Cold. Faulting paths capture
    /// the epoch before issuing the disk read and re-check it at install
    /// time: a bump in between means the page went through a concurrent
    /// install / modify / evict cycle while the fault was in flight, so
    /// the loaded image predates committed writes even though the parent
    /// slot holds a byte-identical cold swip (PageId ABA).
    fault_epochs: Box<[AtomicU64]>,
}

impl BufferPool {
    /// Build a pool of `total_frames` split over `partitions` partitions,
    /// backed by a Data Page File under `dir` on the real filesystem.
    pub fn new(
        total_frames: usize,
        partitions: usize,
        dir: &Path,
        metrics: Arc<Metrics>,
    ) -> Result<Arc<Self>> {
        Self::new_with_fs(total_frames, partitions, dir, metrics, &phoebe_common::fault::OsFs)
    }

    /// [`BufferPool::new`] over an injected filesystem — the seam the
    /// crash-torture harness uses to route the Data Page File through a
    /// [`phoebe_common::fault::SimFs`] torture disk.
    pub fn new_with_fs(
        total_frames: usize,
        partitions: usize,
        dir: &Path,
        metrics: Arc<Metrics>,
        fs: &dyn phoebe_common::fault::FaultFs,
    ) -> Result<Arc<Self>> {
        let partitions = partitions.max(1);
        let fpp = (total_frames / partitions).max(2);
        let total = fpp * partitions;
        let mut frames = Vec::with_capacity(total);
        frames.resize_with(total, || Frame {
            latch: HybridLatch::new(Page::Free),
            meta: FrameMeta::default(),
        });
        let parts = (0..partitions)
            .map(|p| Partition {
                free: RankedMutex::new(
                    Rank::BufferPartition,
                    "buffer.partition_free",
                    (p * fpp..(p + 1) * fpp).map(|f| f as FrameId).collect(),
                ),
                cooling: RankedMutex::new(
                    Rank::BufferPartition,
                    "buffer.partition_cooling",
                    VecDeque::new(),
                ),
                clock: AtomicUsize::new(p * fpp),
            })
            .collect();
        Ok(Arc::new(BufferPool {
            frames: frames.into_boxed_slice(),
            partitions: parts,
            frames_per_partition: fpp,
            page_file: PageFile::create_with(fs, &dir.join("data_pages.db"))?,
            faults_inflight: AtomicUsize::new(0),
            barrier: RankedRwLock::new(Rank::BufferPool, "buffer.wal_barrier", None),
            metrics,
            start: Instant::now(),
            fault_tx: RankedMutex::new(Rank::BufferPool, "buffer.fault_tx", None),
            fault_epochs: (0..FAULT_EPOCH_SHARDS).map(|_| AtomicU64::new(0)).collect(),
        }))
    }

    /// Install the WAL write barrier.
    pub fn set_wal_barrier(&self, b: Arc<dyn WalBarrier>) {
        *self.barrier.write() = Some(b);
    }

    #[inline]
    pub fn frame(&self, fid: FrameId) -> &Frame {
        &self.frames[fid as usize]
    }

    pub fn total_frames(&self) -> usize {
        self.frames.len()
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Free frames remaining in `partition` (drives the page-swap trigger,
    /// §7.1: "page swaps are triggered when buffer frames drop below a
    /// threshold").
    pub fn free_frames(&self, partition: usize) -> usize {
        self.partitions[partition].free.lock().len()
    }

    /// Physical (reads, writes) against the Data Page File.
    pub fn io_counts(&self) -> (u64, u64) {
        self.page_file.io_counts()
    }

    /// Coarse monotonic clock for temperature bookkeeping, in ms.
    #[inline]
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Record an OLTP access on a frame (temperature tracking, §5.2).
    #[inline]
    pub fn touch(&self, fid: FrameId) {
        let meta = &self.frames[fid as usize].meta;
        meta.access_count.fetch_add(1, Ordering::Relaxed);
        meta.last_access.store(self.now_ms(), Ordering::Relaxed);
    }

    /// The partition the calling thread allocates from: its worker's own
    /// partition, or a thread-id-hashed one for external threads (a fixed
    /// fallback would make one partition a contention magnet whenever many
    /// non-worker threads allocate).
    pub fn home_partition(&self) -> usize {
        thread_local! {
            static THREAD_HASH: usize = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish() as usize
            };
        }
        let slot = match phoebe_common::metrics::current_worker() {
            Some(w) => w,
            None => THREAD_HASH.with(|h| *h),
        };
        slot % self.partitions.len()
    }

    /// Allocate a free frame, evicting from the home partition if needed.
    /// The returned frame contains `Page::Free` and belongs to the caller,
    /// who must install content under an exclusive latch.
    pub fn allocate(&self) -> Result<FrameId> {
        let _t = self.metrics.timer(Component::Buffer);
        let home = self.home_partition();
        if let Some(f) = self.partitions[home].free.lock().pop() {
            return Ok(f);
        }
        // Try to make room locally: stage a batch, then reap it.
        for _ in 0..3 {
            self.stage_cooling(home, 8);
            if self.evict_one(home)? {
                if let Some(f) = self.partitions[home].free.lock().pop() {
                    return Ok(f);
                }
            }
        }
        // Steal a free frame from another partition rather than fail.
        for p in 0..self.partitions.len() {
            if p == home {
                continue;
            }
            if let Some(f) = self.partitions[p].free.lock().pop() {
                return Ok(f);
            }
        }
        // Last resort: evict from any partition.
        for p in 0..self.partitions.len() {
            self.stage_cooling(p, 8);
            if self.evict_one(p)? {
                if let Some(f) = self.partitions[p].free.lock().pop() {
                    return Ok(f);
                }
            }
        }
        Err(PhoebeError::OutOfFrames)
    }

    /// Return a frame to its partition's free list. Caller must have made
    /// the page unreachable and hold no latch on it.
    pub fn release(&self, fid: FrameId) {
        {
            let mut guard = self.frames[fid as usize].latch.write();
            *guard = Page::Free;
        }
        if let Some(disk) = self.take_disk_slot(fid) {
            self.page_file.release(disk);
        }
        self.frames[fid as usize].meta.reset();
        let p = fid as usize / self.frames_per_partition;
        self.partitions[p].free.lock().push(fid);
    }

    /// Current unswizzle epoch for `page` (see the `fault_epochs` field).
    /// Capture *before* kicking the fault's disk read; pass the captured
    /// value to the swizzle install so it can reject a stale frame.
    #[inline]
    pub fn fault_epoch(&self, page: PageId) -> u64 {
        // ORDERING: acquire pairs with the release bump in `try_evict`.
        // Install-vs-evict ordering is additionally serialized by the
        // parent latch both sides hold when they touch the slot.
        self.fault_epochs[page.raw() as usize % self.fault_epochs.len()].load(Ordering::Acquire)
    }

    fn take_disk_slot(&self, fid: FrameId) -> Option<PageId> {
        let raw = self.frames[fid as usize].meta.disk_page.swap(NO_DISK, Ordering::Relaxed);
        (raw != NO_DISK).then_some(PageId(raw))
    }

    /// Load a cold page into a fresh frame. Returns the frame id; the
    /// caller re-swizzles the parent's child slot.
    ///
    /// Allocation and the read I/O happen here, *before* the caller holds
    /// the parent latch, so eviction (which needs parent latches) is never
    /// starved by a loader.
    pub fn load_cold(&self, page: PageId, parent: FrameId) -> Result<FrameId> {
        let fid = self.allocate()?;
        if let Err(e) = self.read_into_frame(fid, page, parent) {
            self.release(fid);
            return Err(e);
        }
        Ok(fid)
    }

    /// Fill a pre-allocated frame with the image of `page`.
    pub fn read_into_frame(&self, fid: FrameId, page: PageId, parent: FrameId) -> Result<()> {
        // The whole fault — read I/O, decode, frame install — is what a
        // transaction stalls on when it hits a cold swip.
        let _fault = self.metrics.latency_timer(LatencySite::BufferFault);
        let _span = self.metrics.tracer().span_guard(
            phoebe_common::trace::EventKind::BufferFault,
            0,
            page.raw(),
        );
        let mut buf = vec![0u8; PAGE_SIZE];
        self.page_file.read_page(page, &mut buf)?;
        let decoded = Page::decode(&buf)?;
        {
            let mut guard = self.frames[fid as usize].latch.write();
            *guard = decoded;
        }
        let meta = &self.frames[fid as usize].meta;
        meta.parent.store(parent, Ordering::Relaxed);
        meta.disk_page.store(page.raw(), Ordering::Relaxed);
        meta.dirty.store(false, Ordering::Relaxed);
        meta.last_access.store(self.now_ms(), Ordering::Relaxed);
        self.metrics.incr(Counter::PageReads);
        Ok(())
    }

    /// Kick an asynchronous fault-in of `page` (a child of `parent`) and
    /// return its ticket. The background loader runs the allocate-and-read
    /// half of [`BufferPool::load_cold`]; the caller performs the swizzle
    /// install under the parent latch once the ticket completes, exactly
    /// as the blocking path does. If the loader thread is gone (pool
    /// shutting down) the load happens inline and the ticket returns
    /// already complete.
    pub fn start_fault(
        self: &Arc<Self>,
        page: PageId,
        parent: FrameId,
    ) -> Arc<crate::fault_service::FaultTicket> {
        self.faults_inflight.fetch_add(1, Ordering::Relaxed);
        let ticket = crate::fault_service::FaultTicket::counted(Arc::downgrade(self));
        let req = crate::fault_service::FaultRequest { page, parent, ticket: Arc::clone(&ticket) };
        let mut tx = self.fault_tx.lock();
        let sender = tx.get_or_insert_with(|| {
            let (s, r) = std::sync::mpsc::channel();
            // Unranked on purpose: serializes the mpsc receiver between
            // loader threads, only ever held while blocked in recv(),
            // never around another kernel lock.
            // LINT-ALLOW(lock-order): std mutex over an mpsc receiver only.
            let r = std::sync::Arc::new(std::sync::Mutex::new(r));
            let loaders =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 4);
            for i in 0..loaders {
                let weak = Arc::downgrade(self);
                let r = std::sync::Arc::clone(&r);
                std::thread::Builder::new()
                    .name(format!("phoebe-fault-{i}"))
                    // LINT-ALLOW(lock-order): loader_loop runs on the spawned thread — the fault_tx guard live here is not held there.
                    .spawn(move || crate::fault_service::loader_loop(weak, r))
                    .expect("spawn fault loader");
            }
            s
        });
        if sender.send(req).is_err() {
            drop(tx);
            ticket.complete(self.load_cold(page, parent));
        }
        ticket
    }

    /// Whether a new asynchronous fault may be kicked without risking
    /// pool exhaustion: in-flight faults are capped at half a partition,
    /// leaving the other half (plus every other partition) for the tree
    /// itself and for blocking faults. Callers over budget back off and
    /// retry — the budget frees as loads are installed or abandoned.
    pub fn fault_budget_available(&self) -> bool {
        self.faults_inflight.load(Ordering::Relaxed) < self.fault_budget_limit()
    }

    /// Gauge: asynchronous page faults currently in flight (telemetry).
    pub fn faults_inflight(&self) -> usize {
        // ORDERING: diagnostic read of a statistics gauge.
        self.faults_inflight.load(Ordering::Relaxed)
    }

    /// The in-flight fault cap [`Self::fault_budget_available`] enforces.
    pub fn fault_budget_limit(&self) -> usize {
        (self.frames_per_partition / 2).max(2)
    }

    /// Give back one in-flight fault budget slot (ticket drop).
    pub(crate) fn fault_done(&self) {
        self.faults_inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Pre-allocate up to `want` frames for a structure-modifying operation
    /// so that no allocation (and thus no eviction) happens while the
    /// caller holds exclusive latches. Best effort: the reserve may come up
    /// short on tiny pools; [`FrameReserve::take`] then falls back to a
    /// live allocation.
    pub fn reserve(self: &Arc<Self>, want: usize) -> FrameReserve {
        let mut frames = Vec::with_capacity(want);
        for _ in 0..want {
            match self.allocate() {
                Ok(f) => frames.push(f),
                Err(_) => break,
            }
        }
        FrameReserve { pool: self.clone(), frames }
    }

    /// Stage up to `want` eviction candidates from `partition` into its
    /// cooling queue (Hot → Cooling) via a clock pass.
    pub fn stage_cooling(&self, partition: usize, want: usize) {
        let part = &self.partitions[partition];
        let lo = partition * self.frames_per_partition;
        let hi = lo + self.frames_per_partition;
        let mut staged = 0;
        for _ in 0..self.frames_per_partition {
            if staged >= want {
                break;
            }
            let at = {
                let cur = part.clock.fetch_add(1, Ordering::Relaxed);
                lo + (cur - lo) % (hi - lo)
            };
            let fid = at as FrameId;
            if self.try_stage(fid) {
                part.cooling.lock().push_back(fid);
                staged += 1;
            }
        }
    }

    /// Attempt to flip `fid`'s swip in its parent from Hot to Cooling.
    fn try_stage(&self, fid: FrameId) -> bool {
        let meta = &self.frames[fid as usize].meta;
        let parent = meta.parent.load(Ordering::Relaxed);
        if parent == NO_PARENT {
            return false; // root or free
        }
        // Only leaves, or inners whose children are all cold, may cool.
        let evictable = self.frames[fid as usize]
            .latch
            .optimistic(|page| match page {
                Page::Free => false,
                Page::TableLeaf(_) | Page::IndexLeaf(_) => true,
                Page::Inner(n) => (0..=n.count as usize)
                    .all(|i| matches!(Swip::from_raw(n.children[i]).state(), SwipState::Cold(_))),
            })
            .unwrap_or(false);
        if !evictable {
            return false;
        }
        let Some(mut pguard) = self.frames[parent as usize].latch.try_write() else {
            return false;
        };
        let Page::Inner(pnode) = &mut *pguard else {
            return false; // stale hint
        };
        let Some(slot) = pnode.find_child_slot(Swip::hot(fid).raw()) else {
            return false; // stale hint or already cooling
        };
        pnode.children[slot] = Swip::cooling(fid).raw();
        true
    }

    /// Evict one staged (still-cooling) page from `partition`
    /// (Cooling → Cold). Returns true if a frame was freed. Candidates
    /// heated since staging are dropped from the queue (second chance —
    /// [`BufferPool::stage_cooling`] finds them again once Hot). A
    /// candidate that merely lost a latch race but is *still cooling*
    /// goes back to the queue tail: its swip is no longer Hot, so
    /// `try_stage` can never re-stage it — dropping it here would strand
    /// the frame as permanently unevictable, and enough latch churn (a
    /// batch fault storm) can strand a whole partition that way.
    pub fn evict_one(&self, partition: usize) -> Result<bool> {
        // Bound the pass to the entries present at the start so re-queued
        // candidates don't make this call spin on a contended parent.
        let mut budget = self.partitions[partition].cooling.lock().len();
        while budget > 0 {
            budget -= 1;
            let candidate = self.partitions[partition].cooling.lock().pop_front();
            let fid = match candidate {
                Some(f) => f,
                None => return Ok(false),
            };
            if self.try_evict(fid)? {
                return Ok(true);
            }
            if self.still_cooling(fid) {
                self.partitions[partition].cooling.lock().push_back(fid);
            }
        }
        Ok(false)
    }

    /// Best-effort check that `fid`'s parent still carries a Cooling swip
    /// for it. `true` on a latched parent: that is exactly the contention
    /// that failed `try_evict`, and keeping the candidate queued is the
    /// safe side (a stale entry self-invalidates in `try_evict` later).
    fn still_cooling(&self, fid: FrameId) -> bool {
        let parent = self.frames[fid as usize].meta.parent.load(Ordering::Relaxed);
        if parent == NO_PARENT {
            return false;
        }
        self.frames[parent as usize]
            .latch
            .optimistic(|p| match p {
                Page::Inner(n) => n.find_child_slot(Swip::cooling(fid).raw()).is_some(),
                _ => false,
            })
            .unwrap_or(true)
    }

    fn try_evict(&self, fid: FrameId) -> Result<bool> {
        let meta = &self.frames[fid as usize].meta;
        let parent = meta.parent.load(Ordering::Relaxed);
        if parent == NO_PARENT {
            return Ok(false);
        }
        let Some(mut pguard) = self.frames[parent as usize].latch.try_write() else {
            return Ok(false);
        };
        let Page::Inner(pnode) = &mut *pguard else {
            return Ok(false);
        };
        // Still cooling? (An access would have heated the swip.)
        let Some(slot) = pnode.find_child_slot(Swip::cooling(fid).raw()) else {
            return Ok(false);
        };
        let Some(vguard) = self.frames[fid as usize].latch.try_write() else {
            return Ok(false);
        };
        // Past this point the eviction goes through; time the write-out,
        // WAL barrier wait and unswizzle.
        let _evict = self.metrics.latency_timer(LatencySite::Eviction);
        let _span =
            self.metrics.tracer().span_guard(phoebe_common::trace::EventKind::Eviction, 0, fid);
        // Write out if dirty, honoring the WAL barrier.
        let disk_raw = meta.disk_page.load(Ordering::Relaxed);
        let disk = if disk_raw == NO_DISK { self.page_file.alloc() } else { PageId(disk_raw) };
        if meta.dirty.load(Ordering::Relaxed) || disk_raw == NO_DISK {
            if let Some(b) = self.barrier.read().clone() {
                b.ensure_durable(meta.page_gsn.load(Ordering::Relaxed));
            }
            let mut buf = vec![0u8; PAGE_SIZE];
            vguard.encode(&mut buf);
            self.page_file.write_page(disk, &buf)?;
            self.metrics.incr(Counter::PageWrites);
        }
        // ORDERING: release pairs with the acquire in `fault_epoch`. The
        // bump sits after the write-back above and before the slot turns
        // cold, all under the parent latch: an install that captured its
        // epoch before this bump sees the mismatch and rejects its frame;
        // one that captured after it necessarily issued its disk read
        // after the write-back and loaded current bytes.
        self.fault_epochs[disk.raw() as usize % self.fault_epochs.len()]
            .fetch_add(1, Ordering::Release);
        pnode.children[slot] = Swip::cold(disk).raw();
        drop(pguard);
        // Clear the frame and hand it back.
        drop(vguard);
        {
            let mut g = self.frames[fid as usize].latch.write();
            *g = Page::Free;
        }
        meta.reset();
        let p = fid as usize / self.frames_per_partition;
        self.partitions[p].free.lock().push(fid);
        Ok(true)
    }

    /// Heat a cooling swip back to hot (second chance). The caller holds
    /// the parent exclusively and passes the child slot.
    pub fn heat_in_parent(pnode: &mut crate::node::InnerNode, slot: usize) {
        let s = Swip::from_raw(pnode.children[slot]);
        if matches!(s.state(), SwipState::Cooling(_)) {
            pnode.children[slot] = s.heated().raw();
        }
    }
}

/// A batch of pre-allocated frames (see [`BufferPool::reserve`]). Unused
/// frames return to the pool on drop.
pub struct FrameReserve {
    pool: Arc<BufferPool>,
    frames: Vec<FrameId>,
}

impl FrameReserve {
    /// Take one reserved frame, or fall back to a live allocation.
    pub fn take(&mut self) -> Result<FrameId> {
        match self.frames.pop() {
            Some(f) => Ok(f),
            None => self.pool.allocate(),
        }
    }

    /// Frames still held.
    pub fn remaining(&self) -> usize {
        self.frames.len()
    }
}

impl Drop for FrameReserve {
    fn drop(&mut self) {
        for f in self.frames.drain(..) {
            self.pool.release(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoebe_common::KernelConfig;

    fn pool(frames: usize, parts: usize) -> Arc<BufferPool> {
        let cfg = KernelConfig::for_tests();
        BufferPool::new(frames, parts, &cfg.data_dir, Arc::new(Metrics::new(parts))).unwrap()
    }

    #[test]
    fn allocate_and_release_cycle() {
        let p = pool(8, 2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        p.release(a);
        p.release(b);
        assert_eq!(p.free_frames(0) + p.free_frames(1), p.total_frames());
    }

    #[test]
    fn exhaustion_without_evictables_reports_out_of_frames() {
        let p = pool(4, 1);
        let mut held = Vec::new();
        // Occupy every frame with unevictable (parentless) pages.
        loop {
            match p.allocate() {
                Ok(f) => {
                    *p.frame(f).latch.write() = Page::Inner(crate::node::InnerNode::default());
                    held.push(f);
                }
                Err(PhoebeError::OutOfFrames) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(held.len(), p.total_frames());
        for f in held {
            p.release(f);
        }
    }

    #[test]
    fn touch_updates_temperature_metadata() {
        let p = pool(4, 1);
        let f = p.allocate().unwrap();
        p.touch(f);
        p.touch(f);
        assert_eq!(p.frame(f).meta.access_count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn eviction_roundtrips_a_leaf_through_disk() {
        use crate::node::InnerNode;
        use crate::schema::{ColType, Schema, Value};
        use phoebe_common::ids::RowId;

        let p = pool(8, 1);
        let schema = Schema::new(vec![("v", ColType::I64)]);
        let layout = crate::pax::PaxLayout::for_schema(&schema);

        // Build a tiny parent -> leaf structure by hand.
        let parent = p.allocate().unwrap();
        let leaf = p.allocate().unwrap();
        {
            let mut lg = p.frame(leaf).latch.write();
            let mut pax = crate::pax::PaxLeaf::new();
            pax.append(&layout, RowId(1), &[Value::I64(42)]);
            *lg = Page::TableLeaf(pax);
        }
        {
            let mut pg = p.frame(parent).latch.write();
            let mut inner = InnerNode::default();
            inner.children[0] = Swip::hot(leaf).raw();
            *pg = Page::Inner(inner);
        }
        p.frame(leaf).meta.parent.store(parent, Ordering::Relaxed);
        p.frame(leaf).meta.dirty.store(true, Ordering::Relaxed);

        // Stage + evict.
        p.stage_cooling(0, 4);
        assert!(p.evict_one(0).unwrap(), "must evict the leaf");
        let cold = {
            let g = p.frame(parent).latch.read();
            let Page::Inner(n) = &*g else { panic!("parent gone") };
            match Swip::from_raw(n.children[0]).state() {
                SwipState::Cold(pid) => pid,
                s => panic!("expected cold swip, got {s:?}"),
            }
        };

        // Load it back and verify content.
        let back = p.load_cold(cold, parent).unwrap();
        let g = p.frame(back).latch.read();
        let Page::TableLeaf(l) = &*g else { panic!("expected leaf") };
        assert_eq!(l.find(RowId(1)), Some(0));
        assert_eq!(l.read_col(&layout, 0, 0), Value::I64(42));
        let (reads, writes) = p.io_counts();
        assert_eq!((reads, writes), (1, 1));
    }

    #[test]
    fn reuse_epoch_bumps_when_a_frame_is_recycled() {
        let p = pool(8, 2);
        let f = p.allocate().unwrap();
        let e0 = p.frame(f).meta.reuse_epoch();
        p.release(f);
        assert!(p.frame(f).meta.reuse_epoch() > e0, "release must bump the reuse epoch");
    }

    /// Dropping an unconsumed fault ticket (batch abandoned mid-fault) must
    /// hand the frame back *without* freeing its disk PageId: the parent's
    /// child slot still holds a cold swip referencing it. A freed slot
    /// would be reallocated for the next evicted page and the cold swip
    /// would then resolve to unrelated bytes.
    #[test]
    fn abandoned_fault_ticket_keeps_disk_slot_reserved() {
        use crate::fault_service::FaultTicket;
        use crate::node::InnerNode;
        use crate::schema::{ColType, Schema, Value};
        use phoebe_common::ids::RowId;

        let p = pool(16, 1);
        let schema = Schema::new(vec![("v", ColType::I64)]);
        let layout = crate::pax::PaxLayout::for_schema(&schema);
        let make = |val: i64| {
            let parent = p.allocate().unwrap();
            let leaf = p.allocate().unwrap();
            {
                let mut lg = p.frame(leaf).latch.write();
                let mut pax = crate::pax::PaxLeaf::new();
                pax.append(&layout, RowId(1), &[Value::I64(val)]);
                *lg = Page::TableLeaf(pax);
            }
            {
                let mut pg = p.frame(parent).latch.write();
                let mut inner = InnerNode::default();
                inner.children[0] = Swip::hot(leaf).raw();
                *pg = Page::Inner(inner);
            }
            p.frame(leaf).meta.parent.store(parent, Ordering::Relaxed);
            p.frame(leaf).meta.dirty.store(true, Ordering::Relaxed);
            parent
        };
        let cold_child = |parent: FrameId| {
            let g = p.frame(parent).latch.read();
            let Page::Inner(n) = &*g else { panic!("parent gone") };
            match Swip::from_raw(n.children[0]).state() {
                SwipState::Cold(pid) => pid,
                s => panic!("expected cold swip, got {s:?}"),
            }
        };

        let parent1 = make(42);
        p.stage_cooling(0, 8);
        assert!(p.evict_one(0).unwrap());
        let pid1 = cold_child(parent1);

        // A background loader completes the fault, but the batch abandons
        // the descent: the ticket is dropped unconsumed.
        let free_before = p.free_frames(0);
        let loaded = p.load_cold(pid1, parent1).unwrap();
        let ticket = FaultTicket::new(Arc::downgrade(&p));
        ticket.complete(Ok(loaded));
        drop(ticket);
        assert_eq!(p.free_frames(0), free_before, "frame must come back to the pool");

        // The next page-out must draw a *different* disk slot…
        let parent2 = make(7);
        p.stage_cooling(0, 8);
        assert!(p.evict_one(0).unwrap());
        let pid2 = cold_child(parent2);
        assert_ne!(pid1, pid2, "abandoned fault freed a disk slot that is still cold-referenced");

        // …and the still-cold swip must resolve to the original bytes.
        let back = p.load_cold(pid1, parent1).unwrap();
        let g = p.frame(back).latch.read();
        let Page::TableLeaf(l) = &*g else { panic!("expected leaf") };
        assert_eq!(l.read_col(&layout, 0, 0), Value::I64(42));
    }

    /// A cooling candidate that loses its eviction attempt to a latch
    /// race must return to the cooling queue: its swip is no longer Hot,
    /// so `stage_cooling` can never find it again — dropping it would
    /// leave the frame permanently unevictable, and a batch fault storm
    /// generates enough latch churn to strand a whole partition that way.
    #[test]
    fn contended_cooling_candidate_is_requeued_not_stranded() {
        use crate::node::InnerNode;
        use crate::schema::{ColType, Schema, Value};
        use phoebe_common::ids::RowId;

        let p = pool(8, 1);
        let schema = Schema::new(vec![("v", ColType::I64)]);
        let layout = crate::pax::PaxLayout::for_schema(&schema);
        let parent = p.allocate().unwrap();
        let leaf = p.allocate().unwrap();
        {
            let mut lg = p.frame(leaf).latch.write();
            let mut pax = crate::pax::PaxLeaf::new();
            pax.append(&layout, RowId(1), &[Value::I64(42)]);
            *lg = Page::TableLeaf(pax);
        }
        {
            let mut pg = p.frame(parent).latch.write();
            let mut inner = InnerNode::default();
            inner.children[0] = Swip::hot(leaf).raw();
            *pg = Page::Inner(inner);
        }
        p.frame(leaf).meta.parent.store(parent, Ordering::Relaxed);

        p.stage_cooling(0, 4);
        {
            let _hold = p.frame(leaf).latch.write();
            assert!(!p.evict_one(0).unwrap(), "eviction must back off from a latched victim");
        }
        assert!(p.evict_one(0).unwrap(), "candidate lost to a latch race must stay evictable");
    }

    #[test]
    fn heated_swips_survive_eviction_attempts() {
        use crate::node::InnerNode;
        let p = pool(8, 1);
        let parent = p.allocate().unwrap();
        let leaf = p.allocate().unwrap();
        {
            let mut lg = p.frame(leaf).latch.write();
            *lg = Page::TableLeaf(crate::pax::PaxLeaf::new());
        }
        {
            let mut pg = p.frame(parent).latch.write();
            let mut inner = InnerNode::default();
            inner.children[0] = Swip::hot(leaf).raw();
            *pg = Page::Inner(inner);
        }
        p.frame(leaf).meta.parent.store(parent, Ordering::Relaxed);

        p.stage_cooling(0, 4);
        // Simulate an access heating the swip before eviction runs.
        {
            let mut pg = p.frame(parent).latch.write();
            let Page::Inner(n) = &mut *pg else { unreachable!() };
            BufferPool::heat_in_parent(n, 0);
        }
        assert!(!p.evict_one(0).unwrap(), "heated page must not be evicted");
        let g = p.frame(parent).latch.read();
        let Page::Inner(n) = &*g else { unreachable!() };
        assert_eq!(Swip::from_raw(n.children[0]).state(), SwipState::Hot(leaf));
    }
}
