//! End-to-end TPC-C tests: load both engines at micro scale, run the mix,
//! and check the specification's consistency conditions.

use phoebe_baseline::BaselineDb;
use phoebe_common::KernelConfig;
use phoebe_core::Database;
use phoebe_runtime::block_on;
use phoebe_storage::schema::Value;
use phoebe_tpcc::conn::TpccConn;
use phoebe_tpcc::schema::{cols, Idx, Tbl};
use phoebe_tpcc::txns::{self, Params};
use phoebe_tpcc::{
    gen::TpccRng, load, run_baseline, run_phoebe, BaselineEngine, DriverConfig, PhoebeEngine,
    TpccEngine, TpccScale,
};
use std::time::Duration;

fn phoebe_engine() -> PhoebeEngine {
    let mut cfg = KernelConfig::for_tests();
    cfg.workers = 2;
    cfg.slots_per_worker = 8;
    cfg.buffer_frames = 2048;
    let db = Database::open(cfg).unwrap();
    PhoebeEngine::create(db).unwrap()
}

fn baseline_engine() -> BaselineEngine {
    let db = BaselineDb::open(&KernelConfig::for_tests().data_dir, 50).unwrap();
    BaselineEngine::create(db)
}

fn i32v(v: u32) -> Value {
    Value::I32(v as i32)
}

/// Consistency condition 1 (clause 3.3.2.1): for every district,
/// D_NEXT_O_ID - 1 equals the max O_ID in ORDER and NEW-ORDER behaves.
async fn check_consistency<E: TpccEngine>(engine: &E, warehouses: u32, scale: TpccScale) {
    let mut conn = engine.begin();
    for w in 1..=warehouses {
        for d in 1..=scale.districts_per_warehouse {
            let (_, district) = conn
                .lookup(Idx::DistrictPk, vec![i32v(w), i32v(d)])
                .await
                .unwrap()
                .expect("district exists");
            let next_o = district[cols::D_NEXT_O_ID].as_i32() as u32;
            // Highest order id must be next_o - 1.
            let orders =
                conn.scan(Idx::OrderPk, vec![i32v(w), i32v(d)], usize::MAX - 1).await.unwrap();
            let max_o =
                orders.iter().map(|(_, o)| o[cols::O_ID].as_i32() as u32).max().unwrap_or(0);
            assert_eq!(max_o, next_o - 1, "w{w} d{d}: order counter must be dense");
            // Every order has its ol_cnt order lines (condition 3.3.2.8-ish).
            for (_, o) in orders.iter().take(5) {
                let o_id = o[cols::O_ID].as_i32() as u32;
                let lines = conn
                    .scan(Idx::OrderLinePk, vec![i32v(w), i32v(d), i32v(o_id)], 30)
                    .await
                    .unwrap();
                assert_eq!(lines.len() as i32, o[cols::O_OL_CNT].as_i32());
            }
        }
    }
    conn.commit().await.unwrap();
}

#[test]
fn load_populates_spec_cardinalities_on_phoebe() {
    let engine = phoebe_engine();
    let scale = TpccScale::micro();
    block_on(load(&engine, 1, scale, 7)).unwrap();
    block_on(check_consistency(&engine, 1, scale));
    // Cardinalities.
    let db = &engine.db;
    let items = db.approximate_row_count(engine.table(Tbl::Item)).unwrap();
    assert_eq!(items, scale.items as usize);
    let customers = db.approximate_row_count(engine.table(Tbl::Customer)).unwrap();
    assert_eq!(customers, (scale.districts_per_warehouse * scale.customers_per_district) as usize);
    let stock = db.approximate_row_count(engine.table(Tbl::Stock)).unwrap();
    assert_eq!(stock, scale.items as usize);
    db.shutdown();
}

#[test]
fn new_order_advances_counters_and_writes_lines() {
    let engine = phoebe_engine();
    let scale = TpccScale::micro();
    block_on(load(&engine, 1, scale, 8)).unwrap();
    let params = Params { warehouses: 1, scale };
    let mut rng = TpccRng::seeded(1);
    let before = block_on(async {
        let mut c = engine.begin();
        let (_, d) = c.lookup(Idx::DistrictPk, vec![i32v(1), i32v(1)]).await.unwrap().unwrap();
        c.commit().await.unwrap();
        d[cols::D_NEXT_O_ID].as_i32()
    });
    // Run enough New-Orders to almost surely hit district 1.
    let mut committed = 0;
    block_on(async {
        for _ in 0..20 {
            let mut conn = engine.begin();
            match txns::new_order(&mut conn, &mut rng, &params, 1).await {
                Ok(true) => {
                    conn.commit().await.unwrap();
                    committed += 1;
                }
                Ok(false) => conn.abort(),
                Err(e) => panic!("new_order failed: {e}"),
            }
        }
    });
    assert!(committed >= 15, "most new orders must commit");
    let after = block_on(async {
        let mut c = engine.begin();
        let (_, d) = c.lookup(Idx::DistrictPk, vec![i32v(1), i32v(1)]).await.unwrap().unwrap();
        c.commit().await.unwrap();
        d[cols::D_NEXT_O_ID].as_i32()
    });
    assert!(after > before, "next_o_id advanced");
    block_on(check_consistency(&engine, 1, scale));
    engine.db.shutdown();
}

#[test]
fn payment_moves_money_and_writes_history() {
    let engine = phoebe_engine();
    let scale = TpccScale::micro();
    block_on(load(&engine, 1, scale, 9)).unwrap();
    let params = Params { warehouses: 1, scale };
    let mut rng = TpccRng::seeded(2);
    let ytd_before = block_on(async {
        let mut c = engine.begin();
        let (_, w) = c.lookup(Idx::WarehousePk, vec![i32v(1)]).await.unwrap().unwrap();
        c.commit().await.unwrap();
        w[cols::W_YTD].as_i64()
    });
    block_on(async {
        for _ in 0..10 {
            let mut conn = engine.begin();
            txns::payment(&mut conn, &mut rng, &params, 1).await.unwrap();
            conn.commit().await.unwrap();
        }
    });
    let ytd_after = block_on(async {
        let mut c = engine.begin();
        let (_, w) = c.lookup(Idx::WarehousePk, vec![i32v(1)]).await.unwrap().unwrap();
        c.commit().await.unwrap();
        w[cols::W_YTD].as_i64()
    });
    assert!(ytd_after > ytd_before, "payments must accumulate in W_YTD");
    let history = engine.db.approximate_row_count(engine.table(Tbl::History)).unwrap();
    let loaded = (scale.districts_per_warehouse * scale.customers_per_district) as usize;
    assert_eq!(history, loaded + 10);
    engine.db.shutdown();
}

#[test]
fn delivery_consumes_new_orders() {
    let engine = phoebe_engine();
    let scale = TpccScale::micro();
    block_on(load(&engine, 1, scale, 10)).unwrap();
    let params = Params { warehouses: 1, scale };
    let mut rng = TpccRng::seeded(3);
    let pending_before = engine.db.approximate_row_count(engine.table(Tbl::NewOrder)).unwrap();
    assert!(pending_before > 0, "loader must leave undelivered orders");
    let delivered = block_on(async {
        let mut conn = engine.begin();
        let n = txns::delivery(&mut conn, &mut rng, &params, 1).await.unwrap();
        conn.commit().await.unwrap();
        n
    });
    assert!(delivered > 0);
    // GC makes deletions physical before counting.
    engine.db.collect_all();
    let pending_after = engine.db.approximate_row_count(engine.table(Tbl::NewOrder)).unwrap();
    assert_eq!(pending_after, pending_before - delivered as usize);
    engine.db.shutdown();
}

#[test]
fn mixed_driver_runs_on_phoebe() {
    let engine = phoebe_engine();
    let scale = TpccScale::micro();
    block_on(load(&engine, 2, scale, 11)).unwrap();
    let cfg = DriverConfig {
        warehouses: 2,
        scale,
        duration: Duration::from_millis(1500),
        terminals: 8,
        affinity: true,
        seed: 99,
    };
    let stats = run_phoebe(&engine, &cfg);
    assert!(stats.committed > 0, "driver must commit transactions");
    assert!(stats.new_orders > 0, "mix must include new orders");
    assert_eq!(stats.errors, 0, "no internal errors allowed: {stats:?}");
    assert!(stats.tpmc() > 0.0);
    block_on(check_consistency(&engine, 2, scale));
    engine.db.shutdown();
}

#[test]
fn mixed_driver_runs_on_baseline() {
    let engine = baseline_engine();
    let scale = TpccScale::micro();
    block_on(load(&engine, 1, scale, 12)).unwrap();
    let cfg = DriverConfig {
        warehouses: 1,
        scale,
        duration: Duration::from_millis(1000),
        terminals: 4,
        affinity: false,
        seed: 13,
    };
    let stats = run_baseline(&engine, &cfg);
    assert!(stats.committed > 0);
    assert_eq!(stats.errors, 0, "no internal errors allowed: {stats:?}");
    block_on(check_consistency(&engine, 1, scale));
}

#[test]
fn both_engines_agree_on_a_deterministic_prefix() {
    // Run the same seeded New-Order sequence on both engines and compare
    // the resulting district counters — the cross-engine fairness check.
    let scale = TpccScale::micro();
    let params = Params { warehouses: 1, scale };

    let phoebe = phoebe_engine();
    block_on(load(&phoebe, 1, scale, 33)).unwrap();
    let mut rng = TpccRng::seeded(5);
    let phoebe_counters: Vec<i32> = block_on(async {
        for _ in 0..12 {
            let mut conn = phoebe.begin();
            match txns::new_order(&mut conn, &mut rng, &params, 1).await {
                Ok(true) => conn.commit().await.unwrap(),
                Ok(false) => conn.abort(),
                Err(e) => panic!("phoebe new_order: {e}"),
            }
        }
        let mut c = phoebe.begin();
        let mut out = Vec::new();
        for d in 1..=scale.districts_per_warehouse {
            let (_, row) =
                c.lookup(Idx::DistrictPk, vec![i32v(1), i32v(d)]).await.unwrap().unwrap();
            out.push(row[cols::D_NEXT_O_ID].as_i32());
        }
        c.commit().await.unwrap();
        out
    });
    phoebe.db.shutdown();

    let base = baseline_engine();
    block_on(load(&base, 1, scale, 33)).unwrap();
    let mut rng = TpccRng::seeded(5);
    let base_counters: Vec<i32> = block_on(async {
        for _ in 0..12 {
            let mut conn = base.begin();
            match txns::new_order(&mut conn, &mut rng, &params, 1).await {
                Ok(true) => conn.commit().await.unwrap(),
                Ok(false) => conn.abort(),
                Err(e) => panic!("baseline new_order: {e}"),
            }
        }
        let mut c = base.begin();
        let mut out = Vec::new();
        for d in 1..=scale.districts_per_warehouse {
            let (_, row) =
                c.lookup(Idx::DistrictPk, vec![i32v(1), i32v(d)]).await.unwrap().unwrap();
            out.push(row[cols::D_NEXT_O_ID].as_i32());
        }
        c.commit().await.unwrap();
        out
    });
    assert_eq!(phoebe_counters, base_counters, "identical logic on both engines");
}
