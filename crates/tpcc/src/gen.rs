//! TPC-C random data generation: NURand skew, last-name syllables, random
//! strings — per clause 4.3 of the specification.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The spec's C constants (clause 2.1.6); fixed per run for determinism.
pub const C_LAST: u32 = 123;
pub const C_CUST: u32 = 259;
pub const C_ITEM: u32 = 7911;

/// Deterministic per-terminal RNG.
pub struct TpccRng {
    rng: StdRng,
}

impl TpccRng {
    pub fn seeded(seed: u64) -> Self {
        TpccRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.random_range(lo..=hi)
    }

    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..=hi)
    }

    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.uniform(1, 100) <= pct
    }

    /// Non-uniform random (clause 2.1.6): skewed access to hot keys.
    pub fn nurand(&mut self, a: u32, c: u32, lo: u32, hi: u32) -> u32 {
        let part1 = self.uniform(0, a);
        let part2 = self.uniform(lo, hi);
        (((part1 | part2).wrapping_add(c)) % (hi - lo + 1)) + lo
    }

    /// Customer id with the spec's 1023-skew.
    pub fn customer_id(&mut self, customers: u32) -> u32 {
        self.nurand(1023, C_CUST, 1, customers)
    }

    /// Item id with the spec's 8191-skew.
    pub fn item_id(&mut self, items: u32) -> u32 {
        self.nurand(8191, C_ITEM, 1, items)
    }

    /// Random alphanumeric string with length in `[lo, hi]`.
    pub fn astring(&mut self, lo: usize, hi: usize) -> String {
        const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let len = self.rng.random_range(lo..=hi);
        (0..len).map(|_| CHARS[self.rng.random_range(0..CHARS.len())] as char).collect()
    }

    /// Random numeric string of exactly `len` digits.
    pub fn nstring(&mut self, len: usize) -> String {
        (0..len).map(|_| char::from(b'0' + self.rng.random_range(0..10u8))).collect()
    }

    /// ZIP: 4 digits + "11111" (clause 4.3.2.7).
    pub fn zip(&mut self) -> String {
        format!("{}11111", self.nstring(4))
    }

    /// Last name for a numeric code (clause 4.3.2.3).
    pub fn last_name_for(code: u32) -> String {
        const SYL: [&str; 10] =
            ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];
        let code = code as usize;
        format!("{}{}{}", SYL[code / 100 % 10], SYL[code / 10 % 10], SYL[code % 10])
    }

    /// Last name for loading (customer c): first 1000 customers use
    /// sequential codes, others NURand.
    pub fn load_last_name(&mut self, c_id: u32) -> String {
        if c_id <= 1000 {
            Self::last_name_for(c_id - 1)
        } else {
            Self::last_name_for(self.nurand(255, C_LAST, 0, 999))
        }
    }

    /// Last name for transactions (run-time NURand over 0..=999).
    pub fn run_last_name(&mut self, customers: u32) -> String {
        // Keep the name domain aligned with the loaded population when the
        // scale is below 1000 customers per district.
        let hi = 999.min(customers.saturating_sub(1));
        Self::last_name_for(self.nurand(255, C_LAST, 0, hi))
    }

    /// Original/data string: 10% contain "ORIGINAL" (clause 4.3.3.1).
    pub fn data_string(&mut self, lo: usize, hi: usize) -> String {
        let mut s = self.astring(lo, hi);
        if self.chance(10) {
            let pos = self.rng.random_range(0..=s.len().saturating_sub(8));
            if s.len() >= 8 {
                s.replace_range(pos..pos + 8, "ORIGINAL");
            }
        }
        s
    }
}

/// Standalone NURand (for tests and docs).
pub fn nurand(rng: &mut TpccRng, a: u32, c: u32, lo: u32, hi: u32) -> u32 {
    rng.nurand(a, c, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let mut r = TpccRng::seeded(1);
        for _ in 0..1000 {
            let v = r.uniform(5, 15);
            assert!((5..=15).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed_and_bounded() {
        let mut r = TpccRng::seeded(2);
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            let v = r.nurand(1023, C_CUST, 1, 100);
            assert!((1..=100).contains(&v));
            counts[v as usize] += 1;
        }
        // Skew check: the hottest key should be well above uniform share.
        let max = *counts.iter().max().unwrap();
        assert!(max as f64 > 20_000.0 / 100.0 * 1.5, "NURand must skew");
    }

    #[test]
    fn last_names_follow_syllables() {
        assert_eq!(TpccRng::last_name_for(0), "BARBARBAR");
        assert_eq!(TpccRng::last_name_for(371), "PRICALLYOUGHT");
        assert_eq!(TpccRng::last_name_for(999), "EINGEINGEING");
        assert!(TpccRng::last_name_for(999).len() <= 16);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TpccRng::seeded(42);
        let mut b = TpccRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(1, 1000), b.uniform(1, 1000));
        }
    }

    #[test]
    fn zip_shape() {
        let mut r = TpccRng::seeded(3);
        let z = r.zip();
        assert_eq!(z.len(), 9);
        assert!(z.ends_with("11111"));
    }

    #[test]
    fn astring_lengths() {
        let mut r = TpccRng::seeded(4);
        for _ in 0..100 {
            let s = r.astring(8, 16);
            assert!((8..=16).contains(&s.len()));
        }
    }
}
