//! The TPC-C loader (clause 4.3), engine-generic. Population follows the
//! specification's cardinalities and value domains at the configured
//! scale; one transaction per district keeps commit batches bounded.

// Money literals are fixed-point cents grouped as dollars_cents
// (300_000_00 = $300,000.00), matching the spec's decimal columns.
#![allow(clippy::inconsistent_digit_grouping)]

use crate::conn::{TpccConn, TpccEngine};
use crate::gen::TpccRng;
use crate::schema::{Tbl, TpccScale};
use phoebe_common::error::Result;
use phoebe_storage::schema::Value;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn i32v(v: u32) -> Value {
    Value::I32(v as i32)
}

fn now_millis() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

/// Load `warehouses` warehouses at `scale` into `engine`.
pub async fn load<E: TpccEngine>(
    engine: &E,
    warehouses: u32,
    scale: TpccScale,
    seed: u64,
) -> Result<()> {
    let mut rng = TpccRng::seeded(seed);
    load_items(engine, &mut rng, scale).await?;
    for w in 1..=warehouses {
        load_warehouse(engine, &mut rng, scale, w).await?;
    }
    Ok(())
}

async fn load_items<E: TpccEngine>(engine: &E, rng: &mut TpccRng, scale: TpccScale) -> Result<()> {
    let mut conn = engine.begin();
    for i in 1..=scale.items {
        conn.insert(
            Tbl::Item,
            vec![
                i32v(i),
                i32v(rng.uniform(1, 10_000)),
                Value::Str(rng.astring(14, 24)),
                Value::I64(rng.uniform_i64(100, 10_000)), // cents
                Value::Str(rng.data_string(26, 50)),
            ],
        )
        .await?;
        if i % 5_000 == 0 {
            conn.commit().await?;
            conn = engine.begin();
        }
    }
    conn.commit().await
}

async fn load_warehouse<E: TpccEngine>(
    engine: &E,
    rng: &mut TpccRng,
    scale: TpccScale,
    w: u32,
) -> Result<()> {
    let mut conn = engine.begin();
    conn.insert(
        Tbl::Warehouse,
        vec![
            i32v(w),
            Value::Str(rng.astring(6, 10)),
            Value::Str(rng.astring(10, 20)),
            Value::Str(rng.astring(10, 20)),
            Value::Str(rng.astring(10, 20)),
            Value::Str(rng.astring(2, 2)),
            Value::Str(rng.zip()),
            Value::F64(rng.f64(0.0, 0.2)),
            Value::I64(300_000_00),
        ],
    )
    .await?;
    // Stock for every item.
    for i in 1..=scale.items {
        let mut row = vec![i32v(i), i32v(w), Value::I32(rng.uniform(10, 100) as i32)];
        for _ in 0..10 {
            row.push(Value::Str(rng.astring(24, 24)));
        }
        row.extend([
            Value::I32(0),
            Value::I32(0),
            Value::I32(0),
            Value::Str(rng.data_string(26, 50)),
        ]);
        conn.insert(Tbl::Stock, row).await?;
        if i % 5_000 == 0 {
            conn.commit().await?;
            conn = engine.begin();
        }
    }
    conn.commit().await?;

    for d in 1..=scale.districts_per_warehouse {
        load_district(engine, rng, scale, w, d).await?;
    }
    Ok(())
}

async fn load_district<E: TpccEngine>(
    engine: &E,
    rng: &mut TpccRng,
    scale: TpccScale,
    w: u32,
    d: u32,
) -> Result<()> {
    let mut conn = engine.begin();
    let orders = scale.initial_orders_per_district.min(scale.customers_per_district);
    conn.insert(
        Tbl::District,
        vec![
            i32v(d),
            i32v(w),
            Value::Str(rng.astring(6, 10)),
            Value::Str(rng.astring(10, 20)),
            Value::Str(rng.astring(10, 20)),
            Value::Str(rng.astring(10, 20)),
            Value::Str(rng.astring(2, 2)),
            Value::Str(rng.zip()),
            Value::F64(rng.f64(0.0, 0.2)),
            Value::I64(30_000_00),
            i32v(orders + 1),
        ],
    )
    .await?;

    // Customers + one history row each.
    for c in 1..=scale.customers_per_district {
        let credit = if rng.chance(10) { "BC" } else { "GC" };
        conn.insert(
            Tbl::Customer,
            vec![
                i32v(c),
                i32v(d),
                i32v(w),
                Value::Str(rng.astring(8, 16)),
                Value::Str("OE".into()),
                Value::Str(rng.load_last_name(c)),
                Value::Str(rng.astring(10, 20)),
                Value::Str(rng.astring(10, 20)),
                Value::Str(rng.astring(10, 20)),
                Value::Str(rng.astring(2, 2)),
                Value::Str(rng.zip()),
                Value::Str(rng.nstring(16)),
                Value::I64(now_millis()),
                Value::Str(credit.into()),
                Value::I64(50_000_00),
                Value::F64(rng.f64(0.0, 0.5)),
                Value::I64(-10_00),
                Value::I64(10_00),
                Value::I32(1),
                Value::I32(0),
                Value::Str(rng.astring(100, 250)),
            ],
        )
        .await?;
        conn.insert(
            Tbl::History,
            vec![
                i32v(c),
                i32v(d),
                i32v(w),
                i32v(d),
                i32v(w),
                Value::I64(now_millis()),
                Value::I64(10_00),
                Value::Str(rng.astring(12, 24)),
            ],
        )
        .await?;
    }
    conn.commit().await?;

    // Initial orders: customer ids form a random permutation.
    let mut conn = engine.begin();
    let mut cust_perm: Vec<u32> = (1..=scale.customers_per_district).collect();
    {
        let mut shuffle_rng =
            rand::rngs::StdRng::seed_from_u64((w as u64) << 32 | (d as u64) << 16 | 0xC0FFEE);
        cust_perm.shuffle(&mut shuffle_rng);
    }
    let delivered_upto = orders * 7 / 10; // first 70% delivered
    for o in 1..=orders {
        let c = cust_perm[(o - 1) as usize % cust_perm.len()];
        let ol_cnt = rng.uniform(5, 15);
        let delivered = o <= delivered_upto;
        let entry = now_millis();
        conn.insert(
            Tbl::Order,
            vec![
                i32v(o),
                i32v(d),
                i32v(w),
                i32v(c),
                Value::I64(entry),
                Value::I32(if delivered { rng.uniform(1, 10) as i32 } else { 0 }),
                i32v(ol_cnt),
                Value::I32(1),
            ],
        )
        .await?;
        for ol in 1..=ol_cnt {
            let amount = if delivered { 0 } else { rng.uniform_i64(1, 999_999) };
            conn.insert(
                Tbl::OrderLine,
                vec![
                    i32v(o),
                    i32v(d),
                    i32v(w),
                    i32v(ol),
                    i32v(rng.uniform(1, scale.items)),
                    i32v(w),
                    Value::I64(if delivered { entry } else { 0 }),
                    Value::I32(5),
                    Value::I64(amount),
                    Value::Str(rng.astring(24, 24)),
                ],
            )
            .await?;
        }
        if !delivered {
            conn.insert(Tbl::NewOrder, vec![i32v(o), i32v(d), i32v(w)]).await?;
        }
    }
    conn.commit().await
}
