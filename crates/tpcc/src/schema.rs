//! The nine TPC-C tables, their column layouts and indexes.
//!
//! Decimals are stored as `i64` fixed-point cents; dates as `i64` unix
//! millis. String capacities are the spec's, except C_DATA (500 → 250
//! bytes) to bound PAX row width; the workload only appends to it.

use phoebe_storage::schema::{ColType, Schema};

/// The TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Tbl {
    Warehouse = 0,
    District = 1,
    Customer = 2,
    History = 3,
    NewOrder = 4,
    Order = 5,
    OrderLine = 6,
    Item = 7,
    Stock = 8,
}

pub const TABLES: [Tbl; 9] = [
    Tbl::Warehouse,
    Tbl::District,
    Tbl::Customer,
    Tbl::History,
    Tbl::NewOrder,
    Tbl::Order,
    Tbl::OrderLine,
    Tbl::Item,
    Tbl::Stock,
];

/// The indexes the transactions need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Idx {
    WarehousePk = 0,
    DistrictPk = 1,
    CustomerPk = 2,
    /// (w, d, last) — non-unique, for Payment/Order-Status by name.
    CustomerByName = 3,
    OrderPk = 4,
    /// (w, d, c) — non-unique, latest order per customer.
    OrderByCustomer = 5,
    NewOrderPk = 6,
    OrderLinePk = 7,
    ItemPk = 8,
    StockPk = 9,
}

pub const INDEXES: [Idx; 10] = [
    Idx::WarehousePk,
    Idx::DistrictPk,
    Idx::CustomerPk,
    Idx::CustomerByName,
    Idx::OrderPk,
    Idx::OrderByCustomer,
    Idx::NewOrderPk,
    Idx::OrderLinePk,
    Idx::ItemPk,
    Idx::StockPk,
];

impl Tbl {
    pub fn name(self) -> &'static str {
        match self {
            Tbl::Warehouse => "warehouse",
            Tbl::District => "district",
            Tbl::Customer => "customer",
            Tbl::History => "history",
            Tbl::NewOrder => "new_order",
            Tbl::Order => "orders",
            Tbl::OrderLine => "order_line",
            Tbl::Item => "item",
            Tbl::Stock => "stock",
        }
    }

    /// The table's schema. Column index constants below must match.
    pub fn schema(self) -> Schema {
        use ColType::*;
        match self {
            Tbl::Warehouse => Schema::new(vec![
                ("w_id", I32),
                ("w_name", Str(10)),
                ("w_street_1", Str(20)),
                ("w_street_2", Str(20)),
                ("w_city", Str(20)),
                ("w_state", Str(2)),
                ("w_zip", Str(9)),
                ("w_tax", F64),
                ("w_ytd", I64),
            ]),
            Tbl::District => Schema::new(vec![
                ("d_id", I32),
                ("d_w_id", I32),
                ("d_name", Str(10)),
                ("d_street_1", Str(20)),
                ("d_street_2", Str(20)),
                ("d_city", Str(20)),
                ("d_state", Str(2)),
                ("d_zip", Str(9)),
                ("d_tax", F64),
                ("d_ytd", I64),
                ("d_next_o_id", I32),
            ]),
            Tbl::Customer => Schema::new(vec![
                ("c_id", I32),
                ("c_d_id", I32),
                ("c_w_id", I32),
                ("c_first", Str(16)),
                ("c_middle", Str(2)),
                ("c_last", Str(16)),
                ("c_street_1", Str(20)),
                ("c_street_2", Str(20)),
                ("c_city", Str(20)),
                ("c_state", Str(2)),
                ("c_zip", Str(9)),
                ("c_phone", Str(16)),
                ("c_since", I64),
                ("c_credit", Str(2)),
                ("c_credit_lim", I64),
                ("c_discount", F64),
                ("c_balance", I64),
                ("c_ytd_payment", I64),
                ("c_payment_cnt", I32),
                ("c_delivery_cnt", I32),
                ("c_data", Str(250)),
            ]),
            Tbl::History => Schema::new(vec![
                ("h_c_id", I32),
                ("h_c_d_id", I32),
                ("h_c_w_id", I32),
                ("h_d_id", I32),
                ("h_w_id", I32),
                ("h_date", I64),
                ("h_amount", I64),
                ("h_data", Str(24)),
            ]),
            Tbl::NewOrder => {
                Schema::new(vec![("no_o_id", I32), ("no_d_id", I32), ("no_w_id", I32)])
            }
            Tbl::Order => Schema::new(vec![
                ("o_id", I32),
                ("o_d_id", I32),
                ("o_w_id", I32),
                ("o_c_id", I32),
                ("o_entry_d", I64),
                ("o_carrier_id", I32),
                ("o_ol_cnt", I32),
                ("o_all_local", I32),
            ]),
            Tbl::OrderLine => Schema::new(vec![
                ("ol_o_id", I32),
                ("ol_d_id", I32),
                ("ol_w_id", I32),
                ("ol_number", I32),
                ("ol_i_id", I32),
                ("ol_supply_w_id", I32),
                ("ol_delivery_d", I64),
                ("ol_quantity", I32),
                ("ol_amount", I64),
                ("ol_dist_info", Str(24)),
            ]),
            Tbl::Item => Schema::new(vec![
                ("i_id", I32),
                ("i_im_id", I32),
                ("i_name", Str(24)),
                ("i_price", I64),
                ("i_data", Str(50)),
            ]),
            Tbl::Stock => Schema::new(vec![
                ("s_i_id", I32),
                ("s_w_id", I32),
                ("s_quantity", I32),
                ("s_dist_01", Str(24)),
                ("s_dist_02", Str(24)),
                ("s_dist_03", Str(24)),
                ("s_dist_04", Str(24)),
                ("s_dist_05", Str(24)),
                ("s_dist_06", Str(24)),
                ("s_dist_07", Str(24)),
                ("s_dist_08", Str(24)),
                ("s_dist_09", Str(24)),
                ("s_dist_10", Str(24)),
                ("s_ytd", I32),
                ("s_order_cnt", I32),
                ("s_remote_cnt", I32),
                ("s_data", Str(50)),
            ]),
        }
    }
}

impl Idx {
    pub fn name(self) -> &'static str {
        match self {
            Idx::WarehousePk => "warehouse_pk",
            Idx::DistrictPk => "district_pk",
            Idx::CustomerPk => "customer_pk",
            Idx::CustomerByName => "customer_by_name",
            Idx::OrderPk => "order_pk",
            Idx::OrderByCustomer => "order_by_customer",
            Idx::NewOrderPk => "new_order_pk",
            Idx::OrderLinePk => "order_line_pk",
            Idx::ItemPk => "item_pk",
            Idx::StockPk => "stock_pk",
        }
    }

    pub fn table(self) -> Tbl {
        match self {
            Idx::WarehousePk => Tbl::Warehouse,
            Idx::DistrictPk => Tbl::District,
            Idx::CustomerPk | Idx::CustomerByName => Tbl::Customer,
            Idx::OrderPk | Idx::OrderByCustomer => Tbl::Order,
            Idx::NewOrderPk => Tbl::NewOrder,
            Idx::OrderLinePk => Tbl::OrderLine,
            Idx::ItemPk => Tbl::Item,
            Idx::StockPk => Tbl::Stock,
        }
    }

    /// Key columns (indices into the table schema).
    pub fn key_cols(self) -> Vec<usize> {
        match self {
            Idx::WarehousePk => vec![0],
            Idx::DistrictPk => vec![1, 0],         // (w, d)
            Idx::CustomerPk => vec![2, 1, 0],      // (w, d, c)
            Idx::CustomerByName => vec![2, 1, 5],  // (w, d, last)
            Idx::OrderPk => vec![2, 1, 0],         // (w, d, o)
            Idx::OrderByCustomer => vec![2, 1, 3], // (w, d, c)
            Idx::NewOrderPk => vec![2, 1, 0],      // (w, d, o)
            Idx::OrderLinePk => vec![2, 1, 0, 3],  // (w, d, o, ol)
            Idx::ItemPk => vec![0],
            Idx::StockPk => vec![1, 0], // (w, i)
        }
    }

    pub fn unique(self) -> bool {
        !matches!(self, Idx::CustomerByName | Idx::OrderByCustomer)
    }
}

/// Cardinality scale. `spec()` is the TPC-C standard; `mini()` shrinks the
/// per-warehouse data so experiments finish quickly on small machines
/// while keeping the skew structure.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    pub districts_per_warehouse: u32,
    pub customers_per_district: u32,
    pub items: u32,
    pub initial_orders_per_district: u32,
}

impl TpccScale {
    pub fn spec() -> Self {
        TpccScale {
            districts_per_warehouse: 10,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders_per_district: 3000,
        }
    }

    pub fn mini() -> Self {
        TpccScale {
            districts_per_warehouse: 10,
            customers_per_district: 60,
            items: 1_000,
            initial_orders_per_district: 30,
        }
    }

    pub fn micro() -> Self {
        TpccScale {
            districts_per_warehouse: 4,
            customers_per_district: 20,
            items: 200,
            initial_orders_per_district: 10,
        }
    }
}

// Column index constants used by the transactions.
pub mod cols {
    // warehouse
    pub const W_NAME: usize = 1;
    pub const W_TAX: usize = 7;
    pub const W_YTD: usize = 8;
    // district
    pub const D_NAME: usize = 2;
    pub const D_TAX: usize = 8;
    pub const D_YTD: usize = 9;
    pub const D_NEXT_O_ID: usize = 10;
    // customer
    pub const C_ID: usize = 0;
    pub const C_FIRST: usize = 3;
    pub const C_MIDDLE: usize = 4;
    pub const C_LAST: usize = 5;
    pub const C_CREDIT: usize = 13;
    pub const C_DISCOUNT: usize = 15;
    pub const C_BALANCE: usize = 16;
    pub const C_YTD_PAYMENT: usize = 17;
    pub const C_PAYMENT_CNT: usize = 18;
    pub const C_DELIVERY_CNT: usize = 19;
    pub const C_DATA: usize = 20;
    // order
    pub const O_ID: usize = 0;
    pub const O_C_ID: usize = 3;
    pub const O_CARRIER_ID: usize = 5;
    pub const O_OL_CNT: usize = 6;
    // order line
    pub const OL_I_ID: usize = 4;
    pub const OL_DELIVERY_D: usize = 6;
    pub const OL_QUANTITY: usize = 7;
    pub const OL_AMOUNT: usize = 8;
    // new order
    pub const NO_O_ID: usize = 0;
    // item
    pub const I_PRICE: usize = 3;
    pub const I_NAME: usize = 2;
    pub const I_DATA: usize = 4;
    // stock
    pub const S_QUANTITY: usize = 2;
    pub const S_YTD: usize = 13;
    pub const S_ORDER_CNT: usize = 14;
    pub const S_REMOTE_CNT: usize = 15;
    pub const S_DATA: usize = 16;
    pub const S_DIST_BASE: usize = 3; // s_dist_01 at 3 .. s_dist_10 at 12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_fit_pax_pages() {
        for t in TABLES {
            let schema = t.schema();
            let layout = phoebe_storage::PaxLayout::for_schema(&schema);
            assert!(layout.capacity >= 2, "{:?} must fit at least 2 rows", t);
        }
    }

    #[test]
    fn index_keys_fit_inline_limit() {
        use phoebe_storage::node::MAX_KEY;
        for idx in INDEXES {
            let schema = idx.table().schema();
            let mut width = 0usize;
            for c in idx.key_cols() {
                width += match schema.col_type(c) {
                    phoebe_storage::schema::ColType::I32 => 4,
                    phoebe_storage::schema::ColType::I64 | phoebe_storage::schema::ColType::F64 => {
                        8
                    }
                    phoebe_storage::schema::ColType::Str(m) => m as usize,
                };
            }
            if !idx.unique() {
                width += 8; // row-id suffix
            }
            assert!(width <= MAX_KEY, "{:?} key width {} too large", idx, width);
        }
    }

    #[test]
    fn key_cols_are_valid_schema_columns() {
        for idx in INDEXES {
            let schema = idx.table().schema();
            for c in idx.key_cols() {
                assert!(c < schema.num_cols(), "{idx:?} col {c} out of range");
            }
        }
    }

    #[test]
    fn column_constants_match_schema_names() {
        let c = Tbl::Customer.schema();
        assert_eq!(c.col_name(cols::C_LAST), "c_last");
        assert_eq!(c.col_name(cols::C_BALANCE), "c_balance");
        assert_eq!(c.col_name(cols::C_DATA), "c_data");
        let d = Tbl::District.schema();
        assert_eq!(d.col_name(cols::D_NEXT_O_ID), "d_next_o_id");
        let s = Tbl::Stock.schema();
        assert_eq!(s.col_name(cols::S_QUANTITY), "s_quantity");
        assert_eq!(s.col_name(cols::S_DIST_BASE + 9), "s_dist_10");
        let o = Tbl::Order.schema();
        assert_eq!(o.col_name(cols::O_CARRIER_ID), "o_carrier_id");
        let ol = Tbl::OrderLine.schema();
        assert_eq!(ol.col_name(cols::OL_AMOUNT), "ol_amount");
    }
}
