//! Engine-generic connection trait, with adapters for the PhoebeDB kernel
//! and the PostgreSQL-like baseline. The five transaction profiles are
//! written once against [`TpccConn`] and run unchanged on both engines —
//! the fairness requirement behind Exp 6/8.

use crate::schema::{Idx, Tbl, INDEXES, TABLES};
use phoebe_baseline::{BaselineDb, BaselineIndex, BaselineTable, BaselineTxn, Isolation};
use phoebe_common::error::Result;
use phoebe_common::ids::RowId;
use phoebe_core::{Database, IndexEntry, IsolationLevel, TableEntry, Transaction};
use phoebe_storage::schema::Value;
use std::future::Future;
use std::sync::Arc;

/// One open transaction against some engine.
pub trait TpccConn: Send + Sized {
    fn read(
        &mut self,
        t: Tbl,
        row: RowId,
    ) -> impl Future<Output = Result<Option<Vec<Value>>>> + Send;
    fn insert(&mut self, t: Tbl, tuple: Vec<Value>) -> impl Future<Output = Result<RowId>> + Send;
    fn update(
        &mut self,
        t: Tbl,
        row: RowId,
        delta: Vec<(usize, Value)>,
    ) -> impl Future<Output = Result<RowId>> + Send;
    /// Atomic read-modify-write: the delta is computed from the row's
    /// current version under the engine's row latch/lock, so counters
    /// (`d_next_o_id`, YTDs, stock quantities) never lose updates. Returns
    /// the updated row id and the version the delta was computed from.
    fn update_rmw<F>(
        &mut self,
        t: Tbl,
        row: RowId,
        f: F,
    ) -> impl Future<Output = Result<(RowId, Vec<Value>)>> + Send
    where
        F: Fn(&[Value]) -> Vec<(usize, Value)> + Send + Sync;
    fn delete(&mut self, t: Tbl, row: RowId) -> impl Future<Output = Result<()>> + Send;
    /// Unique-index point lookup.
    fn lookup(
        &mut self,
        idx: Idx,
        key: Vec<Value>,
    ) -> impl Future<Output = Result<Option<(RowId, Vec<Value>)>>> + Send;
    /// Batched unique-index point lookups: one result per key, in key
    /// order. Engines with interleaved execution override this to hide
    /// descent stalls; the default is the sequential loop (the
    /// baseline's model — one outstanding data access per transaction).
    ///
    /// Semantics: the batch is *one statement*. An overriding engine may
    /// resolve every key against a single statement snapshot, while the
    /// sequential default issues one statement per key — under
    /// ReadCommitted the two can observe different data when writers
    /// commit mid-batch (the per-key loop may see them, the batch won't).
    /// Under snapshot isolation, and for TPC-C's access patterns (each
    /// batch reads rows the transaction later locks or that are keyed to
    /// it), the results coincide.
    #[allow(clippy::type_complexity)] // same row shape every conn method uses
    fn multi_lookup(
        &mut self,
        idx: Idx,
        keys: Vec<Vec<Value>>,
    ) -> impl Future<Output = Result<Vec<Option<(RowId, Vec<Value>)>>>> + Send {
        async move {
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                out.push(self.lookup(idx, key).await?);
            }
            Ok(out)
        }
    }
    /// Prefix scan in key order, up to `limit` visible rows.
    fn scan(
        &mut self,
        idx: Idx,
        prefix: Vec<Value>,
        limit: usize,
    ) -> impl Future<Output = Result<Vec<(RowId, Vec<Value>)>>> + Send;
    fn commit(self) -> impl Future<Output = Result<()>> + Send;
    fn abort(self);
}

/// An engine that can open TPC-C transactions.
pub trait TpccEngine: Send + Sync + Clone + 'static {
    type Conn: TpccConn;
    fn begin(&self) -> Self::Conn;
}

// ---------------------------------------------------------------------
// PhoebeDB adapter
// ---------------------------------------------------------------------

/// The kernel with resolved TPC-C table/index handles.
#[derive(Clone)]
pub struct PhoebeEngine {
    pub db: Arc<Database>,
    tables: Arc<Vec<Arc<TableEntry>>>,
    indexes: Arc<Vec<Arc<IndexEntry>>>,
    pub isolation: IsolationLevel,
}

impl PhoebeEngine {
    /// Create the TPC-C schema in `db` and return the engine handle.
    pub fn create(db: Arc<Database>) -> Result<Self> {
        let mut tables = Vec::with_capacity(TABLES.len());
        for t in TABLES {
            tables.push(db.create_table(t.name(), t.schema())?);
        }
        let mut indexes = Vec::with_capacity(INDEXES.len());
        for idx in INDEXES {
            let table = &tables[idx.table() as usize];
            indexes.push(db.create_index(table, idx.name(), idx.key_cols(), idx.unique())?);
        }
        Ok(PhoebeEngine {
            db,
            tables: Arc::new(tables),
            indexes: Arc::new(indexes),
            isolation: IsolationLevel::ReadCommitted,
        })
    }

    pub fn table(&self, t: Tbl) -> &Arc<TableEntry> {
        &self.tables[t as usize]
    }

    pub fn index_entry(&self, i: Idx) -> &Arc<IndexEntry> {
        &self.indexes[i as usize]
    }
}

/// A transaction on the kernel.
pub struct PhoebeConn {
    tx: Transaction,
    tables: Arc<Vec<Arc<TableEntry>>>,
    indexes: Arc<Vec<Arc<IndexEntry>>>,
}

impl TpccEngine for PhoebeEngine {
    type Conn = PhoebeConn;

    fn begin(&self) -> PhoebeConn {
        PhoebeConn {
            tx: self.db.begin(self.isolation),
            tables: Arc::clone(&self.tables),
            indexes: Arc::clone(&self.indexes),
        }
    }
}

impl TpccConn for PhoebeConn {
    async fn read(&mut self, t: Tbl, row: RowId) -> Result<Option<Vec<Value>>> {
        Ok(self.tx.read(&self.tables[t as usize], row)?.map(|r| r.into_values()))
    }

    async fn insert(&mut self, t: Tbl, tuple: Vec<Value>) -> Result<RowId> {
        self.tx.insert(&self.tables[t as usize], tuple).await
    }

    async fn update(&mut self, t: Tbl, row: RowId, delta: Vec<(usize, Value)>) -> Result<RowId> {
        self.tx.update(&self.tables[t as usize], row, &delta).await
    }

    async fn update_rmw<F>(&mut self, t: Tbl, row: RowId, f: F) -> Result<(RowId, Vec<Value>)>
    where
        F: Fn(&[Value]) -> Vec<(usize, Value)> + Send + Sync,
    {
        self.tx.update_rmw(&self.tables[t as usize], row, &f).await
    }

    async fn delete(&mut self, t: Tbl, row: RowId) -> Result<()> {
        self.tx.delete(&self.tables[t as usize], row).await
    }

    async fn lookup(&mut self, idx: Idx, key: Vec<Value>) -> Result<Option<(RowId, Vec<Value>)>> {
        let table = &self.tables[idx.table() as usize];
        Ok(self
            .tx
            .lookup_unique(table, &self.indexes[idx as usize], &key)?
            .map(|(id, r)| (id, r.into_values())))
    }

    async fn scan(
        &mut self,
        idx: Idx,
        prefix: Vec<Value>,
        limit: usize,
    ) -> Result<Vec<(RowId, Vec<Value>)>> {
        let table = &self.tables[idx.table() as usize];
        Ok(self
            .tx
            .scan_index(table, &self.indexes[idx as usize], &prefix, limit)?
            .into_iter()
            .map(|(id, r)| (id, r.into_values()))
            .collect())
    }

    async fn multi_lookup(
        &mut self,
        idx: Idx,
        keys: Vec<Vec<Value>>,
    ) -> Result<Vec<Option<(RowId, Vec<Value>)>>> {
        let table = &self.tables[idx.table() as usize];
        Ok(self
            .tx
            .multi_lookup(table, &self.indexes[idx as usize], &keys)
            .await?
            .into_iter()
            .map(|hit| hit.map(|(id, r)| (id, r.into_values())))
            .collect())
    }

    async fn commit(self) -> Result<()> {
        self.tx.commit().await.map(|_| ())
    }

    fn abort(self) {
        self.tx.abort();
    }
}

// ---------------------------------------------------------------------
// Baseline adapter
// ---------------------------------------------------------------------

/// The baseline engine with resolved handles.
#[derive(Clone)]
pub struct BaselineEngine {
    pub db: Arc<BaselineDb>,
    tables: Arc<Vec<Arc<BaselineTable>>>,
    indexes: Arc<Vec<Arc<BaselineIndex>>>,
    pub isolation: Isolation,
}

impl BaselineEngine {
    pub fn create(db: Arc<BaselineDb>) -> Self {
        let mut tables = Vec::with_capacity(TABLES.len());
        for t in TABLES {
            tables.push(db.create_table(t.name(), t.schema()));
        }
        let mut indexes = Vec::with_capacity(INDEXES.len());
        for idx in INDEXES {
            let table = &tables[idx.table() as usize];
            indexes.push(db.create_index(table, idx.name(), idx.key_cols(), idx.unique()));
        }
        BaselineEngine {
            db,
            tables: Arc::new(tables),
            indexes: Arc::new(indexes),
            isolation: Isolation::ReadCommitted,
        }
    }
}

/// A transaction on the baseline (sync internals; waits block the thread —
/// the thread-per-transaction model).
pub struct BaselineConn {
    tx: BaselineTxn,
    tables: Arc<Vec<Arc<BaselineTable>>>,
    indexes: Arc<Vec<Arc<BaselineIndex>>>,
}

impl TpccEngine for BaselineEngine {
    type Conn = BaselineConn;

    fn begin(&self) -> BaselineConn {
        BaselineConn {
            tx: BaselineTxn::begin(&self.db, self.isolation),
            tables: Arc::clone(&self.tables),
            indexes: Arc::clone(&self.indexes),
        }
    }
}

impl TpccConn for BaselineConn {
    async fn read(&mut self, t: Tbl, row: RowId) -> Result<Option<Vec<Value>>> {
        self.tx.read(&self.tables[t as usize], row)
    }

    async fn insert(&mut self, t: Tbl, tuple: Vec<Value>) -> Result<RowId> {
        self.tx.insert(&self.tables[t as usize], tuple)
    }

    async fn update(&mut self, t: Tbl, row: RowId, delta: Vec<(usize, Value)>) -> Result<RowId> {
        self.tx.update(&self.tables[t as usize], row, &delta)
    }

    async fn update_rmw<F>(&mut self, t: Tbl, row: RowId, f: F) -> Result<(RowId, Vec<Value>)>
    where
        F: Fn(&[Value]) -> Vec<(usize, Value)> + Send + Sync,
    {
        self.tx.update_rmw(&self.tables[t as usize], row, &f)
    }

    async fn delete(&mut self, t: Tbl, row: RowId) -> Result<()> {
        self.tx.delete(&self.tables[t as usize], row)
    }

    async fn lookup(&mut self, idx: Idx, key: Vec<Value>) -> Result<Option<(RowId, Vec<Value>)>> {
        let table = &self.tables[idx.table() as usize];
        self.tx.lookup(table, &self.indexes[idx as usize], &key)
    }

    async fn scan(
        &mut self,
        idx: Idx,
        prefix: Vec<Value>,
        limit: usize,
    ) -> Result<Vec<(RowId, Vec<Value>)>> {
        let table = &self.tables[idx.table() as usize];
        self.tx.scan(table, &self.indexes[idx as usize], &prefix, limit)
    }

    async fn commit(self) -> Result<()> {
        self.tx.commit()
    }

    fn abort(self) {
        self.tx.abort();
    }
}
