//! The five TPC-C transaction profiles (clause 2), written once against
//! [`TpccConn`] so PhoebeDB and the baseline execute identical logic.

use crate::conn::TpccConn;
use crate::gen::TpccRng;
use crate::schema::{cols, Idx, Tbl, TpccScale};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_storage::schema::Value;

/// Static workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub warehouses: u32,
    pub scale: TpccScale,
}

/// Which profile ran (for the mix accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

fn i32v(v: u32) -> Value {
    Value::I32(v as i32)
}

fn now_millis() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

fn missing(what: &'static str) -> PhoebeError {
    // Rows addressed here exist by construction (loaded data); a miss is a
    // momentary version-chain transition — retry the transaction, exactly
    // as a client handles a serialization failure.
    PhoebeError::TransientMiss { what }
}

/// NEW-ORDER (clause 2.4). Returns `true` if the order committed, `false`
/// for the 1% intentional rollback on an unused item id.
pub async fn new_order<C: TpccConn>(
    conn: &mut C,
    rng: &mut TpccRng,
    p: &Params,
    w_id: u32,
) -> Result<bool> {
    let d_id = rng.uniform(1, p.scale.districts_per_warehouse);
    let c_id = rng.customer_id(p.scale.customers_per_district);
    let ol_cnt = rng.uniform(5, 15);
    let rollback = rng.chance(1);

    let (_, warehouse) = conn
        .lookup(Idx::WarehousePk, vec![i32v(w_id)])
        .await?
        .ok_or_else(|| missing("warehouse"))?;
    let w_tax = warehouse[cols::W_TAX].as_f64();

    let (d_rid, _) = conn
        .lookup(Idx::DistrictPk, vec![i32v(w_id), i32v(d_id)])
        .await?
        .ok_or_else(|| missing("district"))?;
    // Atomic o_id allocation: the increment is computed under the row
    // latch so concurrent New-Orders never observe the same counter.
    let (_, district) = conn
        .update_rmw(Tbl::District, d_rid, |d| {
            vec![(cols::D_NEXT_O_ID, Value::I32(d[cols::D_NEXT_O_ID].as_i32() + 1))]
        })
        .await?;
    let d_tax = district[cols::D_TAX].as_f64();
    let o_id = district[cols::D_NEXT_O_ID].as_i32() as u32;

    let (_, customer) = conn
        .lookup(Idx::CustomerPk, vec![i32v(w_id), i32v(d_id), i32v(c_id)])
        .await?
        .ok_or_else(|| missing("customer"))?;
    let c_discount = customer[cols::C_DISCOUNT].as_f64();

    let all_local = 1i32; // adjusted below if any remote item
    let entry_d = now_millis();
    let order = vec![
        i32v(o_id),
        i32v(d_id),
        i32v(w_id),
        i32v(c_id),
        Value::I64(entry_d),
        Value::I32(0), // carrier unassigned
        i32v(ol_cnt),
        Value::I32(all_local),
    ];
    conn.insert(Tbl::Order, order).await?;
    conn.insert(Tbl::NewOrder, vec![i32v(o_id), i32v(d_id), i32v(w_id)]).await?;

    // Per-line parameters are drawn up front so the item and stock point
    // lookups — the transaction's hottest data stalls — run as two
    // interleaved batches instead of 2×ol_cnt serial descents.
    struct Line {
        i_id: u32,
        supply_w: u32,
        quantity: i32,
    }
    let mut lines = Vec::with_capacity(ol_cnt as usize);
    for ol_number in 1..=ol_cnt {
        // The 1% rollback: the last item id is invalid (clause 2.4.1.4).
        let i_id = if rollback && ol_number == ol_cnt {
            p.scale.items + 1
        } else {
            rng.item_id(p.scale.items)
        };
        // 1% of lines come from a remote warehouse when there is one.
        let supply_w = if p.warehouses > 1 && rng.chance(1) {
            let mut other = rng.uniform(1, p.warehouses - 1);
            if other >= w_id {
                other += 1;
            }
            other
        } else {
            w_id
        };
        let quantity = rng.uniform(1, 10) as i32;
        lines.push(Line { i_id, supply_w, quantity });
    }

    let items =
        conn.multi_lookup(Idx::ItemPk, lines.iter().map(|l| vec![i32v(l.i_id)]).collect()).await?;
    if items.iter().any(|i| i.is_none()) {
        // Unused item (only the intentional invalid id can miss): the
        // whole transaction rolls back (the 1%).
        return Ok(false);
    }
    let stocks = conn
        .multi_lookup(
            Idx::StockPk,
            lines.iter().map(|l| vec![i32v(l.supply_w), i32v(l.i_id)]).collect(),
        )
        .await?;

    let mut total = 0i64;
    for (line_no, (line, stock_hit)) in lines.iter().zip(stocks).enumerate() {
        let ol_number = line_no as u32 + 1;
        let (i_id, supply_w, quantity) = (line.i_id, line.supply_w, line.quantity);
        let price = items[line_no].as_ref().expect("checked above").1[cols::I_PRICE].as_i64();

        let (s_rid, _) = stock_hit.ok_or_else(|| missing("stock"))?;
        let remote = supply_w != w_id;
        let (_, stock) = conn
            .update_rmw(Tbl::Stock, s_rid, move |stock| {
                let s_qty = stock[cols::S_QUANTITY].as_i32();
                let new_qty =
                    if s_qty >= quantity + 10 { s_qty - quantity } else { s_qty - quantity + 91 };
                let mut delta = vec![
                    (cols::S_QUANTITY, Value::I32(new_qty)),
                    (cols::S_YTD, Value::I32(stock[cols::S_YTD].as_i32() + quantity)),
                    (cols::S_ORDER_CNT, Value::I32(stock[cols::S_ORDER_CNT].as_i32() + 1)),
                ];
                if remote {
                    delta.push((
                        cols::S_REMOTE_CNT,
                        Value::I32(stock[cols::S_REMOTE_CNT].as_i32() + 1),
                    ));
                }
                delta
            })
            .await?;

        let amount = price * quantity as i64;
        total += amount;
        let dist_info = stock[cols::S_DIST_BASE + (d_id as usize - 1)].clone();
        conn.insert(
            Tbl::OrderLine,
            vec![
                i32v(o_id),
                i32v(d_id),
                i32v(w_id),
                i32v(ol_number),
                i32v(i_id),
                i32v(supply_w),
                Value::I64(0), // not delivered yet
                Value::I32(quantity),
                Value::I64(amount),
                dist_info,
            ],
        )
        .await?;
    }
    // Total with taxes/discount — computed to mirror the spec's work.
    let _grand_total = (total as f64) * (1.0 - c_discount) * (1.0 + w_tax + d_tax);
    Ok(true)
}

/// PAYMENT (clause 2.5).
pub async fn payment<C: TpccConn>(
    conn: &mut C,
    rng: &mut TpccRng,
    p: &Params,
    w_id: u32,
) -> Result<()> {
    let d_id = rng.uniform(1, p.scale.districts_per_warehouse);
    let amount = rng.uniform_i64(100, 500_000); // cents
                                                // 15% of payments come from a remote customer (clause 2.5.1.2).
    let (c_w, c_d) = if p.warehouses > 1 && rng.chance(15) {
        let mut other = rng.uniform(1, p.warehouses - 1);
        if other >= w_id {
            other += 1;
        }
        (other, rng.uniform(1, p.scale.districts_per_warehouse))
    } else {
        (w_id, d_id)
    };

    let (w_rid, _) = conn
        .lookup(Idx::WarehousePk, vec![i32v(w_id)])
        .await?
        .ok_or_else(|| missing("warehouse"))?;
    let (_, warehouse) = conn
        .update_rmw(Tbl::Warehouse, w_rid, move |w| {
            vec![(cols::W_YTD, Value::I64(w[cols::W_YTD].as_i64() + amount))]
        })
        .await?;
    let w_name = warehouse[cols::W_NAME].as_str().to_owned();

    let (d_rid, _) = conn
        .lookup(Idx::DistrictPk, vec![i32v(w_id), i32v(d_id)])
        .await?
        .ok_or_else(|| missing("district"))?;
    let (_, district) = conn
        .update_rmw(Tbl::District, d_rid, move |d| {
            vec![(cols::D_YTD, Value::I64(d[cols::D_YTD].as_i64() + amount))]
        })
        .await?;
    let d_name = district[cols::D_NAME].as_str().to_owned();

    // 60% by id, 40% by last name (clause 2.5.1.2).
    let (c_rid, _customer) = if rng.chance(60) {
        let c_id = rng.customer_id(p.scale.customers_per_district);
        conn.lookup(Idx::CustomerPk, vec![i32v(c_w), i32v(c_d), i32v(c_id)])
            .await?
            .ok_or_else(|| missing("customer by id"))?
    } else {
        let last = rng.run_last_name(p.scale.customers_per_district);
        let matches = conn
            .scan(Idx::CustomerByName, vec![i32v(c_w), i32v(c_d), Value::Str(last)], 200)
            .await?;
        if matches.is_empty() {
            // Name domain can be sparse at tiny scales; fall back by id.
            let c_id = rng.customer_id(p.scale.customers_per_district);
            conn.lookup(Idx::CustomerPk, vec![i32v(c_w), i32v(c_d), i32v(c_id)])
                .await?
                .ok_or_else(|| missing("customer fallback"))?
        } else {
            // The spec's midpoint: ceil(n/2), zero-indexed.
            let pos = matches.len().div_ceil(2) - 1;
            matches.into_iter().nth(pos).expect("midpoint exists")
        }
    };

    let (_, customer) = conn
        .update_rmw(Tbl::Customer, c_rid, move |customer| {
            let mut delta = vec![
                (cols::C_BALANCE, Value::I64(customer[cols::C_BALANCE].as_i64() - amount)),
                (cols::C_YTD_PAYMENT, Value::I64(customer[cols::C_YTD_PAYMENT].as_i64() + amount)),
                (cols::C_PAYMENT_CNT, Value::I32(customer[cols::C_PAYMENT_CNT].as_i32() + 1)),
            ];
            // Bad credit: fold payment info into C_DATA (clause 2.5.2.2).
            if customer[cols::C_CREDIT].as_str() == "BC" {
                let c_id = customer[cols::C_ID].as_i32();
                let mut data = format!(
                    "{c_id},{c_d},{c_w},{d_id},{w_id},{amount}|{}",
                    customer[cols::C_DATA].as_str()
                );
                data.truncate(250);
                delta.push((cols::C_DATA, Value::Str(data)));
            }
            delta
        })
        .await?;

    let h_data = format!("{w_name}    {d_name}");
    conn.insert(
        Tbl::History,
        vec![
            customer[cols::C_ID].clone(),
            i32v(c_d),
            i32v(c_w),
            i32v(d_id),
            i32v(w_id),
            Value::I64(now_millis()),
            Value::I64(amount),
            Value::Str(h_data.chars().take(24).collect()),
        ],
    )
    .await?;
    Ok(())
}

/// ORDER-STATUS (clause 2.6). Read-only.
pub async fn order_status<C: TpccConn>(
    conn: &mut C,
    rng: &mut TpccRng,
    p: &Params,
    w_id: u32,
) -> Result<()> {
    let d_id = rng.uniform(1, p.scale.districts_per_warehouse);
    let customer = if rng.chance(60) {
        let c_id = rng.customer_id(p.scale.customers_per_district);
        conn.lookup(Idx::CustomerPk, vec![i32v(w_id), i32v(d_id), i32v(c_id)]).await?
    } else {
        let last = rng.run_last_name(p.scale.customers_per_district);
        let matches = conn
            .scan(Idx::CustomerByName, vec![i32v(w_id), i32v(d_id), Value::Str(last)], 200)
            .await?;
        if matches.is_empty() {
            None
        } else {
            let pos = matches.len().div_ceil(2) - 1;
            matches.into_iter().nth(pos)
        }
    };
    let Some((_, customer)) = customer else {
        return Ok(()); // sparse name domain at tiny scale
    };
    let c_id = customer[cols::C_ID].as_i32() as u32;
    // Latest order of this customer.
    let orders =
        conn.scan(Idx::OrderByCustomer, vec![i32v(w_id), i32v(d_id), i32v(c_id)], 1_000).await?;
    let Some((_, order)) = orders.last() else {
        return Ok(());
    };
    let o_id = order[cols::O_ID].as_i32() as u32;
    let lines = conn.scan(Idx::OrderLinePk, vec![i32v(w_id), i32v(d_id), i32v(o_id)], 20).await?;
    // Reading the line data is the transaction's output.
    let _total: i64 = lines.iter().map(|(_, l)| l[cols::OL_AMOUNT].as_i64()).sum();
    Ok(())
}

/// DELIVERY (clause 2.7): deliver the oldest new order of every district.
/// Returns how many districts had an order to deliver.
pub async fn delivery<C: TpccConn>(
    conn: &mut C,
    rng: &mut TpccRng,
    p: &Params,
    w_id: u32,
) -> Result<u32> {
    let carrier = rng.uniform(1, 10);
    let mut delivered = 0;
    for d_id in 1..=p.scale.districts_per_warehouse {
        let oldest = conn.scan(Idx::NewOrderPk, vec![i32v(w_id), i32v(d_id)], 1).await?;
        let Some((no_rid, no)) = oldest.into_iter().next() else {
            continue; // no pending order for this district
        };
        let o_id = no[cols::NO_O_ID].as_i32() as u32;
        match conn.delete(Tbl::NewOrder, no_rid).await {
            Ok(()) => {}
            // A concurrent Delivery got this order first: skip the
            // district (clause 2.7.4.2 allows skipping).
            Err(PhoebeError::RowNotFound { .. }) => continue,
            Err(e) => return Err(e),
        }

        let (o_rid, order) = conn
            .lookup(Idx::OrderPk, vec![i32v(w_id), i32v(d_id), i32v(o_id)])
            .await?
            .ok_or_else(|| missing("order for delivery"))?;
        let c_id = order[cols::O_C_ID].as_i32() as u32;
        conn.update(Tbl::Order, o_rid, vec![(cols::O_CARRIER_ID, i32v(carrier))]).await?;

        let lines =
            conn.scan(Idx::OrderLinePk, vec![i32v(w_id), i32v(d_id), i32v(o_id)], 20).await?;
        let now = now_millis();
        let mut total = 0i64;
        for (ol_rid, line) in lines {
            total += line[cols::OL_AMOUNT].as_i64();
            conn.update(Tbl::OrderLine, ol_rid, vec![(cols::OL_DELIVERY_D, Value::I64(now))])
                .await?;
        }
        let (c_rid, _) = conn
            .lookup(Idx::CustomerPk, vec![i32v(w_id), i32v(d_id), i32v(c_id)])
            .await?
            .ok_or_else(|| missing("customer for delivery"))?;
        conn.update_rmw(Tbl::Customer, c_rid, move |customer| {
            vec![
                (cols::C_BALANCE, Value::I64(customer[cols::C_BALANCE].as_i64() + total)),
                (cols::C_DELIVERY_CNT, Value::I32(customer[cols::C_DELIVERY_CNT].as_i32() + 1)),
            ]
        })
        .await?;
        delivered += 1;
    }
    Ok(delivered)
}

/// STOCK-LEVEL (clause 2.8). Read-only.
pub async fn stock_level<C: TpccConn>(
    conn: &mut C,
    rng: &mut TpccRng,
    p: &Params,
    w_id: u32,
) -> Result<u32> {
    let d_id = rng.uniform(1, p.scale.districts_per_warehouse);
    let threshold = rng.uniform(10, 20) as i32;
    let (_, district) = conn
        .lookup(Idx::DistrictPk, vec![i32v(w_id), i32v(d_id)])
        .await?
        .ok_or_else(|| missing("district"))?;
    let next_o = district[cols::D_NEXT_O_ID].as_i32() as u32;
    let from = next_o.saturating_sub(20).max(1);
    let mut item_ids = std::collections::HashSet::new();
    for o_id in from..next_o {
        let lines =
            conn.scan(Idx::OrderLinePk, vec![i32v(w_id), i32v(d_id), i32v(o_id)], 20).await?;
        for (_, line) in lines {
            item_ids.insert(line[cols::OL_I_ID].as_i32() as u32);
        }
    }
    // One interleaved batch over the ~200 distinct stock rows — the
    // profile's dominant stall (clause 2.8 joins order-lines to stock).
    let keys: Vec<_> = item_ids.iter().map(|&i| vec![i32v(w_id), i32v(i)]).collect();
    let mut low = 0;
    for (_, stock) in conn.multi_lookup(Idx::StockPk, keys).await?.into_iter().flatten() {
        if stock[cols::S_QUANTITY].as_i32() < threshold {
            low += 1;
        }
    }
    Ok(low)
}
