//! The TPC-C workload substrate (§9).
//!
//! The paper evaluates PhoebeDB with TPC-C implemented as server-side
//! procedures. This crate is that implementation: the nine-table schema
//! ([`schema`]), spec-conformant data generation with NURand ([`gen`]), a
//! loader ([`loader`]), all five transaction profiles ([`txns`]) written
//! once against an engine-generic connection trait ([`conn`]) so they run
//! unchanged on the PhoebeDB kernel *and* on the PostgreSQL-like baseline,
//! and a mixed-workload driver with tpmC metering ([`driver`]).
//!
//! A scale knob shrinks cardinalities (items, customers per district) so
//! the full machinery runs on small machines; the shape of the workload —
//! key skew via NURand, the 45/43/4/4/4 mix, remote warehouse touches —
//! follows the specification at any scale.

pub mod conn;
pub mod driver;
pub mod gen;
pub mod loader;
pub mod schema;
pub mod txns;

pub use conn::{BaselineEngine, PhoebeEngine, TpccConn, TpccEngine};
pub use driver::{run_baseline, run_phoebe, DriverConfig, TpccStats};
pub use gen::{nurand, TpccRng};
pub use loader::load;
pub use schema::{Idx, Tbl, TpccScale};
