//! The mixed-workload driver: terminals submitting the standard TPC-C mix
//! (45% New-Order, 43% Payment, 4% each Order-Status, Delivery,
//! Stock-Level) for a fixed duration, with tpmC/tpm metering (§9).
//!
//! Two execution models mirror the paper's Exp 6:
//! * [`run_phoebe`] — terminals are co-routines on the kernel's worker
//!   pool; with affinity on, each terminal's home warehouse pins it to a
//!   worker (the paper's workload affinity).
//! * [`run_baseline`] — terminals are OS threads, one per terminal
//!   (thread-per-transaction).

use crate::conn::{BaselineEngine, PhoebeEngine, TpccConn, TpccEngine};
use crate::gen::TpccRng;
use crate::schema::TpccScale;
use crate::txns::{self, Params, TxnKind};
use phoebe_common::error::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    pub warehouses: u32,
    pub scale: TpccScale,
    pub duration: Duration,
    /// Concurrent terminals (co-routines or threads).
    pub terminals: usize,
    /// Route each terminal to the worker owning its home warehouse.
    pub affinity: bool,
    pub seed: u64,
}

impl DriverConfig {
    pub fn quick(warehouses: u32) -> Self {
        DriverConfig {
            warehouses,
            scale: TpccScale::mini(),
            duration: Duration::from_secs(2),
            terminals: 8,
            affinity: true,
            seed: 42,
        }
    }
}

#[derive(Default)]
struct Counters {
    committed: AtomicU64,
    new_orders: AtomicU64,
    aborts: AtomicU64,
    user_rollbacks: AtomicU64,
    errors: AtomicU64,
    per_kind: [AtomicU64; 5],
}

/// Workload results.
#[derive(Debug, Clone)]
pub struct TpccStats {
    pub committed: u64,
    pub new_orders: u64,
    pub aborts: u64,
    pub user_rollbacks: u64,
    pub errors: u64,
    pub per_kind: [u64; 5],
    pub elapsed: Duration,
}

impl TpccStats {
    /// Committed New-Order transactions per minute (the headline metric).
    pub fn tpmc(&self) -> f64 {
        self.new_orders as f64 * 60.0 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// All committed transactions per minute.
    pub fn tpm_total(&self) -> f64 {
        self.committed as f64 * 60.0 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn pick_kind(rng: &mut TpccRng) -> TxnKind {
    match rng.uniform(1, 100) {
        1..=45 => TxnKind::NewOrder,
        46..=88 => TxnKind::Payment,
        89..=92 => TxnKind::OrderStatus,
        93..=96 => TxnKind::Delivery,
        _ => TxnKind::StockLevel,
    }
}

fn kind_slot(kind: TxnKind) -> usize {
    match kind {
        TxnKind::NewOrder => 0,
        TxnKind::Payment => 1,
        TxnKind::OrderStatus => 2,
        TxnKind::Delivery => 3,
        TxnKind::StockLevel => 4,
    }
}

/// One terminal: run transactions until the deadline.
async fn terminal_loop<E: TpccEngine>(
    engine: E,
    params: Params,
    home_w: u32,
    seed: u64,
    deadline: Instant,
    counters: Arc<Counters>,
) {
    let mut rng = TpccRng::seeded(seed);
    while Instant::now() < deadline {
        let kind = pick_kind(&mut rng);
        // Retry loop for serialization failures / lock timeouts.
        let mut tries = 0;
        loop {
            tries += 1;
            let mut conn = engine.begin();
            let outcome: Result<bool> = match kind {
                TxnKind::NewOrder => txns::new_order(&mut conn, &mut rng, &params, home_w).await,
                TxnKind::Payment => {
                    txns::payment(&mut conn, &mut rng, &params, home_w).await.map(|_| true)
                }
                TxnKind::OrderStatus => {
                    txns::order_status(&mut conn, &mut rng, &params, home_w).await.map(|_| true)
                }
                TxnKind::Delivery => {
                    txns::delivery(&mut conn, &mut rng, &params, home_w).await.map(|_| true)
                }
                TxnKind::StockLevel => {
                    txns::stock_level(&mut conn, &mut rng, &params, home_w).await.map(|_| true)
                }
            };
            match outcome {
                Ok(true) => match conn.commit().await {
                    Ok(()) => {
                        // ORDERING: pure throughput statistics; `collect`
                        // reads them after every terminal has joined.
                        counters.committed.fetch_add(1, Ordering::Relaxed);
                        counters.per_kind[kind_slot(kind)].fetch_add(1, Ordering::Relaxed);
                        if kind == TxnKind::NewOrder {
                            counters.new_orders.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                    Err(_) => {
                        // ORDERING: statistics, as above.
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                },
                Ok(false) => {
                    // The 1% intentional New-Order rollback.
                    conn.abort();
                    // ORDERING: statistics, as above.
                    counters.user_rollbacks.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e) if e.is_retryable() && tries < 50 => {
                    conn.abort();
                    // ORDERING: statistics, as above.
                    counters.aborts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Err(e) => {
                    if std::env::var_os("TPCC_DEBUG").is_some() {
                        eprintln!("tpcc {kind:?} error: {e}");
                    }
                    conn.abort();
                    // ORDERING: statistics, as above.
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
}

fn collect(counters: &Counters, elapsed: Duration) -> TpccStats {
    // ORDERING: statistics reads; every terminal has joined (or the run
    // deadline passed) before collection, and nothing synchronizes on them.
    TpccStats {
        committed: counters.committed.load(Ordering::Relaxed),
        new_orders: counters.new_orders.load(Ordering::Relaxed),
        aborts: counters.aborts.load(Ordering::Relaxed),
        user_rollbacks: counters.user_rollbacks.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        per_kind: std::array::from_fn(|i| counters.per_kind[i].load(Ordering::Relaxed)),
        elapsed,
    }
}

/// Run the mix on the PhoebeDB kernel: terminals are co-routines.
pub fn run_phoebe(engine: &PhoebeEngine, cfg: &DriverConfig) -> TpccStats {
    let counters = Arc::new(Counters::default());
    let params = Params { warehouses: cfg.warehouses, scale: cfg.scale };
    let rt = engine.db.runtime();
    let workers = engine.db.cfg.workers;
    let deadline = Instant::now() + cfg.duration;
    let start = Instant::now();
    let handles: Vec<_> = (0..cfg.terminals)
        .map(|t| {
            let engine = engine.clone();
            let counters = Arc::clone(&counters);
            let home_w = (t as u32 % cfg.warehouses) + 1;
            let seed = cfg.seed.wrapping_add(t as u64 * 7919);
            let fut = terminal_loop(engine, params, home_w, seed, deadline, counters);
            if cfg.affinity {
                // Workload affinity (§9): the warehouse's home worker.
                rt.spawn_on((home_w as usize - 1) % workers, fut)
            } else {
                rt.spawn(fut)
            }
        })
        .collect();
    for h in handles {
        h.join();
    }
    collect(&counters, start.elapsed())
}

/// Run the mix on the baseline: terminals are OS threads
/// (thread-per-transaction; every wait blocks the thread).
pub fn run_baseline(engine: &BaselineEngine, cfg: &DriverConfig) -> TpccStats {
    let counters = Arc::new(Counters::default());
    let params = Params { warehouses: cfg.warehouses, scale: cfg.scale };
    let deadline = Instant::now() + cfg.duration;
    let start = Instant::now();
    // Autovacuum stand-in: prune dead versions and compress update chains
    // periodically, as PostgreSQL's background vacuum would.
    let vacuum_db = Arc::clone(&engine.db);
    let vacuum_deadline = deadline;
    let vacuum = std::thread::spawn(move || {
        while Instant::now() < vacuum_deadline {
            vacuum_db.vacuum();
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let handles: Vec<_> = (0..cfg.terminals)
        .map(|t| {
            let engine = engine.clone();
            let counters = Arc::clone(&counters);
            let home_w = (t as u32 % cfg.warehouses) + 1;
            let seed = cfg.seed.wrapping_add(t as u64 * 7919);
            std::thread::spawn(move || {
                phoebe_runtime::block_on(terminal_loop(
                    engine, params, home_w, seed, deadline, counters,
                ))
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let _ = vacuum.join();
    collect(&counters, start.elapsed())
}
