//! Exp 1 / Figure 7(a): tpmC as warehouses = workers grow.
//!
//! Paper: 349k / 3,362k / 6,903k / 11,578k / 13,690k tpmC at 1/10/25/50/100
//! warehouses-and-workers. Shape to reproduce: tpmC grows with the
//! warehouse/worker count, sublinearly at the top end.
//!
//! `PHOEBE_EXP1_POINTS=1,4` overrides the measured points (CI smoke).

use phoebe_bench::*;
use phoebe_tpcc::run_phoebe;

fn main() {
    let headers = ["warehouses", "workers", "tpmC", "tpm", "tpm/worker", "aborts"];
    let points = env_points("PHOEBE_EXP1_POINTS", &[1, 2, 4, 8]);
    let mut rows = Vec::new();
    let mut percs = Vec::new();
    let mut last_stats = None;
    for &n in &points {
        let engine = loaded_engine("exp1", n, 32, 4096, n as u32, phoebe_tpcc::TpccScale::mini());
        let cfg = driver_cfg(n as u32, n * 8, true);
        let stats = run_phoebe(&engine, &cfg);
        rows.push(vec![
            n.to_string(),
            n.to_string(),
            f(stats.tpmc()),
            f(stats.tpm_total()),
            f(stats.tpm_total() / n as f64),
            stats.aborts.to_string(),
        ]);
        let snap = engine.db.metrics.snapshot();
        percs.push(
            phoebe_common::Json::obj()
                .with("warehouses", n as u64)
                .with("top_p99", top_p99_sites(&snap, 3))
                .with("latency", latency_json(&snap)),
        );
        last_stats = Some(kernel_stats_json(&engine.db));
        engine.db.shutdown();
    }
    print_table("Exp 1 (Fig 7a): tpmC vs warehouses = workers", &headers, &rows);
    println!("paper shape: tpmC rises with scale (349k -> 13.7M over 1 -> 100 WH on 104 vCPUs)");
    emit_json(
        "exp1_tpmc",
        phoebe_common::Json::obj()
            .with("series", rows_json(&headers, &rows))
            .with("percentiles", phoebe_common::Json::from(percs))
            .with("stats", last_stats.unwrap_or_else(phoebe_common::Json::obj)),
    );
}
