//! Exp 7 / Figure 12: per-component cost breakdown of a TPC-C transaction,
//! with and without workload affinity.
//!
//! Paper (instruction counts): with affinity there is no visible locking
//! cost and effective computation is 60.8%; without affinity locking
//! appears and WAL overhead grows, effective computation 56.5%. We account
//! cycles (scoped timers) instead of instructions — the *shares* are the
//! comparable quantity (see DESIGN.md substitutions).

use phoebe_bench::*;
use phoebe_common::metrics::{Component, COMPONENTS};
use phoebe_tpcc::run_phoebe;

/// Process CPU time (utime + stime) in nanoseconds — the closest cheap
/// proxy for the paper's instruction counts (idle parking excluded).
fn process_cpu_ns() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14/15 (1-based) after the comm field; comm may contain spaces,
    // so skip past the closing paren first.
    let after = stat.rsplit_once(national_paren()).map(|(_, a)| a).unwrap_or("");
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    let hz = 100u64; // CLK_TCK on Linux
    (utime + stime) * (1_000_000_000 / hz)
}

fn national_paren() -> char {
    ')'
}

fn run_one(affinity: bool) -> (Vec<(Component, f64)>, u64, f64, phoebe_common::Json) {
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let workers: usize = env_or("PHOEBE_WORKERS", 2);
    let engine = loaded_engine(
        if affinity { "exp7-aff" } else { "exp7-noaff" },
        workers,
        16,
        4096,
        wh,
        phoebe_tpcc::TpccScale::mini(),
    );
    let before = engine.db.metrics.snapshot();
    let cpu_before = process_cpu_ns();
    let cfg = driver_cfg(wh, workers * 16, affinity);
    let stats = run_phoebe(&engine, &cfg);
    let busy_ns = process_cpu_ns().saturating_sub(cpu_before).max(1);
    let delta = engine.db.metrics.snapshot().delta_since(&before);
    let breakdown = delta.breakdown(busy_ns);
    let ns_per_txn = busy_ns as f64 / stats.committed.max(1) as f64;
    let latency = latency_json(&delta);
    engine.db.shutdown();
    (breakdown, stats.committed, ns_per_txn, latency)
}

fn main() {
    let (with_aff, commits_a, ns_a, lat_a) = run_one(true);
    let (without_aff, commits_n, ns_n, lat_n) = run_one(false);
    let mut rows = Vec::new();
    for (i, &c) in COMPONENTS.iter().enumerate() {
        rows.push(vec![
            c.name().to_string(),
            format!("{:.1}%", with_aff[i].1 * 100.0),
            format!("{:.1}%", without_aff[i].1 * 100.0),
        ]);
    }
    let headers = ["component", "affinity=on", "affinity=off"];
    print_table("Exp 7 (Fig 12): per-transaction cost breakdown", &headers, &rows);
    println!("committed: {commits_a} (affinity) vs {commits_n} (no affinity)");
    println!("cost per txn: {:.0} ns vs {:.0} ns", ns_a, ns_n);
    println!("paper shape: effective computation dominates (60.8% / 56.5%); locking visible only without affinity");
    let shares = |b: &[(Component, f64)]| {
        let mut obj = phoebe_common::Json::obj();
        for (c, share) in b {
            obj = obj.with(c.name(), *share);
        }
        obj
    };
    emit_json(
        "exp7_breakdown",
        phoebe_common::Json::obj()
            .with("series", rows_json(&headers, &rows))
            .with(
                "affinity_on",
                phoebe_common::Json::obj()
                    .with("committed", commits_a)
                    .with("ns_per_txn", ns_a)
                    .with("shares", shares(&with_aff))
                    .with("latency", lat_a),
            )
            .with(
                "affinity_off",
                phoebe_common::Json::obj()
                    .with("committed", commits_n)
                    .with("ns_per_txn", ns_n)
                    .with("shares", shares(&without_aff))
                    .with("latency", lat_n),
            ),
    );
}
