//! Exp 9 (text): comparison against a commercial disk-based RDBMS ("O-DB").
//!
//! Paper: O-DB with five NVMe SSDs and a 260 GB buffer reaches 3.2M tpm
//! and is I/O-bound at ~77% CPU utilization. O-DB is closed source; per
//! DESIGN.md the stand-in is the traditional-architecture baseline with a
//! large buffer but a capped log device — reproducing "plenty of memory,
//! bounded by the I/O path".

use phoebe_baseline::BaselineDb;
use phoebe_bench::*;
use phoebe_runtime::block_on;
use phoebe_tpcc::{load, run_baseline, run_phoebe, BaselineEngine, TpccScale};
use std::sync::atomic::Ordering;

fn main() {
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let workers: usize = env_or("PHOEBE_WORKERS", 2);
    let terminals = workers * 16;
    let scale = TpccScale::mini();
    let mut rows = Vec::new();

    // PhoebeDB reference point.
    let phoebe = loaded_engine("exp9-phoebe", workers, 16, 4096, wh, scale);
    let cfg = driver_cfg(wh, terminals, true);
    let pstats = run_phoebe(&phoebe, &cfg);
    rows.push(vec!["PhoebeDB".into(), f(pstats.tpm_total()), "unthrottled".into()]);
    let phoebe_latency = latency_json(&phoebe.db.metrics.snapshot());
    phoebe.db.shutdown();

    // O-DB stand-in: baseline engine, ample memory, capped log bandwidth.
    let cap_mbs: u64 = env_or("PHOEBE_ODB_CAP_MBS", 2);
    let bdb = BaselineDb::open(&fresh_dir("exp9-odb"), 200).expect("baseline");
    let odb = BaselineEngine::create(bdb);
    block_on(load(&odb, wh, scale, 42)).expect("load odb");
    odb.db.wal.bandwidth_cap.store(cap_mbs * 1_000_000, Ordering::Relaxed);
    let busy = std::time::Instant::now();
    let ostats = run_baseline(&odb, &cfg);
    let wall = busy.elapsed().as_secs_f64();
    // CPU-utilization proxy: committed work rate vs the uncapped baseline.
    let bdb2 = BaselineDb::open(&fresh_dir("exp9-uncapped"), 200).expect("baseline");
    let unc = BaselineEngine::create(bdb2);
    block_on(load(&unc, wh, scale, 42)).expect("load uncapped");
    let ustats = run_baseline(&unc, &cfg);
    let util = 100.0 * ostats.tpm_total() / ustats.tpm_total().max(1e-9);
    rows.push(vec![
        format!("O-DB stand-in (log {cap_mbs} MB/s)"),
        f(ostats.tpm_total()),
        format!("{util:.0}% of uncapped"),
    ]);
    rows.push(vec!["baseline uncapped".into(), f(ustats.tpm_total()), "100%".into()]);

    let headers = ["engine", "tpm", "utilization"];
    print_table("Exp 9: PhoebeDB vs commercial-style disk RDBMS (O-DB stand-in)", &headers, &rows);
    println!("elapsed (capped run): {wall:.1}s");
    println!("paper shape: O-DB I/O-bound below full CPU utilization (~77%), well under PhoebeDB");
    emit_json(
        "exp9_odb",
        phoebe_common::Json::obj()
            .with("log_cap_mbs", cap_mbs)
            .with("capped_utilization_pct", util)
            .with("series", rows_json(&headers, &rows))
            .with("percentiles", phoebe_latency),
    );
}
