//! Exp 2 / Figure 8: scalability with the worker count.
//!
//! Paper: near-linear scaling up to the 52 physical cores, degraded
//! per-worker efficiency beyond (hyperthreads), total still rising. On
//! this container the "physical core" budget is what the OS reports; the
//! shape to observe is tpm rising and tpm/worker falling past the core
//! count.

use phoebe_bench::*;
use phoebe_tpcc::run_phoebe;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_workers: usize = env_or("PHOEBE_MAX_WORKERS", (cores * 4).max(4));
    let mut workers = 1usize;
    let mut points = Vec::new();
    while workers <= max_workers {
        points.push(workers);
        workers *= 2;
    }
    let wh = env_or("PHOEBE_WAREHOUSES", 4u32);
    let headers = ["workers", "tpm", "tpm/worker", "efficiency"];
    let mut rows = Vec::new();
    let mut percs = Vec::new();
    let mut base_per_worker = None;
    for &n in &points {
        let engine = loaded_engine("exp2", n, 32, 4096, wh, phoebe_tpcc::TpccScale::mini());
        let cfg = driver_cfg(wh, n * 8, false);
        let stats = run_phoebe(&engine, &cfg);
        let per_worker = stats.tpm_total() / n as f64;
        // Per-worker efficiency vs the first measured point (1.0 = perfect
        // scaling, the paper's Figure 8 framing).
        let base = *base_per_worker.get_or_insert(per_worker);
        let efficiency = if base > 0.0 { per_worker / base } else { 0.0 };
        rows.push(vec![
            n.to_string(),
            f(stats.tpm_total()),
            f(per_worker),
            format!("{efficiency:.3}"),
        ]);
        let snap = engine.db.metrics.snapshot();
        percs.push(
            phoebe_common::Json::obj()
                .with("workers", n as u64)
                .with("top_p99", top_p99_sites(&snap, 3))
                .with("latency", latency_json(&snap)),
        );
        engine.db.shutdown();
    }
    print_table(
        &format!("Exp 2 (Fig 8): scalability, {wh} warehouses, {cores} cores on this host"),
        &headers,
        &rows,
    );
    println!("paper shape: near-linear to physical cores, per-worker efficiency drops beyond");
    emit_json(
        "exp2_scalability",
        phoebe_common::Json::obj()
            .with("warehouses", wh as u64)
            .with("series", rows_json(&headers, &rows))
            .with("percentiles", phoebe_common::Json::from(percs)),
    );
}
