//! Exp 2 / Figure 8: scalability with the worker count.
//!
//! Paper: near-linear scaling up to the 52 physical cores, degraded
//! per-worker efficiency beyond (hyperthreads), total still rising. On
//! this container the "physical core" budget is what the OS reports; the
//! shape to observe is tpm rising and tpm/worker falling past the core
//! count.

use phoebe_bench::*;
use phoebe_tpcc::run_phoebe;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_workers: usize = env_or("PHOEBE_MAX_WORKERS", (cores * 4).max(4));
    let mut workers = 1usize;
    let mut points = Vec::new();
    while workers <= max_workers {
        points.push(workers);
        workers *= 2;
    }
    let wh = env_or("PHOEBE_WAREHOUSES", 4u32);
    let headers = ["workers", "tpm", "tpm/worker"];
    let mut rows = Vec::new();
    let mut percs = Vec::new();
    for &n in &points {
        let engine = loaded_engine("exp2", n, 32, 4096, wh, phoebe_tpcc::TpccScale::mini());
        let cfg = driver_cfg(wh, n * 8, false);
        let stats = run_phoebe(&engine, &cfg);
        rows.push(vec![n.to_string(), f(stats.tpm_total()), f(stats.tpm_total() / n as f64)]);
        percs.push(
            phoebe_common::Json::obj()
                .with("workers", n as u64)
                .with("latency", latency_json(&engine.db.metrics.snapshot())),
        );
        engine.db.shutdown();
    }
    print_table(
        &format!("Exp 2 (Fig 8): scalability, {wh} warehouses, {cores} cores on this host"),
        &headers,
        &rows,
    );
    println!("paper shape: near-linear to physical cores, per-worker efficiency drops beyond");
    emit_json(
        "exp2_scalability",
        phoebe_common::Json::obj()
            .with("warehouses", wh as u64)
            .with("series", rows_json(&headers, &rows))
            .with("percentiles", phoebe_common::Json::from(percs)),
    );
}
