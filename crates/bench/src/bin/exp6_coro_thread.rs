//! Exp 6 / Figure 11: co-routine model vs thread model at equal
//! concurrency, plus the interleaved-batch microbenchmark the model
//! exists for.
//!
//! Paper: 100 workers x 32 task slots (co-routines) vs 3200 worker threads
//! x 1 slot, affinity off; the co-routine model wins clearly. Here the
//! same two shapes at container scale: W workers x S slots vs W*S workers
//! x 1 slot — now reported with per-worker tpm and the top-3 p99 sites,
//! like Exp 1/2.
//!
//! Part (b) isolates the mechanism: N point reads issued as one
//! interleaved `multi_get` batch (descents round-robin, prefetch the next
//! node, suspend on buffer misses) vs the same N keys read sequentially.
//! Knobs: `PHOEBE_BATCH_ROWS`, `PHOEBE_BATCH_DEPTH`, `PHOEBE_BATCH_PASSES`.

use phoebe_bench::*;
use phoebe_common::metrics::Counter;
use phoebe_common::Json;
use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use phoebe_tpcc::run_phoebe;
use std::sync::Arc;

fn main() {
    // Dev loop: skip the model-comparison half and run only part (b).
    if env_or("PHOEBE_BATCH_ONLY", 0u32) != 0 {
        let batch = batched_vs_sequential();
        emit_json("exp6_coro_thread", Json::obj().with("batch", batch));
        return;
    }
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let workers: usize = env_or("PHOEBE_WORKERS", 2);
    let slots: usize = env_or("PHOEBE_SLOTS", 32);
    let concurrency = workers * slots;
    let headers = ["model", "workers x slots", "tpm", "tpm/worker", "tpmC", "aborts"];
    let mut rows = Vec::new();
    let mut percs = Vec::new();

    // Co-routine model: few workers, many task slots.
    let engine =
        loaded_engine("exp6-coro", workers, slots, 4096, wh, phoebe_tpcc::TpccScale::mini());
    let mut cfg = driver_cfg(wh, concurrency, false);
    cfg.affinity = false;
    let coro = run_phoebe(&engine, &cfg);
    rows.push(vec![
        "co-routine".into(),
        format!("{workers} x {slots}"),
        f(coro.tpm_total()),
        f(coro.tpm_total() / workers as f64),
        f(coro.tpmc()),
        coro.aborts.to_string(),
    ]);
    let snap = engine.db.metrics.snapshot();
    percs.push(
        Json::obj()
            .with("model", "co-routine")
            .with("top_p99", top_p99_sites(&snap, 3))
            .with("latency", latency_json(&snap)),
    );
    engine.db.shutdown();

    // Thread model: one OS thread (worker) per task, 1 slot each.
    let engine =
        loaded_engine("exp6-thread", concurrency, 1, 4096, wh, phoebe_tpcc::TpccScale::mini());
    let mut cfg = driver_cfg(wh, concurrency, false);
    cfg.affinity = false;
    let thread = run_phoebe(&engine, &cfg);
    rows.push(vec![
        "thread".into(),
        format!("{concurrency} x 1"),
        f(thread.tpm_total()),
        f(thread.tpm_total() / concurrency as f64),
        f(thread.tpmc()),
        thread.aborts.to_string(),
    ]);
    let snap = engine.db.metrics.snapshot();
    percs.push(
        Json::obj()
            .with("model", "thread")
            .with("top_p99", top_p99_sites(&snap, 3))
            .with("latency", latency_json(&snap)),
    );
    engine.db.shutdown();

    print_table(
        &format!("Exp 6 (Fig 11): co-routine vs thread model, concurrency {concurrency}"),
        &headers,
        &rows,
    );
    println!(
        "co-routine / thread tpm ratio: {:.2}x (paper: co-routines clearly ahead)",
        coro.tpm_total() / thread.tpm_total().max(1e-9)
    );

    let batch = batched_vs_sequential();

    emit_json(
        "exp6_coro_thread",
        Json::obj()
            .with("concurrency", concurrency as u64)
            .with("series", rows_json(&headers, &rows))
            .with("percentiles", Json::from(percs))
            .with("batch", batch),
    );
}

/// Part (b): the same random point-read stream, sequential vs batched.
/// Returns the JSON summary (and prints the human table + ratio line).
fn batched_vs_sequential() -> Json {
    let n_rows: i64 = env_or("PHOEBE_BATCH_ROWS", 2_000_000);
    let depth: usize = env_or("PHOEBE_BATCH_DEPTH", 16);
    let passes: usize = env_or("PHOEBE_BATCH_PASSES", 1);
    let tasks: usize = env_or("PHOEBE_BATCH_TASKS", 8);
    // Default regime: the whole tree stays hot (pool > data set) but is
    // far bigger than the CPU cache, so every descent stalls on DRAM —
    // the stall prefetch-and-switch is built to hide (CoroBase's headline
    // case). The pool is sized ~2.5x the data set because the free-frame
    // watermark is per partition and single-threaded seeding lands the
    // whole tree in one worker's partition: at a tight fit that partition
    // sits below its watermark and the page-swap duty churns hot pages
    // forever. Drop `PHOEBE_BATCH_FRAMES` below the page count for the
    // other regime, a thrashing pool where descents suspend on faults;
    // note that on a tmpfs page file a fault costs about as much as the
    // descent itself, so there is little for interleaving to win there.
    let frames: usize = env_or("PHOEBE_BATCH_FRAMES", 8192);

    let db = open_phoebe("exp6-batch", 2, 8, frames);
    let t = db
        .create_table("kv", Schema::new(vec![("k", ColType::I64), ("v", ColType::I64)]))
        .expect("create table");
    let rows: Vec<_> = block_on(async {
        let mut rows = Vec::with_capacity(n_rows as usize);
        for chunk_lo in (0..n_rows).step_by(500) {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            for k in chunk_lo..n_rows.min(chunk_lo + 500) {
                rows.push(tx.insert(&t, vec![Value::I64(k), Value::I64(k * 10)]).await.unwrap());
            }
            tx.commit().await.unwrap();
        }
        rows
    });
    // Fixed pseudo-random permutation — identical key stream for both
    // modes, striding far beyond any single leaf.
    let keys: Arc<Vec<_>> =
        Arc::new((0..n_rows).map(|i| rows[((i * 2_654_435_761) % n_rows) as usize]).collect());

    // Both modes run as co-routine tasks on the kernel runtime (the shape
    // every real client has): yields actually schedule sibling work and
    // the workers' page-swap duty runs. Transient pressure errors
    // (eviction lagging a fault burst) retry like any TPC-C terminal.
    let run = |batched: bool| -> (f64, u64) {
        let rt = db.runtime();
        let shard = keys.len().div_ceil(tasks);
        let start = std::time::Instant::now();
        let handles: Vec<_> = keys
            .chunks(shard)
            .map(|shard| (shard.to_vec(), db.clone(), t.clone()))
            .map(|(shard, db, t)| {
                rt.spawn(async move {
                    let mut retries = 0u64;
                    for _ in 0..passes {
                        let mut tx = db.begin(IsolationLevel::ReadCommitted);
                        for chunk in shard.chunks(depth) {
                            loop {
                                let res = if batched {
                                    tx.multi_get(&t, chunk)
                                        .await
                                        .map(|got| got.iter().all(Option::is_some))
                                } else {
                                    let mut all = Ok(true);
                                    for &row in chunk {
                                        match tx.read(&t, row) {
                                            Ok(got) => {
                                                if got.is_none() {
                                                    all = Ok(false);
                                                    break;
                                                }
                                            }
                                            Err(e) => {
                                                all = Err(e);
                                                break;
                                            }
                                        }
                                    }
                                    all
                                };
                                match res {
                                    Ok(all) => {
                                        assert!(all, "seeded rows must be visible");
                                        break;
                                    }
                                    Err(e) if e.is_retryable() || retries < 10_000 => {
                                        retries += 1;
                                        phoebe_runtime::yield_now(phoebe_runtime::Urgency::Low)
                                            .await;
                                    }
                                    Err(e) => panic!("exp6b read failed: {e}"),
                                }
                            }
                        }
                        tx.commit().await.unwrap();
                    }
                    retries
                })
            })
            .collect();
        let retries: u64 = handles.into_iter().map(|h| h.join()).sum();
        ((passes * keys.len()) as f64 / start.elapsed().as_secs_f64(), retries)
    };

    // The two modes alternate across trials — and alternate which goes
    // *first* within a trial — so both a noisy-neighbor burst and a slow
    // host-wide drift (frequency ramp, cgroup throttle) hit both sides
    // evenly instead of deciding the ratio; the table reports the median
    // of each side. (Warm-up is free in the default all-hot regime —
    // seeding faulted every page in; in the small-pool regime both
    // sweeps evict the pool, so order is moot.)
    let trials: usize = env_or("PHOEBE_BATCH_TRIALS", 3);
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (mut seq_runs, mut batch_runs) = (Vec::new(), Vec::new());
    let (mut seq_retries, mut batch_retries) = (0u64, 0u64);
    for trial in 0..trials {
        for batched in [trial % 2 != 0, trial % 2 == 0] {
            let (rps, retries) = run(batched);
            if batched {
                batch_runs.push(rps);
                batch_retries += retries;
            } else {
                seq_runs.push(rps);
                seq_retries += retries;
            }
        }
    }
    let (seq_rps, batch_rps) = (median(seq_runs), median(batch_runs));
    let ratio = batch_rps / seq_rps.max(1e-9);

    let snap = db.metrics.snapshot();
    let (prefetches, suspends, batches, batch_keys) = (
        snap.counter(Counter::PrefetchesIssued),
        snap.counter(Counter::FaultSuspends),
        snap.counter(Counter::BatchGets),
        snap.counter(Counter::BatchKeys),
    );
    let stats = kernel_stats_json(&db);
    db.shutdown();

    let headers = ["mode", "reads/s", "batch depth", "retries"];
    let rows = vec![
        vec!["sequential".into(), f(seq_rps), "1".into(), seq_retries.to_string()],
        vec!["interleaved".into(), f(batch_rps), depth.to_string(), batch_retries.to_string()],
    ];
    print_table(
        &format!("Exp 6b: batched point reads, {n_rows} rows / {frames} frames"),
        &headers,
        &rows,
    );
    println!(
        "interleaved / sequential ratio: {ratio:.2}x, median of {trials} \
         (prefetches {prefetches}, fault suspends {suspends}, \
         avg batch depth {:.1})",
        batch_keys as f64 / batches.max(1) as f64
    );

    Json::obj()
        .with("rows", n_rows as u64)
        .with("depth", depth as u64)
        .with("frames", frames as u64)
        .with("tasks", tasks as u64)
        .with("trials", trials as u64)
        .with("sequential_rps", seq_rps)
        .with("interleaved_rps", batch_rps)
        .with("ratio", ratio)
        .with("prefetches_issued", prefetches)
        .with("fault_suspends", suspends)
        .with("stats", stats)
}
