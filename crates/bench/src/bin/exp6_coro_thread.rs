//! Exp 6 / Figure 11: co-routine model vs thread model at equal
//! concurrency.
//!
//! Paper: 100 workers x 32 task slots (co-routines) vs 3200 worker threads
//! x 1 slot, affinity off; the co-routine model wins clearly. Here the
//! same two shapes at container scale: W workers x S slots vs W*S workers
//! x 1 slot.

use phoebe_bench::*;
use phoebe_tpcc::run_phoebe;

fn main() {
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let workers: usize = env_or("PHOEBE_WORKERS", 2);
    let slots: usize = env_or("PHOEBE_SLOTS", 32);
    let concurrency = workers * slots;
    let mut rows = Vec::new();

    // Co-routine model: few workers, many task slots.
    let engine =
        loaded_engine("exp6-coro", workers, slots, 4096, wh, phoebe_tpcc::TpccScale::mini());
    let mut cfg = driver_cfg(wh, concurrency, false);
    cfg.affinity = false;
    let coro = run_phoebe(&engine, &cfg);
    rows.push(vec![
        "co-routine".into(),
        format!("{workers} x {slots}"),
        f(coro.tpm_total()),
        f(coro.tpmc()),
    ]);
    let coro_latency = latency_json(&engine.db.metrics.snapshot());
    engine.db.shutdown();

    // Thread model: one OS thread (worker) per task, 1 slot each.
    let engine =
        loaded_engine("exp6-thread", concurrency, 1, 4096, wh, phoebe_tpcc::TpccScale::mini());
    let mut cfg = driver_cfg(wh, concurrency, false);
    cfg.affinity = false;
    let thread = run_phoebe(&engine, &cfg);
    rows.push(vec![
        "thread".into(),
        format!("{concurrency} x 1"),
        f(thread.tpm_total()),
        f(thread.tpmc()),
    ]);
    let thread_latency = latency_json(&engine.db.metrics.snapshot());
    engine.db.shutdown();

    let headers = ["model", "workers x slots", "tpm", "tpmC"];
    print_table(
        &format!("Exp 6 (Fig 11): co-routine vs thread model, concurrency {concurrency}"),
        &headers,
        &rows,
    );
    println!(
        "co-routine / thread tpm ratio: {:.2}x (paper: co-routines clearly ahead)",
        coro.tpm_total() / thread.tpm_total().max(1e-9)
    );
    emit_json(
        "exp6_coro_thread",
        phoebe_common::Json::obj()
            .with("concurrency", concurrency as u64)
            .with("series", rows_json(&headers, &rows))
            .with(
                "percentiles",
                phoebe_common::Json::obj()
                    .with("co-routine", coro_latency)
                    .with("thread", thread_latency),
            ),
    );
}
