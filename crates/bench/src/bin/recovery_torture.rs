//! Crash-consistency torture harness: seeded fault injection against the
//! whole kernel, end-to-end WAL recovery, oracle invariants.
//!
//! Each seed runs one round:
//!
//! 1. Open a kernel whose entire persistence layer (per-slot WAL writers
//!    *and* the Data Page File) runs on a seeded `SimFs` torture disk.
//! 2. Load a bank: `accounts` rows with a fixed starting balance, plus a
//!    `ledger` table that records one row per transfer — the oracle's
//!    ground truth for exactly which transfers committed.
//! 3. Arm a crash at a random write count and hammer the kernel with
//!    concurrent transfer transactions (each moves money between two
//!    accounts and appends its ledger row; some deliberately abort).
//!    When the simulated disk dies, pending unsynced writes are dropped
//!    or torn and every later I/O fails; committers surface `WalHalted`.
//! 4. Reopen the same directory with `Database::open` — recovery is
//!    automatic — and check the oracle invariants:
//!      * every transfer whose commit was acknowledged is in the ledger
//!        (acked durability);
//!      * the ledger holds only attempted, never-aborted transfers
//!        (no resurrection, no fabrication);
//!      * every account balance equals the initial balance plus exactly
//!        the recovered ledger's effects (per-transaction atomicity);
//!      * the total balance is conserved;
//!      * no recovered record carries a GSN past the last GSN the crashed
//!        kernel issued.
//!
//! Usage: `recovery_torture [--seeds N] [--start S] [--seed S]`
//! Failures print the offending seed and exit non-zero.

use phoebe_common::fault::FaultConfig;
use phoebe_common::ids::RowId;
use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const ACCOUNTS: u64 = 32;
const INITIAL_BALANCE: i64 = 1_000;
const WORKER_THREADS: u64 = 3;

fn accounts_schema() -> Schema {
    Schema::new(vec![("id", ColType::I64), ("balance", ColType::I64)])
}

fn ledger_schema() -> Schema {
    Schema::new(vec![
        ("op", ColType::I64),
        ("src", ColType::I64),
        ("dst", ColType::I64),
        ("amt", ColType::I64),
    ])
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Transfer {
    src: u64,
    dst: u64,
    amt: i64,
}

/// Everything the workload observed before the crash — the oracle's side
/// of the story.
#[derive(Default)]
struct Oracle {
    /// op id -> transfer, for every commit *attempt* (acked or not).
    attempted: Mutex<HashMap<i64, Transfer>>,
    /// Ops whose `commit()` returned Ok: these MUST survive.
    acked: Mutex<HashMap<i64, Transfer>>,
    /// Ops deliberately rolled back: these must NEVER resurrect.
    aborted: Mutex<HashSet<i64>>,
}

fn run_seed(seed: u64) -> Result<String> {
    let dir = std::env::temp_dir().join(format!("phoebe-torture-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = KernelConfig::builder()
        .workers(2)
        .slots_per_worker(4)
        .buffer_frames(512)
        .data_dir(&dir)
        .wal_group_commit_us(50)
        .fault(FaultConfig::crash_only(seed))
        .build()?;

    // ---- Phase 1: setup + tortured workload ----------------------------
    let db = Database::open(cfg)?;
    let accounts = db.create_table("accounts", accounts_schema())?;
    let ledger = db.create_table("ledger", ledger_schema())?;
    {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        for a in 1..=ACCOUNTS {
            block_on(tx.insert(&accounts, row![a as i64, INITIAL_BALANCE]))?;
        }
        block_on(tx.commit())?;
    }

    let sim = Arc::clone(db.fault_sim().expect("opened with fault injection"));
    let mut seed_rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Let the workload get going, then kill the disk mid-flight.
    sim.arm_crash_after_writes(seed_rng.random_range(20..400u64));

    let oracle = Arc::new(Oracle::default());
    let next_op = Arc::new(AtomicU64::new(1));
    let workers: Vec<_> = (0..WORKER_THREADS)
        .map(|w| {
            let db = Arc::clone(&db);
            let accounts = Arc::clone(&accounts);
            let ledger = Arc::clone(&ledger);
            let oracle = Arc::clone(&oracle);
            let next_op = Arc::clone(&next_op);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w + 1).wrapping_mul(0xA24B_AED4));
                loop {
                    let op_id = next_op.fetch_add(1, Ordering::Relaxed) as i64;
                    if op_id > 100_000 {
                        return; // safety net; the crash should hit long before
                    }
                    let src = rng.random_range(1..=ACCOUNTS);
                    let mut dst = rng.random_range(1..=ACCOUNTS);
                    while dst == src {
                        dst = rng.random_range(1..=ACCOUNTS);
                    }
                    let amt = rng.random_range(1..=50i64);
                    let abort_this = rng.random_bool(0.1);
                    let outcome: Result<bool> = (|| {
                        let mut tx = db.begin(IsolationLevel::ReadCommitted);
                        block_on(tx.update_rmw(&accounts, RowId(src), &|cur| {
                            vec![(1, Value::I64(cur[1].as_i64() - amt))]
                        }))?;
                        block_on(tx.update_rmw(&accounts, RowId(dst), &|cur| {
                            vec![(1, Value::I64(cur[1].as_i64() + amt))]
                        }))?;
                        block_on(tx.insert(&ledger, row![op_id, src as i64, dst as i64, amt]))?;
                        if abort_this {
                            tx.abort();
                            return Ok(false);
                        }
                        oracle.attempted.lock().unwrap().insert(op_id, Transfer { src, dst, amt });
                        block_on(tx.commit())?;
                        Ok(true)
                    })();
                    match outcome {
                        Ok(true) => {
                            oracle.acked.lock().unwrap().insert(op_id, Transfer { src, dst, amt });
                        }
                        Ok(false) => {
                            oracle.aborted.lock().unwrap().insert(op_id);
                        }
                        Err(e) if e.is_retryable() => continue,
                        // WalHalted / Io: the disk is dead; stop working.
                        Err(_) => return,
                    }
                }
            })
        })
        .collect();

    // If the workload was too light to reach the armed write count, pull
    // the plug manually so every seed terminates.
    let t0 = Instant::now();
    while !sim.crashed() && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    if !sim.crashed() {
        sim.crash();
    }
    for w in workers {
        let _ = w.join();
    }
    let gsn_at_crash = db.wal.current_gsn();
    db.shutdown();
    drop(db);

    // Keep a post-mortem copy of the crash image: recovery consumes the
    // original (re-log + delete), so on failure this is the only evidence.
    let image = dir.with_extension("crashimage");
    let _ = std::fs::remove_dir_all(&image);
    copy_dir(&dir, &image)?;

    // ---- Phase 2: reopen (automatic recovery) + oracle checks ----------
    let cfg2 = KernelConfig::builder()
        .workers(2)
        .slots_per_worker(4)
        .buffer_frames(512)
        .data_dir(&dir)
        .trace(TraceConfig { path: None, ring_capacity: 4096 })
        .build()?;
    let db = Database::open(cfg2)?;
    let info = db.recovery_info();
    let fail = |msg: String| Err(PhoebeError::Internal(format!("seed {seed}: {msg}")));

    // Oracle checks run in a closure so a failed invariant can dump the
    // flight recorder before the kernel (and its rings) go away.
    let verdict = (|| -> Result<String> {
        if info.max_gsn > gsn_at_crash {
            return fail(format!(
                "recovered gsn {} exceeds last issued gsn {gsn_at_crash}",
                info.max_gsn
            ));
        }

        let accounts = db.table("accounts")?;
        let ledger = db.table("ledger")?;
        let mut tx = db.begin(IsolationLevel::ReadCommitted);

        // The recovered ledger = the committed transfer set S.
        let mut recovered: HashMap<i64, Transfer> = HashMap::new();
        for rid in 1..ledger.row_id_high_water() {
            if let Some(row) = tx.read(&ledger, RowId(rid))? {
                recovered.insert(
                    row.i64("op"),
                    Transfer {
                        src: row.i64("src") as u64,
                        dst: row.i64("dst") as u64,
                        amt: row.i64("amt"),
                    },
                );
            }
        }

        let attempted = oracle.attempted.lock().unwrap();
        let acked = oracle.acked.lock().unwrap();
        let aborted = oracle.aborted.lock().unwrap();

        // Acked durability: every acknowledged commit survived.
        for (op, t) in acked.iter() {
            match recovered.get(op) {
                Some(r) if r == t => {}
                Some(r) => {
                    return fail(format!("acked op {op} recovered corrupted: {r:?} != {t:?}"))
                }
                None => return fail(format!("acked op {op} lost by recovery")),
            }
        }
        // No fabrication, no resurrection.
        for (op, t) in recovered.iter() {
            if aborted.contains(op) {
                return fail(format!("aborted op {op} resurrected by recovery"));
            }
            match attempted.get(op) {
                Some(a) if a == t => {}
                _ => return fail(format!("recovered op {op} was never attempted as {t:?}")),
            }
        }
        // Atomicity: balances equal the initial state plus exactly S's effects.
        let mut expected: HashMap<u64, i64> =
            (1..=ACCOUNTS).map(|a| (a, INITIAL_BALANCE)).collect();
        for t in recovered.values() {
            *expected.get_mut(&t.src).unwrap() -= t.amt;
            *expected.get_mut(&t.dst).unwrap() += t.amt;
        }
        let mut total = 0i64;
        for a in 1..=ACCOUNTS {
            let row = tx.read(&accounts, RowId(a))?.ok_or_else(|| {
                PhoebeError::internal(format!("seed {seed}: account {a} missing"))
            })?;
            let bal = row.i64("balance");
            total += bal;
            if bal != expected[&a] {
                return fail(format!(
                    "account {a} balance {bal} != expected {} (atomicity torn)",
                    expected[&a]
                ));
            }
        }
        if total != ACCOUNTS as i64 * INITIAL_BALANCE {
            return fail(format!("total balance {total} not conserved"));
        }
        block_on(tx.commit())?;
        Ok(format!(
            "acked={} committed={} aborted={} recovered_txns={}",
            acked.len(),
            recovered.len(),
            aborted.len(),
            info.txns
        ))
    })();

    match verdict {
        Ok(summary) => {
            db.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
            let _ = std::fs::remove_dir_all(&image);
            Ok(summary)
        }
        Err(e) => {
            // Post-mortem evidence: the crash image stays on disk, and the
            // recovery run's flight-recorder trace lands next to it for
            // Perfetto inspection.
            let trace = dir.with_extension("trace.json");
            match db.write_trace(&trace) {
                Ok(()) => {
                    eprintln!("seed {seed}: flight recorder dumped to {}", trace.display())
                }
                Err(we) => eprintln!("seed {seed}: trace dump failed: {we}"),
            }
            db.shutdown();
            Err(e)
        }
    }
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) -> Result<()> {
    std::fs::create_dir_all(to)?;
    for e in std::fs::read_dir(from)? {
        let e = e?;
        let dst = to.join(e.file_name());
        if e.file_type()?.is_dir() {
            copy_dir(&e.path(), &dst)?;
        } else {
            std::fs::copy(e.path(), &dst)?;
        }
    }
    Ok(())
}

/// Post-mortem: decode a saved crash image's WAL and print every committed
/// transaction's ledger inserts.
fn dump(dir: &std::path::Path) -> Result<()> {
    let wal_dir = if dir.join("wal").is_dir() { dir.join("wal") } else { dir.to_path_buf() };
    let txns = phoebe_wal::recover_dir(&wal_dir)?;
    println!("{} committed transactions in {}", txns.len(), wal_dir.display());
    for t in &txns {
        let ops: Vec<String> = t
            .ops
            .iter()
            .map(|op| match op {
                phoebe_wal::RecordBody::Insert { table, row, tuple } => {
                    format!("ins {table:?}/{row:?} {tuple:?}")
                }
                phoebe_wal::RecordBody::Update { table, row, .. } => {
                    format!("upd {table:?}/{row:?}")
                }
                phoebe_wal::RecordBody::Delete { table, row } => format!("del {table:?}/{row:?}"),
                other => format!("{other:?}"),
            })
            .collect();
        println!("  xid {:?} cts {} max_gsn {}: {}", t.xid, t.cts, t.max_gsn, ops.join("; "));
    }
    Ok(())
}

fn main() {
    let mut seeds: Vec<u64> = Vec::new();
    let mut start = 1u64;
    let mut count = 50u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| {
                eprintln!("usage: recovery_torture [--seeds N] [--start S] [--seed S]");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--dump" => {
                let path = std::path::PathBuf::from(args.get(i + 1).expect("--dump <dir>"));
                if let Err(e) = dump(&path) {
                    eprintln!("dump failed: {e}");
                    std::process::exit(1);
                }
                return;
            }
            "--seed" => {
                seeds.push(need(i));
                i += 2;
            }
            "--seeds" => {
                count = need(i);
                i += 2;
            }
            "--start" => {
                start = need(i);
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: recovery_torture [--seeds N] [--start S] [--seed S]");
                std::process::exit(2);
            }
        }
    }
    if seeds.is_empty() {
        seeds = (start..start + count).collect();
    }

    let mut failures = 0u64;
    let total = seeds.len();
    for seed in seeds {
        match run_seed(seed) {
            Ok(stats) => println!("seed {seed}: OK  {stats}"),
            Err(e) => {
                println!("seed {seed}: FAILED — {e}");
                println!("reproduce with: recovery_torture --seed {seed}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("recovery torture: {failures}/{total} seeds FAILED");
        std::process::exit(1);
    }
    println!("recovery torture: {total}/{total} seeds passed");
}
