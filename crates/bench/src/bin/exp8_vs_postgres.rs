//! Exp 8 / Figure 9 + text: PhoebeDB vs the PostgreSQL-like baseline.
//!
//! Paper: 30M tpm vs 1.1M tpm (27x) under identical settings, plus 2.5x /
//! 5.6x fewer CPU cycles for Payment / NewOrder. Here: same workload, same
//! transaction code, both engines; plus per-transaction latency (the cycle
//! proxy) measured on a dedicated sequential loop.

use phoebe_baseline::BaselineDb;
use phoebe_bench::*;
use phoebe_runtime::block_on;
use phoebe_tpcc::gen::TpccRng;
use phoebe_tpcc::txns::{self, Params};
use phoebe_tpcc::{
    load, run_baseline, run_phoebe, BaselineEngine, TpccConn, TpccEngine, TpccScale,
};
use std::time::Instant;

fn latency_us<E: TpccEngine>(engine: &E, params: &Params, payment: bool, iters: u32) -> f64 {
    let mut rng = TpccRng::seeded(7);
    let start = Instant::now();
    let mut done = 0u32;
    block_on(async {
        for _ in 0..iters {
            let mut conn = engine.begin();
            let ok = if payment {
                txns::payment(&mut conn, &mut rng, params, 1).await.map(|_| true)
            } else {
                txns::new_order(&mut conn, &mut rng, params, 1).await
            };
            match ok {
                Ok(true) => {
                    let _ = conn.commit().await;
                    done += 1;
                }
                _ => conn.abort(),
            }
        }
    });
    start.elapsed().as_micros() as f64 / done.max(1) as f64
}

fn main() {
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let workers: usize = env_or("PHOEBE_WORKERS", 2);
    let terminals = workers * 16;
    let scale = TpccScale::mini();
    let params = Params { warehouses: wh, scale };

    let phoebe = loaded_engine("exp8-phoebe", workers, 16, 4096, wh, scale);
    let cfg = driver_cfg(wh, terminals, true);
    let pstats = run_phoebe(&phoebe, &cfg);
    let p_no = latency_us(&phoebe, &params, false, 300);
    let p_pay = latency_us(&phoebe, &params, true, 300);

    let bdb = BaselineDb::open(&fresh_dir("exp8-baseline"), 200).expect("baseline");
    let baseline = BaselineEngine::create(bdb);
    block_on(load(&baseline, wh, scale, 42)).expect("load baseline");
    let bstats = run_baseline(&baseline, &cfg);
    let b_no = latency_us(&baseline, &params, false, 300);
    let b_pay = latency_us(&baseline, &params, true, 300);

    let headers = ["engine", "tpm", "tpmC", "NewOrder us/txn", "Payment us/txn"];
    let rows = [
        vec!["PhoebeDB".into(), f(pstats.tpm_total()), f(pstats.tpmc()), f(p_no), f(p_pay)],
        vec!["baseline".into(), f(bstats.tpm_total()), f(bstats.tpmc()), f(b_no), f(b_pay)],
    ];
    print_table("Exp 8 (Fig 9 + text): PhoebeDB vs PostgreSQL-like baseline", &headers, &rows);
    println!(
        "throughput ratio: {:.1}x (paper: 27x)",
        pstats.tpm_total() / bstats.tpm_total().max(1e-9)
    );
    println!(
        "cycle-proxy reduction: NewOrder {:.1}x (paper 5.6x), Payment {:.1}x (paper 2.5x)",
        b_no / p_no.max(1e-9),
        b_pay / p_pay.max(1e-9)
    );
    emit_json(
        "exp8_vs_postgres",
        phoebe_common::Json::obj()
            .with("series", rows_json(&headers, &rows))
            .with("tpm_ratio", pstats.tpm_total() / bstats.tpm_total().max(1e-9))
            .with("percentiles", latency_json(&phoebe.db.metrics.snapshot()))
            .with("stats", kernel_stats_json(&phoebe.db)),
    );
    phoebe.db.shutdown();
}
