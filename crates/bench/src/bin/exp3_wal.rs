//! Exp 3 / Figure 7(b): WAL flushing throughput over time.
//!
//! Paper: ~1800 MB/s sustained via io_uring on an NVMe SSD, stable for the
//! whole run. Here the per-slot writers flush through the AIO pool (the
//! io_uring stand-in); the shape to observe is a *stable* MB/s series.

use phoebe_bench::*;
use phoebe_common::ids::Xid;
use phoebe_common::metrics::Metrics;
use phoebe_storage::schema::Value;
use phoebe_wal::{RecordBody, WalHub};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let writers: usize = env_or("PHOEBE_WAL_WRITERS", 16);
    let appenders: usize = env_or("PHOEBE_WAL_APPENDERS", 4);
    let secs: u64 = env_or("PHOEBE_DURATION_SECS", 6);
    let dir = fresh_dir("exp3");
    let hub = WalHub::new(
        &dir,
        writers,
        4,
        Duration::from_micros(200),
        true,
        Arc::new(Metrics::new(appenders)),
    )
    .expect("wal hub");
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..appenders)
        .map(|a| {
            let hub = Arc::clone(&hub);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let tuple: Vec<Value> =
                    (0..8).map(Value::I64).chain([Value::Str("x".repeat(64))]).collect();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let slot = (a + i as usize * appenders) % hub.writer_count();
                    let gsn = hub.current_gsn();
                    hub.log_op(
                        slot,
                        Xid::from_start_ts(i + 1),
                        gsn,
                        RecordBody::Insert {
                            table: phoebe_common::ids::TableId(1),
                            row: phoebe_common::ids::RowId(i + 1),
                            tuple: tuple.clone(),
                        },
                    );
                    i += 1;
                }
                i
            })
        })
        .collect();
    let hub2 = Arc::clone(&hub);
    let mut last = 0u64;
    let sampler = Sampler::start(Duration::from_millis(500), move |t| {
        let now = hub2.total_bytes_flushed();
        let rate = (now - last) as f64 / 0.5 / 1e6;
        last = now;
        vec![format!("{t:.1}"), f(rate)]
    });
    std::thread::sleep(Duration::from_secs(secs));
    stop.store(true, Ordering::Release);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let rows = sampler.finish();
    let headers = ["t (s)", "MB/s"];
    print_table(
        &format!(
            "Exp 3 (Fig 7b): WAL flush throughput, {writers} slot writers, {appenders} appenders"
        ),
        &headers,
        &rows,
    );
    println!("records appended: {total}; bytes flushed: {}", hub.total_bytes_flushed());
    println!("paper shape: stable throughput for the whole run (~1800 MB/s on their NVMe)");
    emit_json(
        "exp3_wal",
        phoebe_common::Json::obj()
            .with("writers", writers as u64)
            .with("appenders", appenders as u64)
            .with("records_appended", total)
            .with("bytes_flushed", hub.total_bytes_flushed())
            .with("series", rows_json(&headers, &rows))
            .with("latency", latency_json(&hub.metrics_snapshot())),
    );
    hub.shutdown();
}
