//! Exp 5 / Figure 10: throughput vs Main Storage size.
//!
//! Paper: 100 warehouses, buffer swept 4 GB -> 100 GB; tpm climbs steeply
//! until the buffer holds the hot set (~25 GB), then flattens. Here the
//! same sweep in frames; the shape to observe is the knee.

use phoebe_bench::*;
use phoebe_tpcc::run_phoebe;

fn main() {
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let sweep: Vec<usize> = vec![96, 192, 384, 768, 1536, 3072];
    let headers = ["frames", "MiB", "tpm", "page reads", "page writes"];
    let mut rows = Vec::new();
    let mut percs = Vec::new();
    for &frames in &sweep {
        let engine = loaded_engine("exp5", 2, 16, frames, wh, phoebe_tpcc::TpccScale::mini());
        let cfg = driver_cfg(wh, 16, true);
        let stats = run_phoebe(&engine, &cfg);
        let (r, w) = engine.db.pool.io_counts();
        rows.push(vec![
            frames.to_string(),
            format!("{}", frames * phoebe_common::config::PAGE_SIZE / (1 << 20)),
            f(stats.tpm_total()),
            r.to_string(),
            w.to_string(),
        ]);
        percs.push(
            phoebe_common::Json::obj()
                .with("frames", frames as u64)
                .with("latency", latency_json(&engine.db.metrics.snapshot())),
        );
        engine.db.shutdown();
    }
    print_table("Exp 5 (Fig 10): throughput vs buffer size", &headers, &rows);
    println!("paper shape: steep rise until the hot set fits, then diminishing returns");
    emit_json(
        "exp5_buffer",
        phoebe_common::Json::obj()
            .with("warehouses", wh as u64)
            .with("series", rows_json(&headers, &rows))
            .with("percentiles", phoebe_common::Json::from(percs)),
    );
}
