//! Exp 4 / Figure 7(c,d): data-page read/write throughput over time when
//! the working set exceeds Main Storage.
//!
//! Paper: with 1 GB buffer per warehouse and 12-480 GB of data, page
//! exchange starts ~2 minutes in, write throughput stabilizes, read
//! throughput ramps as the hot set spreads. Here the buffer is set far
//! below the loaded data size so the exchange starts almost immediately;
//! the shape to observe: writes ramp then stabilize, reads grow, tpmC dips
//! once eviction begins.

use phoebe_bench::*;
use phoebe_common::config::PAGE_SIZE;
use phoebe_tpcc::run_phoebe;
use std::time::Duration;

fn main() {
    let wh: u32 = env_or("PHOEBE_WAREHOUSES", 2);
    let frames: usize = env_or("PHOEBE_BUFFER_FRAMES", 192); // deliberately tiny
    let engine = loaded_engine("exp4", 2, 16, frames, wh, phoebe_tpcc::TpccScale::mini());
    let db = engine.db.clone();
    let mut last = (0u64, 0u64, 0u64);
    let sampler = Sampler::start(Duration::from_millis(500), move |t| {
        let (r, w) = db.pool.io_counts();
        let commits = db.metrics.snapshot().counter(phoebe_common::metrics::Counter::Commits);
        let row = vec![
            format!("{t:.1}"),
            f((r - last.0) as f64 * PAGE_SIZE as f64 / 0.5 / 1e6),
            f((w - last.1) as f64 * PAGE_SIZE as f64 / 0.5 / 1e6),
            f((commits - last.2) as f64 * 2.0 * 60.0),
        ];
        last = (r, w, commits);
        row
    });
    // Periodic delta reporting through the public API: one `PHOEBE_STATS`
    // line per second, each covering just that interval's activity.
    let reporter = engine.db.start_stats_reporter(Duration::from_secs(1), |delta| {
        println!("PHOEBE_STATS {}", delta.to_json().render());
    });
    let mut cfg = driver_cfg(wh, 16, true);
    cfg.duration = Duration::from_secs(env_or("PHOEBE_DURATION_SECS", 10));
    let stats = run_phoebe(&engine, &cfg);
    reporter.stop();
    let rows = sampler.finish();
    let headers = ["t (s)", "read MB/s", "write MB/s", "tpm"];
    print_table(
        &format!(
            "Exp 4 (Fig 7c,d): disk I/O over time, buffer {frames} frames ({} MiB) << data",
            frames * PAGE_SIZE / (1 << 20)
        ),
        &headers,
        &rows,
    );
    let (r, w) = engine.db.pool.io_counts();
    println!("total page reads: {r}, page writes: {w}, committed: {}", stats.committed);
    println!("paper shape: exchange starts once the buffer fills; writes stabilize, reads ramp");
    emit_json(
        "exp4_diskio",
        phoebe_common::Json::obj()
            .with("buffer_frames", frames as u64)
            .with("page_reads", r)
            .with("page_writes", w)
            .with("committed", stats.committed)
            .with("series", rows_json(&headers, &rows))
            .with("stats", kernel_stats_json(&engine.db)),
    );
    engine.db.shutdown();
}
