//! Shared harness for the experiment binaries (one per figure/table of the
//! paper's §9 evaluation — see DESIGN.md's experiment index).
//!
//! Absolute numbers here are container-scale; every binary prints the same
//! *series* the paper reports so the shapes can be compared. Scale knobs
//! are overridable via environment variables (`PHOEBE_DURATION_SECS`,
//! `PHOEBE_WAREHOUSES`, ...).

use phoebe_common::hist::SITES;
use phoebe_common::metrics::MetricsSnapshot;
use phoebe_common::{Json, KernelConfig};
use phoebe_core::Database;
use phoebe_tpcc::{load, DriverConfig, PhoebeEngine, TpccScale};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Read an env override or fall back.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a comma-separated list override (`PHOEBE_EXP1_POINTS=1,4`) or fall
/// back — lets CI smoke runs measure just the points they compare.
pub fn env_points(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect::<Vec<usize>>())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Benchmark duration per measured point.
pub fn bench_duration() -> Duration {
    Duration::from_secs(env_or("PHOEBE_DURATION_SECS", 3))
}

/// A unique scratch directory for one experiment run.
pub fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("phoebe-bench-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// Open a kernel shaped for one experiment point.
pub fn open_phoebe(
    tag: &str,
    workers: usize,
    slots_per_worker: usize,
    buffer_frames: usize,
) -> Arc<Database> {
    let cfg = KernelConfig::builder()
        .workers(workers)
        .slots_per_worker(slots_per_worker)
        .buffer_frames(buffer_frames)
        .data_dir(fresh_dir(tag))
        .wal_group_commit_us(200)
        .build()
        .expect("valid bench config");
    let db = Database::open(cfg).expect("open kernel");
    // Database::open already logs the resolved listen address; repeat the
    // scrape-ready URLs here so a bench run advertises its live endpoints
    // (PHOEBE_TELEMETRY=127.0.0.1:9920 or any addr; port 0 works too).
    if let Some(addr) = db.telemetry_addr() {
        eprintln!(
            "phoebe-bench[{tag}]: scrape http://{addr}/metrics | stats http://{addr}/stats \
             | live trace http://{addr}/trace?ms=200"
        );
    }
    db
}

/// Build + load a TPC-C engine on a fresh kernel.
pub fn loaded_engine(
    tag: &str,
    workers: usize,
    slots_per_worker: usize,
    buffer_frames: usize,
    warehouses: u32,
    scale: TpccScale,
) -> PhoebeEngine {
    let db = open_phoebe(tag, workers, slots_per_worker, buffer_frames);
    let engine = PhoebeEngine::create(db).expect("create schema");
    phoebe_runtime::block_on(load(&engine, warehouses, scale, 42)).expect("load tpcc");
    engine
}

/// Default driver config for an experiment point.
pub fn driver_cfg(warehouses: u32, terminals: usize, affinity: bool) -> DriverConfig {
    DriverConfig {
        warehouses,
        scale: TpccScale::mini(),
        duration: bench_duration(),
        terminals,
        affinity,
        seed: 4242,
    }
}

/// Fixed-width table printing for experiment outputs.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// A background sampler producing one row per interval until stopped.
pub struct Sampler {
    handle: Option<std::thread::JoinHandle<Vec<Vec<String>>>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl Sampler {
    /// `probe` is called once per interval with the elapsed seconds and
    /// must return one output row.
    pub fn start(
        interval: Duration,
        probe: impl FnMut(f64) -> Vec<String> + Send + 'static,
    ) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut probe = probe;
        let handle = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let mut rows = Vec::new();
            while !stop2.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                rows.push(probe(start.elapsed().as_secs_f64()));
            }
            rows
        });
        Sampler { handle: Some(handle), stop }
    }

    pub fn finish(mut self) -> Vec<Vec<String>> {
        self.stop.store(true, Ordering::Release);
        self.handle.take().map(|h| h.join().unwrap_or_default()).unwrap_or_default()
    }
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

// ---------------------------------------------------------------------
// Machine-readable output
// ---------------------------------------------------------------------

/// Marker prefixing the one machine-readable line each binary emits.
pub const JSON_MARKER: &str = "PHOEBE_JSON";

/// A printed table as a JSON array of objects keyed by the headers.
/// Numeric-looking cells become numbers; everything else stays a string.
pub fn rows_json(headers: &[&str], rows: &[Vec<String>]) -> Json {
    let arr: Vec<Json> = rows
        .iter()
        .map(|row| {
            let mut obj = Json::obj();
            for (h, cell) in headers.iter().zip(row) {
                let v = if let Ok(n) = cell.parse::<u64>() {
                    Json::from(n)
                } else if let Ok(x) = cell.parse::<f64>() {
                    Json::from(x)
                } else {
                    Json::from(cell.as_str())
                };
                obj = obj.with(*h, v);
            }
            obj
        })
        .collect();
    Json::from(arr)
}

/// Per-site latency percentiles from a metrics snapshot, as one object
/// keyed by the stable site names (`commit`, `wal_flush`, ...).
pub fn latency_json(snap: &MetricsSnapshot) -> Json {
    let mut obj = Json::obj();
    for &site in SITES.iter() {
        let h = snap.latency(site);
        obj = obj.with(
            site.name(),
            Json::obj()
                .with("count", h.count())
                .with("mean_ns", h.mean_ns() as u64)
                .with("max_ns", h.max_ns())
                .with("p50_ns", h.p50())
                .with("p95_ns", h.p95())
                .with("p99_ns", h.p99()),
        );
    }
    obj
}

/// The `k` sites with the highest p99 latency, worst first — the "where
/// does tail latency live" summary every experiment now reports.
pub fn top_p99_sites(snap: &MetricsSnapshot, k: usize) -> Json {
    let mut sites: Vec<_> = SITES
        .iter()
        .map(|&site| (site.name(), snap.latency(site)))
        .filter(|(_, h)| h.count() > 0)
        .collect();
    sites.sort_by_key(|(_, h)| std::cmp::Reverse(h.p99()));
    let arr: Vec<Json> = sites
        .into_iter()
        .take(k)
        .map(|(name, h)| {
            Json::obj().with("site", name).with("p99_ns", h.p99()).with("count", h.count())
        })
        .collect();
    Json::from(arr)
}

/// The kernel's full stats snapshot (counters + components + percentiles),
/// via the public `Database::stats()` API.
pub fn kernel_stats_json(db: &Arc<Database>) -> Json {
    db.stats().to_json()
}

/// Print the experiment's single machine-readable line:
/// `PHOEBE_JSON {"experiment":...,...}` — compact, one line, greppable.
pub fn emit_json(experiment: &str, doc: Json) {
    let doc = Json::obj().with("experiment", experiment).with("data", doc);
    println!("{JSON_MARKER} {}", doc.render());
}
