//! Micro-benchmarks: snapshot acquisition (O(1) vs the baseline's O(n)
//! proc-array scan) and Algorithm-1 visibility traversal.

use criterion::{criterion_group, criterion_main, Criterion};
use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_storage::schema::Value;
use phoebe_txn::locks::{TxnHandle, TxnOutcome};
use phoebe_txn::visibility::check_visibility;
use phoebe_txn::{GlobalClock, Snapshot, UndoLog, UndoOp};
use std::sync::Arc;

fn chain(len: usize) -> Arc<UndoLog> {
    let mut prev = None;
    for i in 0..len {
        let cts = (i as u64 + 1) * 2;
        let h = TxnHandle::new(Xid::from_start_ts(cts - 1));
        let log = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(i as i64))] },
            Arc::clone(&h),
            prev,
        );
        log.stamp_commit(cts);
        h.finish(TxnOutcome::Committed(cts));
        prev = Some(log);
    }
    prev.unwrap()
}

fn bench_mvcc(c: &mut Criterion) {
    // O(1) snapshot: one atomic load.
    let clock = GlobalClock::new();
    for _ in 0..1000 {
        clock.tick();
    }
    c.bench_function("mvcc/snapshot_acquisition_o1", |b| b.iter(|| clock.snapshot()));

    // The baseline's snapshot scans a proc array (O(n) in active txns).
    let bdb =
        phoebe_baseline::BaselineDb::open(&phoebe_bench::fresh_dir("bench-snap"), 1000).unwrap();
    let _active: Vec<_> = (0..512).map(|_| bdb.begin_xact()).collect();
    c.bench_function("mvcc/snapshot_scan_baseline_512_active", |b| b.iter(|| bdb.snapshot()));

    let current = vec![Value::I64(999)];
    let reader = Xid::from_start_ts(1_000_000);
    for len in [1usize, 4, 16, 64] {
        let head = chain(len);
        // Snapshot 1: forces a walk to the oldest version.
        c.bench_function(&format!("mvcc/visibility_chain_{len}"), |b| {
            b.iter(|| check_visibility(&current, Some(&head), reader, Snapshot(1)))
        });
    }
    let head = chain(8);
    c.bench_function("mvcc/visibility_head_hit", |b| {
        b.iter(|| check_visibility(&current, Some(&head), reader, Snapshot(1 << 40)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_mvcc
}
criterion_main!(benches);
