//! Micro-benchmarks: WAL append, group flush, RFA stamping.

use criterion::{criterion_group, criterion_main, Criterion};
use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_common::metrics::Metrics;
use phoebe_storage::schema::Value;
use phoebe_wal::writer::RfaState;
use phoebe_wal::{RecordBody, WalHub};
use std::sync::Arc;
use std::time::Duration;

fn bench_wal(c: &mut Criterion) {
    let hub = WalHub::new(
        &phoebe_bench::fresh_dir("bench-wal"),
        8,
        2,
        Duration::from_micros(200),
        true,
        Arc::new(Metrics::new(1)),
    )
    .unwrap();
    let tuple: Vec<Value> = vec![Value::I64(1), Value::Str("payload".into())];
    let mut i = 0u64;
    c.bench_function("wal/append_insert_record", |b| {
        b.iter(|| {
            i += 1;
            hub.log_op(
                (i % 8) as usize,
                Xid::from_start_ts(i),
                1,
                RecordBody::Insert { table: TableId(1), row: RowId(i), tuple: tuple.clone() },
            )
        })
    });
    c.bench_function("wal/stamp_write_same_slot", |b| {
        let mut rfa = RfaState::default();
        b.iter(|| hub.stamp_write(&mut rfa, 0, Some(0), 0))
    });
    c.bench_function("wal/stamp_write_cross_slot", |b| {
        b.iter(|| {
            let mut rfa = RfaState::default();
            hub.stamp_write(&mut rfa, 1, Some(1), 0)
        })
    });
    c.bench_function("wal/flush_all_1k_records", |b| {
        b.iter(|| {
            for k in 0..1000u64 {
                hub.log_op(
                    (k % 8) as usize,
                    Xid::from_start_ts(k),
                    1,
                    RecordBody::Commit { cts: k },
                );
            }
            hub.flush_all().unwrap()
        })
    });
    hub.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_wal
}
criterion_main!(benches);
