//! Contention micro-benchmark: N threads hammering one twin table (locked
//! hit path vs the lock-free clean-read fast path) and concurrent B-tree
//! point reads.
//!
//! Hand-rolled rather than criterion-driven: the harness must run the
//! *same* closure on several threads at once and report aggregate
//! throughput, which the bundled single-threaded criterion shim cannot.
//! Invoke with `cargo bench --bench contention`; `PHOEBE_CONTENTION_MS`
//! scales the per-point measurement window.
//!
//! The line to look at is `fast_path_speedup`: clean-read lookups (bloom
//! summary says "definitely absent", no mutex) must beat locked hits by
//! ≥2x once 4 threads contend on one table.

use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_common::metrics::Metrics;
use phoebe_storage::schema::Value;
use phoebe_storage::{BTree, BufferPool, TreeKind};
use phoebe_txn::{TwinRegistry, TwinTable, TxnHandle, UndoLog, UndoOp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run `op` on `threads` threads for the measurement window; returns total
/// operations per second across all threads.
fn throughput(threads: usize, op: impl Fn(u64) + Sync) -> f64 {
    let window = Duration::from_millis(phoebe_bench::env_or("PHOEBE_CONTENTION_MS", 200u64));
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (stop, total, op) = (&stop, &total, &op);
            s.spawn(move || {
                let mut n = 0u64;
                let mut i = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    // Batch the stop check so it doesn't dominate tiny ops.
                    for _ in 0..64 {
                        op(i);
                        i = i.wrapping_add(1);
                        n += 1;
                    }
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Release);
    });
    total.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

/// A twin table with version-chain entries on rows `0..population`.
fn populated_twin(reg: &TwinRegistry, population: u64) -> Arc<TwinTable> {
    let tw = reg.get_or_create((TableId(1), RowId(0)));
    for r in 0..population {
        let h = TxnHandle::new(Xid::from_start_ts(r + 1));
        let log = UndoLog::new(
            TableId(1),
            RowId(r),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(r as i64))] },
            h,
            None,
        );
        assert!(tw.set_head(RowId(r), log, r + 1));
    }
    tw
}

fn main() {
    let thread_points = phoebe_bench::env_points("PHOEBE_CONTENTION_THREADS", &[1, 2, 4, 8]);
    let reg = TwinRegistry::new();
    let tw = populated_twin(&reg, 64);

    // B-tree under concurrent point reads: a secondary index with 10k keys.
    let metrics = Arc::new(Metrics::new(1));
    let pool = BufferPool::new(
        2048,
        4,
        &phoebe_bench::fresh_dir("bench-contention"),
        Arc::clone(&metrics),
    )
    .expect("pool");
    let tree = BTree::create(pool, TableId(2), TreeKind::Index, metrics).expect("tree");
    const KEYS: u64 = 10_000;
    for k in 0..KEYS {
        tree.index_insert(&k.to_be_bytes(), RowId(k + 1)).expect("insert");
    }

    let headers = ["scenario", "threads", "Mops/s"];
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &t in &thread_points {
        // Locked path: every lookup lands on a populated row, so the bloom
        // summary says "maybe present" and the shard mutex is taken.
        let hit = throughput(t, |i| {
            std::hint::black_box(tw.head(RowId(i & 63)));
        });
        // Clean-read fast path: rows far outside the populated set answer
        // from the shard summary without touching the mutex (modulo the
        // occasional spurious bloom hit).
        let miss = throughput(t, |i| {
            std::hint::black_box(tw.head(RowId(1 << 32 | (i & 1023))));
        });
        // Registry fast path: absent (table, page) keys.
        let reg_miss = throughput(t, |i| {
            std::hint::black_box(reg.get((TableId(7), RowId(i & 1023))));
        });
        let reads = throughput(t, |i| {
            std::hint::black_box(tree.index_get(&(i % KEYS).to_be_bytes()).unwrap());
        });
        let m = 1e-6;
        rows.push(vec!["twin_hit_locked".into(), t.to_string(), format!("{:.2}", hit * m)]);
        rows.push(vec!["twin_miss_clean".into(), t.to_string(), format!("{:.2}", miss * m)]);
        rows.push(vec!["registry_miss".into(), t.to_string(), format!("{:.2}", reg_miss * m)]);
        rows.push(vec!["btree_point_read".into(), t.to_string(), format!("{:.2}", reads * m)]);
        speedups.push(
            phoebe_common::Json::obj()
                .with("threads", t as u64)
                .with("twin_hit_mops", hit * m)
                .with("twin_miss_mops", miss * m)
                .with("registry_miss_mops", reg_miss * m)
                .with("btree_read_mops", reads * m)
                .with("fast_path_speedup", if hit > 0.0 { miss / hit } else { 0.0 }),
        );
    }
    phoebe_bench::print_table("Contention: one twin table + one B-tree", &headers, &rows);
    println!("expectation: twin_miss_clean >= 2x twin_hit_locked at 4+ threads");
    phoebe_bench::emit_json(
        "contention",
        phoebe_common::Json::obj().with("series", phoebe_common::Json::from(speedups)),
    );
}
