//! Micro-benchmarks: hybrid latch modes and decentralized transaction-ID
//! locks vs the baseline's global lock table.

use criterion::{criterion_group, criterion_main, Criterion};
use phoebe_common::ids::Xid;
use phoebe_storage::HybridLatch;
use phoebe_txn::locks::{TxnHandle, TxnOutcome};

fn bench_locks(c: &mut Criterion) {
    let latch = HybridLatch::new([0u64; 8]);
    c.bench_function("latch/optimistic_read", |b| b.iter(|| latch.optimistic(|v| v[3]).unwrap()));
    c.bench_function("latch/shared_read", |b| b.iter(|| *latch.read()));
    c.bench_function("latch/exclusive_cycle", |b| {
        b.iter(|| {
            let mut g = latch.write();
            g[3] += 1;
        })
    });

    c.bench_function("txnlock/create_resolve", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = TxnHandle::new(Xid::from_start_ts(i));
            h.finish(TxnOutcome::Committed(i));
            h.outcome()
        })
    });

    let bdb =
        phoebe_baseline::BaselineDb::open(&phoebe_bench::fresh_dir("bench-locks"), 1000).unwrap();
    c.bench_function("txnlock/baseline_global_table_cycle", |b| {
        b.iter(|| {
            let (xid, lock) = bdb.begin_xact();
            bdb.end_xact(xid, &lock, phoebe_baseline::engine::XactState::Committed);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_locks
}
criterion_main!(benches);
