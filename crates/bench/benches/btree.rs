//! Micro-benchmarks: the swizzling B-Tree under optimistic lock coupling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use phoebe_common::ids::{RowId, TableId};
use phoebe_common::metrics::Metrics;
use phoebe_storage::schema::{ColType, Schema, Value};
use phoebe_storage::{BTree, BufferPool, PaxLayout, TreeKind};
use std::sync::Arc;

fn table_tree(frames: usize) -> (BTree, PaxLayout) {
    let dir = phoebe_bench::fresh_dir("bench-btree");
    let metrics = Arc::new(Metrics::new(1));
    let pool = BufferPool::new(frames, 1, &dir, Arc::clone(&metrics)).unwrap();
    let schema = Schema::new(vec![("a", ColType::I64), ("b", ColType::Str(16))]);
    let layout = PaxLayout::for_schema(&schema);
    let tree = BTree::create(pool, TableId(1), TreeKind::Table, metrics).unwrap();
    (tree, layout)
}

fn bench_btree(c: &mut Criterion) {
    let (tree, layout) = table_tree(8192);
    for i in 1..=100_000u64 {
        tree.table_append(
            &layout,
            RowId(i),
            &[Value::I64(i as i64), Value::Str("x".into())],
            |_, _, _, _| {},
        )
        .unwrap();
    }
    c.bench_function("btree/table_point_read_100k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i % 100_000 + 1;
            tree.table_read(RowId(i), |leaf, r, _, _| leaf.read_col(&layout, r, 0)).unwrap()
        })
    });
    c.bench_function("btree/table_in_place_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i % 100_000 + 1;
            tree.table_modify(RowId(i), |leaf, r, _, _| {
                leaf.write_col(&layout, r, 0, &Value::I64(7));
            })
            .unwrap()
        })
    });

    let dir = phoebe_bench::fresh_dir("bench-index");
    let metrics = Arc::new(Metrics::new(1));
    let pool = BufferPool::new(8192, 1, &dir, Arc::clone(&metrics)).unwrap();
    let index = BTree::create(pool, TableId(2), TreeKind::Index, metrics).unwrap();
    for i in 0..100_000u64 {
        index.index_insert(&i.to_be_bytes(), RowId(i)).unwrap();
    }
    c.bench_function("btree/index_get_100k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            index.index_get(&i.to_be_bytes()).unwrap()
        })
    });
    c.bench_function("btree/index_insert_remove", |b| {
        // Steady state: criterion runs millions of iterations, so pair the
        // insert with a remove instead of growing the tree unboundedly.
        let mut i = 1_000_000u64;
        b.iter_batched(
            || {
                i += 1;
                i
            },
            |key| {
                index.index_insert(&key.to_be_bytes(), RowId(key)).unwrap();
                index.index_remove(&key.to_be_bytes()).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_btree
}
criterion_main!(benches);
