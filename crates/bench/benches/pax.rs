//! Micro-benchmarks: PAX leaf access and the frozen-block codec.

use criterion::{criterion_group, criterion_main, Criterion};
use phoebe_common::ids::RowId;
use phoebe_storage::pax::{PaxLayout, PaxLeaf};
use phoebe_storage::schema::{ColType, Schema, Value};
use phoebe_storage::tier::codec;

fn bench_pax(c: &mut Criterion) {
    let schema = Schema::new(vec![
        ("a", ColType::I64),
        ("b", ColType::I32),
        ("c", ColType::F64),
        ("d", ColType::Str(16)),
    ]);
    let layout = PaxLayout::for_schema(&schema);
    let mut leaf = PaxLeaf::new();
    let tuple = vec![Value::I64(1), Value::I32(2), Value::F64(3.0), Value::Str("hello".into())];
    for i in 0..layout.capacity {
        leaf.append(&layout, RowId(i as u64), &tuple);
    }
    c.bench_function("pax/find_binary_search", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % layout.capacity as u64;
            leaf.find(RowId(i))
        })
    });
    c.bench_function("pax/read_single_column", |b| b.iter(|| leaf.read_col(&layout, 100, 0)));
    c.bench_function("pax/read_full_row", |b| b.iter(|| leaf.read_row(&layout, 100)));
    c.bench_function("pax/write_col_in_place", |b| {
        b.iter(|| leaf.write_col(&layout, 100, 1, &Value::I32(9)))
    });

    let types = schema.types().to_vec();
    let ids: Vec<RowId> = (0..1000).map(RowId).collect();
    let rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::I64(i),
                Value::I32(i as i32),
                Value::F64(i as f64),
                Value::Str("frozen".into()),
            ]
        })
        .collect();
    c.bench_function("codec/encode_block_1k_rows", |b| {
        b.iter(|| codec::encode_block(&types, &ids, &rows))
    });
    let blob = codec::encode_block(&types, &ids, &rows);
    c.bench_function("codec/decode_block_1k_rows", |b| {
        b.iter(|| codec::decode_block(&blob).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_pax
}
criterion_main!(benches);
