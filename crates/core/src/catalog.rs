//! The catalog: tables, secondary indexes, and their key encodings (§5.1).
//!
//! Each relation owns one B-Tree. A table's tree is keyed by the internal
//! row id and stores PAX tuples; every user-defined index is a secondary
//! index tree mapping an order-preserving key encoding to the row id. The
//! table also owns its frozen store (Data Block File) and its table lock
//! (the paper hangs table-lock state off the relation, not a global map).

use crate::keys::KeyBuilder;
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::{RowId, TableId};
use phoebe_common::snapshot::SnapshotList;
use phoebe_storage::schema::{ColType, Schema, Value};
use phoebe_storage::{BTree, FrozenStore, PaxLayout};
use phoebe_txn::TableLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Definition of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    pub name: String,
    /// Columns of the table schema forming the key, in order.
    pub key_cols: Vec<usize>,
    /// Unique indexes reject duplicate user keys; non-unique indexes get a
    /// row-id suffix to disambiguate.
    pub unique: bool,
}

/// A live secondary index.
pub struct IndexEntry {
    pub id: TableId,
    pub def: IndexDef,
    pub tree: BTree,
}

impl IndexEntry {
    /// Encode the *stored* key for `tuple` at `row`.
    pub fn key_for(&self, schema: &Schema, tuple: &[Value], row: RowId) -> Vec<u8> {
        let mut b = KeyBuilder::new();
        for &c in &self.def.key_cols {
            let width = match schema.col_type(c) {
                ColType::Str(m) => m as usize,
                _ => 0,
            };
            b.push_value(&tuple[c], width);
        }
        if !self.def.unique {
            b.push_row_id(row);
        }
        b.finish()
    }

    /// Encode a (possibly partial) user-key prefix for lookups and scans.
    pub fn prefix_for(&self, schema: &Schema, values: &[Value]) -> Vec<u8> {
        assert!(values.len() <= self.def.key_cols.len(), "prefix too long");
        let mut b = KeyBuilder::new();
        for (&c, v) in self.def.key_cols.iter().zip(values) {
            let width = match schema.col_type(c) {
                ColType::Str(m) => m as usize,
                _ => 0,
            };
            b.push_value(v, width);
        }
        b.finish()
    }

    /// Inclusive scan bounds for entries whose user key starts with
    /// `values`.
    pub fn range_for(&self, schema: &Schema, values: &[Value]) -> (Vec<u8>, Vec<u8>) {
        let prefix = self.prefix_for(schema, values);
        let mut high = prefix.clone();
        // Pad to the maximum stored key length with 0xff: every stored key
        // with this prefix compares <= high.
        high.resize(phoebe_storage::node::MAX_KEY, 0xff);
        (prefix, high)
    }
}

/// A live table.
pub struct TableEntry {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
    pub layout: PaxLayout,
    pub tree: BTree,
    pub frozen: FrozenStore,
    pub lock: TableLock,
    next_row_id: AtomicU64,
    /// Index list as an immutable snapshot: every insert/delete walks it,
    /// so readers get a lock-free borrow instead of an `RwLock` + clone.
    pub indexes: SnapshotList<Arc<IndexEntry>>,
}

impl TableEntry {
    pub fn new(
        id: TableId,
        name: String,
        schema: Schema,
        tree: BTree,
        frozen: FrozenStore,
    ) -> Self {
        let layout = PaxLayout::for_schema(&schema);
        TableEntry {
            id,
            name,
            schema,
            layout,
            tree,
            frozen,
            lock: TableLock::new(),
            next_row_id: AtomicU64::new(1),
            indexes: SnapshotList::default(),
        }
    }

    /// Draw the next monotonically increasing row id (§5.1).
    pub fn next_row_id(&self) -> RowId {
        RowId(self.next_row_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Advance the row-id allocator past `row` (recovery replay).
    pub fn bump_row_id(&self, row: RowId) {
        self.next_row_id.fetch_max(row.raw() + 1, Ordering::Relaxed);
    }

    /// Current high-water mark of the allocator.
    pub fn row_id_high_water(&self) -> u64 {
        self.next_row_id.load(Ordering::Relaxed)
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Result<Arc<IndexEntry>> {
        self.indexes
            .load()
            .iter()
            .find(|i| i.def.name == name)
            .cloned()
            .ok_or_else(|| PhoebeError::internal(format!("no index '{name}' on {}", self.name)))
    }

    /// All indexes (insert/delete maintenance): lock-free snapshot borrow,
    /// no per-operation `Vec` clone.
    pub fn all_indexes(&self) -> &[Arc<IndexEntry>] {
        self.indexes.load()
    }
}
