//! The catalog manifest: crash-recoverable DDL state.
//!
//! PhoebeDB does not WAL-log catalog operations — the schema is
//! application-defined (§8's logical records name tables by id, which is
//! assigned in creation order). For `Database::open` to replay a WAL after
//! a crash it must first rebuild the same catalog, so every successful
//! `create_table`/`create_index` rewrites a small text manifest in the
//! data directory (atomically, via write-to-temp + rename). On open the
//! manifest is loaded *before* replay, recreating every relation with the
//! same creation order and therefore the same ids.
//!
//! Format: one tab-separated line per entry, in creation order.
//!
//! ```text
//! table\t<name>\t<col>:<ty>,<col>:<ty>,...
//! index\t<table_name>\t<index_name>\t<0|1 unique>\t<col_idx>,<col_idx>,...
//! ```
//!
//! Column types encode as `i64`, `i32`, `f64`, `str<max>`.

use phoebe_common::error::{PhoebeError, Result};
use phoebe_storage::schema::{ColType, Schema};
use std::path::Path;

/// File name of the manifest inside the data directory.
pub const MANIFEST_FILE: &str = "catalog.manifest";

/// One catalog operation, in creation order.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestEntry {
    Table { name: String, schema: Schema },
    Index { table: String, name: String, unique: bool, key_cols: Vec<usize> },
}

fn encode_col_type(t: ColType) -> String {
    match t {
        ColType::I64 => "i64".into(),
        ColType::I32 => "i32".into(),
        ColType::F64 => "f64".into(),
        ColType::Str(max) => format!("str{max}"),
    }
}

fn parse_col_type(s: &str) -> Result<ColType> {
    match s {
        "i64" => Ok(ColType::I64),
        "i32" => Ok(ColType::I32),
        "f64" => Ok(ColType::F64),
        _ => s
            .strip_prefix("str")
            .and_then(|m| m.parse::<u16>().ok())
            .map(ColType::Str)
            .ok_or_else(|| PhoebeError::corruption(format!("manifest: bad column type '{s}'"))),
    }
}

/// Serialize entries to the manifest text.
pub fn encode(entries: &[ManifestEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        match e {
            ManifestEntry::Table { name, schema } => {
                let cols: Vec<String> = (0..schema.num_cols())
                    .map(|i| {
                        format!("{}:{}", schema.col_name(i), encode_col_type(schema.col_type(i)))
                    })
                    .collect();
                out.push_str(&format!("table\t{name}\t{}\n", cols.join(",")));
            }
            ManifestEntry::Index { table, name, unique, key_cols } => {
                let cols: Vec<String> = key_cols.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    "index\t{table}\t{name}\t{}\t{}\n",
                    u8::from(*unique),
                    cols.join(",")
                ));
            }
        }
    }
    out
}

/// Parse the manifest text back into entries.
pub fn parse(text: &str) -> Result<Vec<ManifestEntry>> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            PhoebeError::corruption(format!("manifest line {}: {what}: '{line}'", lineno + 1))
        };
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied() {
            Some("table") if fields.len() == 3 => {
                let mut cols = Vec::new();
                for col in fields[2].split(',').filter(|c| !c.is_empty()) {
                    let (name, ty) = col.split_once(':').ok_or_else(|| bad("bad column"))?;
                    cols.push((name, parse_col_type(ty)?));
                }
                entries.push(ManifestEntry::Table {
                    name: fields[1].to_owned(),
                    schema: Schema::new(cols),
                });
            }
            Some("index") if fields.len() == 5 => {
                let unique = match fields[3] {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad("bad unique flag")),
                };
                let key_cols = fields[4]
                    .split(',')
                    .filter(|c| !c.is_empty())
                    .map(|c| c.parse::<usize>().map_err(|_| bad("bad key column")))
                    .collect::<Result<Vec<_>>>()?;
                entries.push(ManifestEntry::Index {
                    table: fields[1].to_owned(),
                    name: fields[2].to_owned(),
                    unique,
                    key_cols,
                });
            }
            _ => return Err(bad("unrecognized entry")),
        }
    }
    Ok(entries)
}

/// Atomically (write temp + rename) persist the manifest under `data_dir`.
pub fn store(data_dir: &Path, entries: &[ManifestEntry]) -> Result<()> {
    let tmp = data_dir.join(format!("{MANIFEST_FILE}.tmp"));
    let dst = data_dir.join(MANIFEST_FILE);
    std::fs::write(&tmp, encode(entries))?;
    std::fs::rename(&tmp, &dst)?;
    Ok(())
}

/// Load the manifest from `data_dir`; empty when none was ever written.
pub fn load(data_dir: &Path) -> Result<Vec<ManifestEntry>> {
    match std::fs::read_to_string(data_dir.join(MANIFEST_FILE)) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<ManifestEntry> {
        vec![
            ManifestEntry::Table {
                name: "accounts".into(),
                schema: Schema::new(vec![
                    ("id", ColType::I64),
                    ("owner", ColType::Str(24)),
                    ("cents", ColType::I64),
                    ("tier", ColType::I32),
                    ("score", ColType::F64),
                ]),
            },
            ManifestEntry::Index {
                table: "accounts".into(),
                name: "by_owner".into(),
                unique: false,
                key_cols: vec![1, 0],
            },
            ManifestEntry::Table {
                name: "ledger".into(),
                schema: Schema::new(vec![("op", ColType::I64)]),
            },
            ManifestEntry::Index {
                table: "ledger".into(),
                name: "by_op".into(),
                unique: true,
                key_cols: vec![0],
            },
        ]
    }

    #[test]
    fn roundtrips_tables_and_indexes_in_order() {
        let e = entries();
        assert_eq!(parse(&encode(&e)).unwrap(), e);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        std::fs::create_dir_all(&dir).unwrap();
        let e = entries();
        store(&dir, &e).unwrap();
        assert_eq!(load(&dir).unwrap(), e);
    }

    #[test]
    fn missing_manifest_loads_empty() {
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load(&dir).unwrap().is_empty());
    }

    #[test]
    fn garbage_lines_are_rejected_not_misparsed() {
        assert!(parse("table\tonly_two_fields").is_err());
        assert!(parse("index\ta\tb\t2\t0").is_err());
        assert!(parse("table\tt\tcol:badtype").is_err());
        assert!(parse("whatever\tx").is_err());
    }
}
