//! The PhoebeDB kernel: wiring storage, transactions, WAL and the
//! co-routine runtime into one database object (§4, Figure 1).

use crate::catalog::{IndexDef, IndexEntry, TableEntry};
use crate::manifest::{self, ManifestEntry};
use crate::txn_api::Transaction;
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::fault::{FaultFs, OsFs, SimFs};
use phoebe_common::hist::LatencySite;
use phoebe_common::ids::{TableId, Timestamp};
use phoebe_common::metrics::{Component, Counter, Metrics};
use phoebe_common::snapshot::SnapshotList;
use phoebe_common::sync::{Rank, RankedMutex, RankedRwLock};
use phoebe_common::telemetry::TelemetryServer;
use phoebe_common::trace::{EventKind, Tracer};
use phoebe_common::{KernelConfig, TelemetryConfig, TraceConfig, WatchdogConfig};
use phoebe_runtime::{Runtime, RuntimeConfig, WorkerHook};
use phoebe_storage::schema::{ColType, Schema};
use phoebe_storage::{BTree, BufferPool, FrozenStore, TreeKind};
use phoebe_txn::locks::IsolationLevel;
use phoebe_txn::{ActiveTxnTable, GcEngine, GcStats, TwinRegistry, UndoArena, UndoLog, UndoOp};
use phoebe_wal::{recover_dir, recover_dir_stats, RecordBody, RecoveredTxn, WalHub, WalScanStats};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Extra task-slot identities reserved for threads outside the co-routine
/// pool (loaders, tests, maintenance). They get their own UNDO arenas and
/// WAL writers so the slot-serial invariants hold for them too.
pub const EXTERNAL_SLOTS: usize = 8;

/// What `Database::open` found and replayed from a previous incarnation's
/// WAL (all zeros on a fresh directory).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryInfo {
    /// Committed transactions replayed from the log.
    pub txns: usize,
    /// Highest recovered commit timestamp; the global clock resumes
    /// strictly after it.
    pub max_cts: Timestamp,
    /// Highest GSN seen on any recovered record (must never exceed the
    /// durable GSN the crashed incarnation acknowledged).
    pub max_gsn: u64,
    /// CRC-valid WAL records the recovery scan decoded (also surfaced as
    /// the `recovery_records_replayed` counter in [`crate::KernelStats`]).
    pub records: u64,
    /// Torn tail bytes discarded across slot files (the
    /// `recovery_tail_bytes_discarded` counter).
    pub tail_bytes_discarded: u64,
}

/// The database kernel.
pub struct Database {
    pub cfg: KernelConfig,
    pub metrics: Arc<Metrics>,
    pub clock: phoebe_txn::GlobalClock,
    pub pool: Arc<BufferPool>,
    pub wal: Arc<WalHub>,
    pub twins: Arc<TwinRegistry>,
    pub active: ActiveTxnTable,
    arenas: Vec<Arc<UndoArena>>,
    pub tuple_locks: Vec<phoebe_txn::locks::TupleLockSlot>,
    gc: GcEngine,
    /// Table list as an immutable snapshot (see [`SnapshotList`]):
    /// `table_by_id` runs per UNDO log during rollback and GC, so it must
    /// not serialize on a catalog lock.
    catalog: SnapshotList<Arc<TableEntry>>,
    by_name: RankedRwLock<HashMap<String, usize>>,
    /// DDL operations in creation order — the source text of the on-disk
    /// catalog manifest (see [`crate::manifest`]). Creation order matters:
    /// it is what assigns table/index ids, and ids are how WAL records
    /// name relations at replay.
    ddl_log: RankedMutex<Vec<ManifestEntry>>,
    /// The seeded torture disk when `cfg.fault` is set; `None` in
    /// production. Exposed via [`Database::fault_sim`] so crash tests can
    /// arm and trigger the simulated power cut.
    sim: Option<Arc<SimFs>>,
    /// The kernel flight recorder (disabled unless `cfg.trace` or
    /// `PHOEBE_TRACE` enabled it); every subsystem emits through the
    /// metrics handle, this is the drain/export side.
    tracer: Arc<Tracer>,
    /// Where shutdown exports the trace, when a path was configured.
    /// Taken (once) by the first shutdown/drop.
    trace_path: RankedMutex<Option<PathBuf>>,
    /// What `open` replayed from the previous incarnation's WAL.
    recovery: RecoveryInfo,
    next_table_id: AtomicU32,
    external_free: RankedMutex<Vec<usize>>,
    txns_since_gc: Vec<AtomicU64>,
    runtime: RankedRwLock<Option<Arc<Runtime>>>,
    /// Stop flags of live [`crate::stats::StatsReporter`] co-routines;
    /// raised before the runtime drains so reporters never wedge shutdown.
    reporter_stops: RankedMutex<Vec<Arc<std::sync::atomic::AtomicBool>>>,
    /// The live telemetry HTTP server, when `cfg.telemetry` or
    /// `PHOEBE_TELEMETRY` enabled it. Stopped first at shutdown so no
    /// scrape runs against a dying kernel.
    telemetry: RankedMutex<Option<TelemetryServer>>,
    /// The stall watchdog, when `cfg.watchdog` or `PHOEBE_WATCHDOG`
    /// enabled it.
    watchdog: RankedMutex<Option<crate::watchdog::WatchdogHandle>>,
}

struct HubBarrier(Arc<WalHub>);

impl phoebe_storage::WalBarrier for HubBarrier {
    fn ensure_durable(&self, gsn: u64) {
        self.0.ensure_durable_gsn_blocking(gsn);
    }
}

/// Per-worker background duties (§7.1, Figure 6): page swaps when the
/// partition's free frames fall below the watermark, and GC after every
/// `gc_every_txns` transactions — run on the worker that owns the data.
struct KernelHook {
    db: Weak<Database>,
}

impl WorkerHook for KernelHook {
    fn tick(&self, worker: usize) {
        let Some(db) = self.db.upgrade() else {
            return;
        };
        // Page-swap duty.
        let fpp = db.pool.total_frames() / db.pool.partition_count();
        let watermark = ((fpp as f64) * db.cfg.free_frame_watermark) as usize;
        if db.pool.free_frames(worker) < watermark {
            let _t = db.metrics.timer(Component::Buffer);
            db.pool.stage_cooling(worker, 8);
            for _ in 0..8 {
                if db.pool.free_frames(worker) >= watermark {
                    break;
                }
                if !db.pool.evict_one(worker).unwrap_or(false) {
                    break;
                }
            }
        }
        // GC duty for this worker's slots.
        let due = db.txns_since_gc[worker].load(Ordering::Relaxed) >= db.cfg.gc_every_txns;
        if due {
            db.txns_since_gc[worker].store(0, Ordering::Relaxed);
            let _t = db.metrics.timer(Component::Gc);
            let min_active = db.active.min_active_start(db.clock.current());
            let spw = db.cfg.slots_per_worker;
            for slot in worker * spw..(worker + 1) * spw {
                db.collect_slot(slot, min_active);
            }
        }
    }
}

/// True when `dir` holds at least one non-empty per-slot WAL file — i.e. a
/// previous incarnation left durable history behind.
fn wal_dir_has_records(dir: &Path) -> bool {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return false;
    };
    rd.filter_map(|e| e.ok()).any(|e| {
        e.path()
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("wal_slot_") && n.ends_with(".log"))
            && e.metadata().map(|m| m.len() > 0).unwrap_or(false)
    })
}

impl Database {
    /// Open a kernel: build the buffer pool, WAL hub, runtime and GC, wire
    /// the cross-layer hooks (write barrier, worker duties) — and, when the
    /// data directory holds a previous incarnation's WAL, replay every
    /// committed transaction before accepting new work.
    ///
    /// Recovery protocol (crash-safe at every step):
    ///
    /// 1. If `wal/` holds records, it is renamed to `wal.recovering/`
    ///    *before* the new hub truncates the slot files. If
    ///    `wal.recovering/` already exists, a previous recovery itself
    ///    crashed — that directory wins and any half-rebuilt `wal/` is
    ///    discarded, which makes recovery idempotent.
    /// 2. The catalog is rebuilt from the manifest (creation order ⇒ same
    ///    table ids), then committed transactions are replayed in commit-
    ///    timestamp order.
    /// 3. The recovered history is re-logged into the fresh WAL and
    ///    flushed (there is no checkpoint: the log is the only durable
    ///    copy of hot data), the global clock is advanced past the highest
    ///    recovered commit timestamp, and only then is
    ///    `wal.recovering/` deleted.
    pub fn open(cfg: KernelConfig) -> Result<Arc<Self>> {
        cfg.validate()?;
        std::fs::create_dir_all(&cfg.data_dir)?;
        // Live telemetry + watchdog: `cfg` wins; the environment enables
        // either without touching code (`PHOEBE_TELEMETRY=<addr>`,
        // `PHOEBE_WATCHDOG=<incident dir>`).
        let telemetry_cfg = cfg.telemetry.clone().or_else(|| {
            std::env::var("PHOEBE_TELEMETRY")
                .ok()
                .filter(|s| !s.is_empty())
                .map(|addr| TelemetryConfig { addr })
        });
        let watchdog_cfg = cfg.watchdog.clone().or_else(|| {
            std::env::var("PHOEBE_WATCHDOG").ok().filter(|s| !s.is_empty()).map(|dir| {
                WatchdogConfig {
                    incident_dir: Some(PathBuf::from(dir)),
                    ..WatchdogConfig::default()
                }
            })
        });
        // Flight recorder: `cfg.trace` wins; `PHOEBE_TRACE=<path>` enables
        // recording + shutdown export without touching code. Telemetry and
        // the watchdog both serve flight-recorder snapshots, so either
        // implies an in-memory recorder (no shutdown export) when no
        // explicit trace config was given.
        let trace_cfg = cfg.trace.clone().or_else(|| {
            std::env::var("PHOEBE_TRACE").ok().filter(|s| !s.is_empty()).map(TraceConfig::to_file)
        });
        let observing = telemetry_cfg.is_some() || watchdog_cfg.is_some();
        let tracer = Arc::new(match (&trace_cfg, observing) {
            (Some(tc), _) => Tracer::new(cfg.workers, tc.ring_capacity),
            (None, true) => Tracer::new(cfg.workers, TraceConfig::default().ring_capacity),
            (None, false) => Tracer::disabled(),
        });
        let trace_path = trace_cfg.and_then(|tc| tc.path);
        let (fs, sim): (Arc<dyn FaultFs>, Option<Arc<SimFs>>) = match &cfg.fault {
            Some(fc) => {
                let s = SimFs::new(fc.clone());
                (Arc::clone(&s) as Arc<dyn FaultFs>, Some(s))
            }
            None => (Arc::new(OsFs), None),
        };

        // Step 1: secure the previous incarnation's log before the new
        // writers truncate it.
        let wal_dir = cfg.data_dir.join("wal");
        let rec_dir = cfg.data_dir.join("wal.recovering");
        if rec_dir.exists() {
            if wal_dir.exists() {
                std::fs::remove_dir_all(&wal_dir)?;
            }
        } else if wal_dir_has_records(&wal_dir) {
            std::fs::rename(&wal_dir, &rec_dir)?;
        }
        // The durable image is plain files (even under SimFs the durable
        // layer is a real file), so recovery always reads the real fs.
        let had_recovery = rec_dir.exists();
        let recovery_start = Instant::now();
        let (recovered, scan) = if had_recovery {
            recover_dir_stats(&rec_dir)?
        } else {
            (Vec::new(), WalScanStats::default())
        };
        let recovery = RecoveryInfo {
            txns: recovered.len(),
            max_cts: recovered.iter().map(|t| t.cts).max().unwrap_or(0),
            max_gsn: recovered.iter().map(|t| t.max_gsn).max().unwrap_or(0),
            records: scan.records,
            tail_bytes_discarded: scan.tail_bytes_discarded,
        };

        let metrics = Arc::new(Metrics::with_tracer(cfg.workers, Arc::clone(&tracer)));
        let pool = BufferPool::new_with_fs(
            cfg.buffer_frames,
            cfg.workers,
            &cfg.data_dir,
            Arc::clone(&metrics),
            fs.as_ref(),
        )?;
        let total_slots = cfg.total_slots() + EXTERNAL_SLOTS;
        let wal = WalHub::with_fs(
            &wal_dir,
            total_slots,
            2,
            Duration::from_micros(cfg.wal_group_commit_us),
            cfg.wal_sync,
            Arc::clone(&metrics),
            fs,
        )?;
        pool.set_wal_barrier(Arc::new(HubBarrier(Arc::clone(&wal))));
        let arenas: Vec<_> = (0..total_slots).map(|_| Arc::new(UndoArena::new())).collect();
        let twins = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(arenas.clone(), Arc::clone(&twins));
        let db = Arc::new(Database {
            active: ActiveTxnTable::new(total_slots),
            tuple_locks: (0..total_slots).map(|_| Default::default()).collect(),
            arenas,
            twins,
            gc,
            catalog: SnapshotList::default(),
            by_name: RankedRwLock::new(Rank::Db, "db.by_name", HashMap::new()),
            ddl_log: RankedMutex::new(Rank::Db, "db.ddl_log", Vec::new()),
            sim,
            tracer,
            trace_path: RankedMutex::new(Rank::Db, "db.trace_path", trace_path),
            recovery,
            next_table_id: AtomicU32::new(1),
            external_free: RankedMutex::new(
                Rank::Db,
                "db.external_free",
                (cfg.total_slots()..total_slots).rev().collect(),
            ),
            txns_since_gc: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            runtime: RankedRwLock::new(Rank::Db, "db.runtime", None),
            reporter_stops: RankedMutex::new(Rank::Db, "db.reporter_stops", Vec::new()),
            telemetry: RankedMutex::new(Rank::Db, "db.telemetry", None),
            watchdog: RankedMutex::new(Rank::Db, "db.watchdog", None),
            clock: phoebe_txn::GlobalClock::new(),
            metrics,
            pool,
            wal,
            cfg,
        });

        // Step 2: rebuild the catalog with the original creation order,
        // then replay committed history in cts order.
        db.load_manifest()?;
        if !recovered.is_empty() {
            db.apply_recovered(&recovered)?;
            // Step 3: the fresh WAL must carry the full history again.
            db.relog_recovered(&recovered)?;
            db.clock.advance_to(recovery.max_cts);
        }
        if rec_dir.exists() {
            std::fs::remove_dir_all(&rec_dir)?;
        }
        if had_recovery {
            // Recovery is the one open-path latency a user actually waits
            // behind; book the end-to-end scan + apply + re-log cost.
            let dur_ns = recovery_start.elapsed().as_nanos() as u64;
            db.metrics.add(Counter::RecoveryRecordsReplayed, recovery.records);
            db.metrics.add(Counter::RecoveryTailBytesDiscarded, recovery.tail_bytes_discarded);
            db.metrics.record_latency(LatencySite::RecoveryReplay, dur_ns);
            db.tracer.span_dur(EventKind::RecoveryReplay, 0, dur_ns, recovery.records);
        }

        // Start the co-routine pool and install the worker duties.
        let mut rt_cfg = RuntimeConfig::new(db.cfg.workers, db.cfg.slots_per_worker);
        rt_cfg.tracer = Arc::clone(&db.tracer);
        let rt = Runtime::new(rt_cfg);
        rt.set_hook(Arc::new(KernelHook { db: Arc::downgrade(&db) }));
        *db.runtime.write() = Some(rt);

        // Observability plane last: both only hold weak kernel references,
        // so they observe a fully wired kernel and never keep one alive.
        if let Some(wc) = watchdog_cfg {
            let handle = crate::watchdog::start_watchdog(&db, wc);
            eprintln!("phoebe: watchdog armed, incidents at {}", handle.incident_dir().display());
            *db.watchdog.lock() = Some(handle);
        }
        if let Some(tc) = telemetry_cfg {
            let server =
                TelemetryServer::start(&tc.addr, crate::telemetry::KernelTelemetry::new(&db))?;
            // The bench harness and scripts/metrics_smoke.sh parse this
            // line to find the resolved (possibly ephemeral) port.
            eprintln!("phoebe: telemetry listening on http://{}", server.local_addr());
            *db.telemetry.lock() = Some(server);
        }
        Ok(db)
    }

    /// The telemetry endpoint's bound address, when the server is running
    /// (resolves a configured port 0 to the actual ephemeral port).
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.lock().as_ref().map(|s| s.local_addr())
    }

    /// The seeded fault-injection disk, when this kernel was opened with
    /// `cfg.fault` set (crash-consistency tests arm and fire it).
    pub fn fault_sim(&self) -> Option<&Arc<SimFs>> {
        self.sim.as_ref()
    }

    /// What `open` found and replayed from a previous incarnation's WAL.
    pub fn recovery_info(&self) -> RecoveryInfo {
        self.recovery
    }

    /// The kernel flight recorder — disabled (one relaxed atomic load per
    /// emit site) unless `cfg.trace` or `PHOEBE_TRACE` enabled it.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Drain the flight recorder's rings and write Chrome trace-event
    /// JSON to `path` (open it at `ui.perfetto.dev`). Draining does not
    /// consume: the rings keep recording.
    pub fn write_trace(&self, path: &Path) -> Result<()> {
        self.tracer.write_chrome_json(path)?;
        Ok(())
    }

    /// One-shot shutdown export to the configured trace path, if any.
    fn export_trace_on_shutdown(&self) {
        if let Some(path) = self.trace_path.lock().take() {
            if let Err(e) = self.tracer.write_chrome_json(&path) {
                eprintln!("phoebe: failed to write trace to {}: {e}", path.display());
            } else {
                eprintln!("phoebe: trace written to {}", path.display());
            }
        }
    }

    /// The co-routine runtime (spawn transactions through this).
    pub fn runtime(&self) -> Arc<Runtime> {
        self.runtime.read().clone().expect("runtime running")
    }

    /// The runtime, or `None` once shutdown has taken it.
    pub(crate) fn try_runtime(&self) -> Option<Arc<Runtime>> {
        self.runtime.read().clone()
    }

    pub(crate) fn reporter_stops(&self) -> &RankedMutex<Vec<Arc<std::sync::atomic::AtomicBool>>> {
        &self.reporter_stops
    }

    /// Flush WAL, stop the runtime and background machinery.
    pub fn shutdown(&self) {
        self.stop_observability();
        self.stop_reporters();
        if let Some(rt) = self.runtime.write().take() {
            rt.shutdown();
        }
        let _ = self.wal.flush_all();
        self.wal.shutdown();
        self.export_trace_on_shutdown();
    }

    /// Stop the telemetry server and watchdog (joining their threads)
    /// before anything else is torn down, so no sampler observes a
    /// half-dead kernel.
    fn stop_observability(&self) {
        if let Some(mut w) = self.watchdog.lock().take() {
            w.shutdown();
        }
        if let Some(mut t) = self.telemetry.lock().take() {
            t.shutdown();
        }
    }

    fn stop_reporters(&self) {
        for stop in self.reporter_stops.lock().drain(..) {
            stop.store(true, Ordering::Release);
        }
    }

    pub(crate) fn arena(&self, slot: usize) -> &Arc<UndoArena> {
        &self.arenas[slot]
    }

    /// Total task slots including the external pool.
    pub fn total_slots(&self) -> usize {
        self.arenas.len()
    }

    pub(crate) fn checkout_external_slot(&self) -> usize {
        self.external_free
            .lock()
            .pop()
            .expect("external slot pool exhausted: too many concurrent non-pool transactions")
    }

    pub(crate) fn return_external_slot(&self, slot: usize) {
        self.external_free.lock().push(slot);
    }

    pub(crate) fn note_txn_done(&self) {
        if let Some(w) = phoebe_common::metrics::current_worker() {
            if w < self.txns_since_gc.len() {
                self.txns_since_gc[w].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Create a table. Table ids are assigned in creation order, which is
    /// what ties WAL records back to relations at recovery.
    ///
    /// Idempotent: re-creating an existing table with an identical schema
    /// returns the live entry (so application setup code can run unchanged
    /// against a recovered kernel); a schema mismatch is an error.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<TableEntry>> {
        self.create_table_inner(name, schema, true)
    }

    fn create_table_inner(
        &self,
        name: &str,
        schema: Schema,
        persist: bool,
    ) -> Result<Arc<TableEntry>> {
        // The name map's write lock serializes all DDL, so the snapshot
        // position recorded below matches the push and id assignment stays
        // aligned with creation order.
        let mut by_name = self.by_name.write();
        if let Some(&idx) = by_name.get(name) {
            let existing = Arc::clone(&self.catalog.load()[idx]);
            return if existing.schema == schema {
                Ok(existing)
            } else {
                Err(PhoebeError::Config(format!(
                    "table '{name}' already exists with a different schema"
                )))
            };
        }
        let id = TableId(self.next_table_id.fetch_add(1, Ordering::Relaxed));
        let tree =
            BTree::create(Arc::clone(&self.pool), id, TreeKind::Table, Arc::clone(&self.metrics))?;
        let types: Vec<ColType> = schema.types().to_vec();
        let frozen =
            FrozenStore::create(&self.cfg.data_dir.join(format!("frozen_{}.db", id.raw())), types)?;
        let entry = Arc::new(TableEntry::new(id, name.to_owned(), schema.clone(), tree, frozen));
        let idx = self.catalog.len();
        self.catalog.push(Arc::clone(&entry));
        by_name.insert(name.to_owned(), idx);
        if persist {
            self.persist_ddl(ManifestEntry::Table { name: name.to_owned(), schema })?;
        }
        Ok(entry)
    }

    /// Create a secondary index over `key_cols` of `table`.
    ///
    /// Idempotent like [`Database::create_table`]: an existing index with
    /// the same name and definition is returned as-is.
    pub fn create_index(
        &self,
        table: &Arc<TableEntry>,
        name: &str,
        key_cols: Vec<usize>,
        unique: bool,
    ) -> Result<Arc<IndexEntry>> {
        self.create_index_inner(table, name, key_cols, unique, true)
    }

    fn create_index_inner(
        &self,
        table: &Arc<TableEntry>,
        name: &str,
        key_cols: Vec<usize>,
        unique: bool,
        persist: bool,
    ) -> Result<Arc<IndexEntry>> {
        let _by_name = self.by_name.write(); // serialize DDL (id order)
        if let Some(existing) = table.all_indexes().iter().find(|i| i.def.name == name) {
            return if existing.def.key_cols == key_cols && existing.def.unique == unique {
                Ok(Arc::clone(existing))
            } else {
                Err(PhoebeError::Config(format!(
                    "index '{name}' on '{}' already exists with a different definition",
                    table.name
                )))
            };
        }
        let id = TableId(self.next_table_id.fetch_add(1, Ordering::Relaxed));
        let tree =
            BTree::create(Arc::clone(&self.pool), id, TreeKind::Index, Arc::clone(&self.metrics))?;
        let entry = Arc::new(IndexEntry {
            id,
            def: IndexDef { name: name.to_owned(), key_cols: key_cols.clone(), unique },
            tree,
        });
        table.indexes.push(Arc::clone(&entry));
        if persist {
            self.persist_ddl(ManifestEntry::Index {
                table: table.name.clone(),
                name: name.to_owned(),
                unique,
                key_cols,
            })?;
        }
        Ok(entry)
    }

    /// Append a DDL op to the in-memory log and rewrite the on-disk
    /// manifest atomically.
    fn persist_ddl(&self, entry: ManifestEntry) -> Result<()> {
        let mut log = self.ddl_log.lock();
        log.push(entry);
        manifest::store(&self.cfg.data_dir, &log)
    }

    /// Rebuild the catalog from the on-disk manifest (recovery step 2).
    /// Re-runs the original DDL in creation order, so ids come out equal.
    fn load_manifest(self: &Arc<Self>) -> Result<()> {
        let entries = manifest::load(&self.cfg.data_dir)?;
        for entry in &entries {
            match entry {
                ManifestEntry::Table { name, schema } => {
                    self.create_table_inner(name, schema.clone(), false)?;
                }
                ManifestEntry::Index { table, name, unique, key_cols } => {
                    let t = self.table(table)?;
                    self.create_index_inner(&t, name, key_cols.clone(), *unique, false)?;
                }
            }
        }
        *self.ddl_log.lock() = entries;
        Ok(())
    }

    /// Look a table up by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableEntry>> {
        let by_name = self.by_name.read();
        let idx = *by_name
            .get(name)
            .ok_or_else(|| PhoebeError::internal(format!("no table named '{name}'")))?;
        Ok(Arc::clone(&self.catalog.load()[idx]))
    }

    /// Look a table up by id (WAL replay, GC callbacks).
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<TableEntry>> {
        self.catalog.load().iter().find(|t| t.id == id).cloned().ok_or(PhoebeError::NoSuchTable(id))
    }

    pub fn tables(&self) -> Vec<Arc<TableEntry>> {
        self.catalog.load().to_vec()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction at `iso`. Inside the co-routine pool the current
    /// task slot is used; external threads check out a reserved slot.
    pub fn begin(self: &Arc<Self>, iso: IsolationLevel) -> Transaction {
        Transaction::start(Arc::clone(self), iso)
    }

    // ------------------------------------------------------------------
    // Garbage collection (§7.3)
    // ------------------------------------------------------------------

    /// Reclaim one slot's UNDO arena, physically deleting tuples whose
    /// deletion became globally visible.
    pub fn collect_slot(&self, slot: usize, min_active: Timestamp) -> GcStats {
        let stats = self.gc.collect_slot(slot, min_active, |log| {
            self.physically_delete(log);
        });
        if stats.undo_reclaimed > 0 {
            self.metrics.add(Counter::UndoReclaimed, stats.undo_reclaimed as u64);
        }
        stats
    }

    /// Full GC round across all slots + twin-table reclamation.
    pub fn collect_all(&self) -> GcStats {
        let min_active = self.active.min_active_start(self.clock.current());
        let stats = self.gc.collect_all(min_active, |log| {
            self.physically_delete(log);
        });
        self.metrics.add(Counter::UndoReclaimed, stats.undo_reclaimed as u64);
        stats
    }

    /// Physically remove a deleted tuple (and its index entries) once its
    /// deletion is globally visible (§7.3 "GC for deleted tuples").
    fn physically_delete(&self, log: &Arc<UndoLog>) {
        let Ok(table) = self.table_by_id(log.table) else {
            return;
        };
        match &log.op {
            UndoOp::Delete { row_image } => {
                let _ = table.tree.table_modify(log.row, |leaf, idx, _, _| {
                    leaf.mark_deleted(idx);
                });
                for index in table.all_indexes() {
                    let key = index.key_for(&table.schema, row_image, log.row);
                    let _ = index.tree.index_remove(&key);
                }
            }
            UndoOp::FrozenDelete { row_image } => {
                for index in table.all_indexes() {
                    let key = index.key_for(&table.schema, row_image, log.row);
                    let _ = index.tree.index_remove(&key);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Recovery (§8)
    // ------------------------------------------------------------------

    /// Replay a WAL directory into this kernel. The catalog must already
    /// contain the tables with the same creation order (catalog operations
    /// are not logged — the schema is application-defined, as with the
    /// paper's UDF-driven deployments). Returns replayed transaction count.
    ///
    /// `Database::open` runs this automatically on a directory with
    /// history; the public method remains for replaying a foreign log into
    /// a fresh kernel (diagnostics, log shipping).
    pub fn replay_wal(self: &Arc<Self>, dir: &std::path::Path) -> Result<usize> {
        let txns = recover_dir(dir)?;
        self.apply_recovered(&txns)?;
        Ok(txns.len())
    }

    /// Apply recovered transactions (already filtered to committed ones,
    /// sorted by cts) to the live tables.
    ///
    /// Two passes. Inserts go first, sorted by `(table, row)`: the PAX
    /// leaves require ascending row-id appends, and commit-timestamp order
    /// across concurrent writers does not follow row-id allocation order
    /// (a later-allocated row can commit first). Reordering inserts is
    /// safe — row ids are never reused and MVCC guarantees any update or
    /// delete of a row commits after the insert that created it — so the
    /// second pass replays updates/deletes in cts order on top and
    /// reproduces the admitted serial history exactly.
    fn apply_recovered(self: &Arc<Self>, txns: &[RecoveredTxn]) -> Result<()> {
        let mut inserts: Vec<_> = txns
            .iter()
            .flat_map(|t| t.ops.iter())
            .filter_map(|op| match op {
                RecordBody::Insert { table, row, tuple } => Some((*table, *row, tuple)),
                _ => None,
            })
            .collect();
        inserts.sort_by_key(|(table, row, _)| (*table, *row));
        for (table, row, tuple) in inserts {
            let t = self.table_by_id(table)?;
            t.bump_row_id(row);
            t.tree.table_append(&t.layout, row, tuple, |_, _, _, _| {})?;
            for index in t.all_indexes() {
                let key = index.key_for(&t.schema, tuple, row);
                index.tree.index_insert(&key, row)?;
            }
        }
        for txn in txns {
            for op in txn.ops.iter().cloned() {
                match op {
                    RecordBody::Insert { .. } => {}
                    RecordBody::Update { table, row, delta } => {
                        let t = self.table_by_id(table)?;
                        t.tree.table_modify(row, |leaf, idx, _, _| {
                            for (col, v) in &delta {
                                leaf.write_col(&t.layout, idx, *col as usize, v);
                            }
                        })?;
                    }
                    RecordBody::Delete { table, row } => {
                        let t = self.table_by_id(table)?;
                        // Frozen rows: tombstone; hot rows: physical remove.
                        if row.raw() <= t.frozen.max_frozen_row_id() {
                            t.frozen.mark_deleted(row);
                            continue;
                        }
                        let image = t
                            .tree
                            .table_read(row, |leaf, idx, _, _| leaf.read_row(&t.layout, idx))?;
                        if let Some(image) = image {
                            t.tree.table_modify(row, |leaf, idx, _, _| {
                                leaf.mark_deleted(idx);
                            })?;
                            for index in t.all_indexes() {
                                let key = index.key_for(&t.schema, &image, row);
                                let _ = index.tree.index_remove(&key);
                            }
                        }
                    }
                    RecordBody::Begin | RecordBody::Commit { .. } | RecordBody::Abort => {}
                }
            }
        }
        Ok(())
    }

    /// Re-log recovered history into the fresh WAL and flush it durable
    /// (recovery step 3). Without this, deleting `wal.recovering/` would
    /// leave the recovered rows with no durable copy anywhere — the kernel
    /// has no checkpoint, the log *is* the database.
    ///
    /// Everything goes to slot 0 with a constant GSN: within one writer
    /// the LSN preserves append order, and we append in cts order, so a
    /// subsequent recovery reassembles the same history.
    fn relog_recovered(&self, txns: &[RecoveredTxn]) -> Result<()> {
        for t in txns {
            self.wal.log_op(0, t.xid, 1, RecordBody::Begin);
            for op in &t.ops {
                self.wal.log_op(0, t.xid, 1, op.clone());
            }
            self.wal.log_op(0, t.xid, 1, RecordBody::Commit { cts: t.cts });
        }
        self.wal.flush_all()?;
        Ok(())
    }

    /// Convenience for tests/diagnostics: count visible rows of a table by
    /// scanning leaves + the frozen store.
    pub fn approximate_row_count(&self, table: &Arc<TableEntry>) -> Result<usize> {
        let mut n = 0usize;
        table.tree.table_for_each_leaf(|_, leaf| {
            n += leaf.live_rows();
            true
        })?;
        table.frozen.scan(|_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.stop_observability();
        self.stop_reporters();
        if let Some(rt) = self.runtime.write().take() {
            rt.shutdown();
        }
        self.wal.shutdown();
        self.export_trace_on_shutdown();
    }
}

/// Helper for examples and tests: a `Value` vector from mixed literals.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$(phoebe_storage::schema::Value::from($v)),*]
    };
}
