//! The PhoebeDB kernel: wiring storage, transactions, WAL and the
//! co-routine runtime into one database object (§4, Figure 1).

use crate::catalog::{IndexDef, IndexEntry, TableEntry};
use crate::txn_api::Transaction;
use parking_lot::{Mutex, RwLock};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::{TableId, Timestamp};
use phoebe_common::metrics::{Component, Counter, Metrics};
use phoebe_common::snapshot::SnapshotList;
use phoebe_common::KernelConfig;
use phoebe_runtime::{Runtime, RuntimeConfig, WorkerHook};
use phoebe_storage::schema::{ColType, Schema};
use phoebe_storage::{BTree, BufferPool, FrozenStore, TreeKind};
use phoebe_txn::locks::IsolationLevel;
use phoebe_txn::{ActiveTxnTable, GcEngine, GcStats, TwinRegistry, UndoArena, UndoLog, UndoOp};
use phoebe_wal::{recover_dir, RecordBody, WalHub};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Extra task-slot identities reserved for threads outside the co-routine
/// pool (loaders, tests, maintenance). They get their own UNDO arenas and
/// WAL writers so the slot-serial invariants hold for them too.
pub const EXTERNAL_SLOTS: usize = 8;

/// The database kernel.
pub struct Database {
    pub cfg: KernelConfig,
    pub metrics: Arc<Metrics>,
    pub clock: phoebe_txn::GlobalClock,
    pub pool: Arc<BufferPool>,
    pub wal: Arc<WalHub>,
    pub twins: Arc<TwinRegistry>,
    pub active: ActiveTxnTable,
    arenas: Vec<Arc<UndoArena>>,
    pub tuple_locks: Vec<phoebe_txn::locks::TupleLockSlot>,
    gc: GcEngine,
    /// Table list as an immutable snapshot (see [`SnapshotList`]):
    /// `table_by_id` runs per UNDO log during rollback and GC, so it must
    /// not serialize on a catalog lock.
    catalog: SnapshotList<Arc<TableEntry>>,
    by_name: RwLock<HashMap<String, usize>>,
    next_table_id: AtomicU32,
    external_free: Mutex<Vec<usize>>,
    txns_since_gc: Vec<AtomicU64>,
    runtime: RwLock<Option<Arc<Runtime>>>,
    /// Stop flags of live [`crate::stats::StatsReporter`] co-routines;
    /// raised before the runtime drains so reporters never wedge shutdown.
    reporter_stops: Mutex<Vec<Arc<std::sync::atomic::AtomicBool>>>,
}

struct HubBarrier(Arc<WalHub>);

impl phoebe_storage::WalBarrier for HubBarrier {
    fn ensure_durable(&self, gsn: u64) {
        self.0.ensure_durable_gsn_blocking(gsn);
    }
}

/// Per-worker background duties (§7.1, Figure 6): page swaps when the
/// partition's free frames fall below the watermark, and GC after every
/// `gc_every_txns` transactions — run on the worker that owns the data.
struct KernelHook {
    db: Weak<Database>,
}

impl WorkerHook for KernelHook {
    fn tick(&self, worker: usize) {
        let Some(db) = self.db.upgrade() else {
            return;
        };
        // Page-swap duty.
        let fpp = db.pool.total_frames() / db.pool.partition_count();
        let watermark = ((fpp as f64) * db.cfg.free_frame_watermark) as usize;
        if db.pool.free_frames(worker) < watermark {
            let _t = db.metrics.timer(Component::Buffer);
            db.pool.stage_cooling(worker, 8);
            for _ in 0..8 {
                if db.pool.free_frames(worker) >= watermark {
                    break;
                }
                if !db.pool.evict_one(worker).unwrap_or(false) {
                    break;
                }
            }
        }
        // GC duty for this worker's slots.
        let due = db.txns_since_gc[worker].load(Ordering::Relaxed) >= db.cfg.gc_every_txns;
        if due {
            db.txns_since_gc[worker].store(0, Ordering::Relaxed);
            let _t = db.metrics.timer(Component::Gc);
            let min_active = db.active.min_active_start(db.clock.current());
            let spw = db.cfg.slots_per_worker;
            for slot in worker * spw..(worker + 1) * spw {
                db.collect_slot(slot, min_active);
            }
        }
    }
}

impl Database {
    /// Open a kernel: build the buffer pool, WAL hub, runtime and GC, and
    /// wire the cross-layer hooks (write barrier, worker duties).
    pub fn open(cfg: KernelConfig) -> Result<Arc<Self>> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let metrics = Arc::new(Metrics::new(cfg.workers));
        let pool =
            BufferPool::new(cfg.buffer_frames, cfg.workers, &cfg.data_dir, Arc::clone(&metrics))?;
        let total_slots = cfg.total_slots() + EXTERNAL_SLOTS;
        let wal = WalHub::new(
            &cfg.data_dir.join("wal"),
            total_slots,
            2,
            Duration::from_micros(cfg.wal_group_commit_us),
            cfg.wal_sync,
            Arc::clone(&metrics),
        )?;
        pool.set_wal_barrier(Arc::new(HubBarrier(Arc::clone(&wal))));
        let arenas: Vec<_> = (0..total_slots).map(|_| Arc::new(UndoArena::new())).collect();
        let twins = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(arenas.clone(), Arc::clone(&twins));
        let db = Arc::new(Database {
            active: ActiveTxnTable::new(total_slots),
            tuple_locks: (0..total_slots).map(|_| Default::default()).collect(),
            arenas,
            twins,
            gc,
            catalog: SnapshotList::default(),
            by_name: RwLock::new(HashMap::new()),
            next_table_id: AtomicU32::new(1),
            external_free: Mutex::new((cfg.total_slots()..total_slots).rev().collect()),
            txns_since_gc: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            runtime: RwLock::new(None),
            reporter_stops: Mutex::new(Vec::new()),
            clock: phoebe_txn::GlobalClock::new(),
            metrics,
            pool,
            wal,
            cfg,
        });
        // Start the co-routine pool and install the worker duties.
        let rt = Runtime::new(RuntimeConfig::new(db.cfg.workers, db.cfg.slots_per_worker));
        rt.set_hook(Arc::new(KernelHook { db: Arc::downgrade(&db) }));
        *db.runtime.write() = Some(rt);
        Ok(db)
    }

    /// The co-routine runtime (spawn transactions through this).
    pub fn runtime(&self) -> Arc<Runtime> {
        self.runtime.read().clone().expect("runtime running")
    }

    /// The runtime, or `None` once shutdown has taken it.
    pub(crate) fn try_runtime(&self) -> Option<Arc<Runtime>> {
        self.runtime.read().clone()
    }

    pub(crate) fn reporter_stops(&self) -> &Mutex<Vec<Arc<std::sync::atomic::AtomicBool>>> {
        &self.reporter_stops
    }

    /// Flush WAL, stop the runtime and background machinery.
    pub fn shutdown(&self) {
        self.stop_reporters();
        if let Some(rt) = self.runtime.write().take() {
            rt.shutdown();
        }
        let _ = self.wal.flush_all();
        self.wal.shutdown();
    }

    fn stop_reporters(&self) {
        for stop in self.reporter_stops.lock().drain(..) {
            stop.store(true, Ordering::Release);
        }
    }

    pub(crate) fn arena(&self, slot: usize) -> &Arc<UndoArena> {
        &self.arenas[slot]
    }

    /// Total task slots including the external pool.
    pub fn total_slots(&self) -> usize {
        self.arenas.len()
    }

    pub(crate) fn checkout_external_slot(&self) -> usize {
        self.external_free
            .lock()
            .pop()
            .expect("external slot pool exhausted: too many concurrent non-pool transactions")
    }

    pub(crate) fn return_external_slot(&self, slot: usize) {
        self.external_free.lock().push(slot);
    }

    pub(crate) fn note_txn_done(&self) {
        if let Some(w) = phoebe_common::metrics::current_worker() {
            if w < self.txns_since_gc.len() {
                self.txns_since_gc[w].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Create a table. Table ids are assigned in creation order, which is
    /// what ties WAL records back to relations at recovery.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<TableEntry>> {
        let id = TableId(self.next_table_id.fetch_add(1, Ordering::Relaxed));
        let tree =
            BTree::create(Arc::clone(&self.pool), id, TreeKind::Table, Arc::clone(&self.metrics))?;
        let types: Vec<ColType> = schema.types().to_vec();
        let frozen =
            FrozenStore::create(&self.cfg.data_dir.join(format!("frozen_{}.db", id.raw())), types)?;
        let entry = Arc::new(TableEntry::new(id, name.to_owned(), schema, tree, frozen));
        // The name map's write lock serializes creations, so the index
        // recorded here matches the snapshot position.
        let mut by_name = self.by_name.write();
        let idx = self.catalog.len();
        self.catalog.push(Arc::clone(&entry));
        by_name.insert(name.to_owned(), idx);
        Ok(entry)
    }

    /// Create a secondary index over `key_cols` of `table`.
    pub fn create_index(
        &self,
        table: &Arc<TableEntry>,
        name: &str,
        key_cols: Vec<usize>,
        unique: bool,
    ) -> Result<Arc<IndexEntry>> {
        let id = TableId(self.next_table_id.fetch_add(1, Ordering::Relaxed));
        let tree =
            BTree::create(Arc::clone(&self.pool), id, TreeKind::Index, Arc::clone(&self.metrics))?;
        let entry = Arc::new(IndexEntry {
            id,
            def: IndexDef { name: name.to_owned(), key_cols, unique },
            tree,
        });
        table.indexes.push(Arc::clone(&entry));
        Ok(entry)
    }

    /// Look a table up by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableEntry>> {
        let by_name = self.by_name.read();
        let idx = *by_name
            .get(name)
            .ok_or_else(|| PhoebeError::internal(format!("no table named '{name}'")))?;
        Ok(Arc::clone(&self.catalog.load()[idx]))
    }

    /// Look a table up by id (WAL replay, GC callbacks).
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<TableEntry>> {
        self.catalog.load().iter().find(|t| t.id == id).cloned().ok_or(PhoebeError::NoSuchTable(id))
    }

    pub fn tables(&self) -> Vec<Arc<TableEntry>> {
        self.catalog.load().to_vec()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction at `iso`. Inside the co-routine pool the current
    /// task slot is used; external threads check out a reserved slot.
    pub fn begin(self: &Arc<Self>, iso: IsolationLevel) -> Transaction {
        Transaction::start(Arc::clone(self), iso)
    }

    // ------------------------------------------------------------------
    // Garbage collection (§7.3)
    // ------------------------------------------------------------------

    /// Reclaim one slot's UNDO arena, physically deleting tuples whose
    /// deletion became globally visible.
    pub fn collect_slot(&self, slot: usize, min_active: Timestamp) -> GcStats {
        let stats = self.gc.collect_slot(slot, min_active, |log| {
            self.physically_delete(log);
        });
        if stats.undo_reclaimed > 0 {
            self.metrics.add(Counter::UndoReclaimed, stats.undo_reclaimed as u64);
        }
        stats
    }

    /// Full GC round across all slots + twin-table reclamation.
    pub fn collect_all(&self) -> GcStats {
        let min_active = self.active.min_active_start(self.clock.current());
        let stats = self.gc.collect_all(min_active, |log| {
            self.physically_delete(log);
        });
        self.metrics.add(Counter::UndoReclaimed, stats.undo_reclaimed as u64);
        stats
    }

    /// Physically remove a deleted tuple (and its index entries) once its
    /// deletion is globally visible (§7.3 "GC for deleted tuples").
    fn physically_delete(&self, log: &Arc<UndoLog>) {
        let Ok(table) = self.table_by_id(log.table) else {
            return;
        };
        match &log.op {
            UndoOp::Delete { row_image } => {
                let _ = table.tree.table_modify(log.row, |leaf, idx, _, _| {
                    leaf.mark_deleted(idx);
                });
                for index in table.all_indexes() {
                    let key = index.key_for(&table.schema, row_image, log.row);
                    let _ = index.tree.index_remove(&key);
                }
            }
            UndoOp::FrozenDelete { row_image } => {
                for index in table.all_indexes() {
                    let key = index.key_for(&table.schema, row_image, log.row);
                    let _ = index.tree.index_remove(&key);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Recovery (§8)
    // ------------------------------------------------------------------

    /// Replay a WAL directory into this kernel. The catalog must already
    /// contain the tables with the same creation order (catalog operations
    /// are not logged — the schema is application-defined, as with the
    /// paper's UDF-driven deployments). Returns replayed transaction count.
    pub fn replay_wal(self: &Arc<Self>, dir: &std::path::Path) -> Result<usize> {
        let txns = recover_dir(dir)?;
        let n = txns.len();
        for txn in txns {
            for op in txn.ops {
                match op {
                    RecordBody::Insert { table, row, tuple } => {
                        let t = self.table_by_id(table)?;
                        t.bump_row_id(row);
                        t.tree.table_append(&t.layout, row, &tuple, |_, _, _, _| {})?;
                        for index in t.all_indexes() {
                            let key = index.key_for(&t.schema, &tuple, row);
                            index.tree.index_insert(&key, row)?;
                        }
                    }
                    RecordBody::Update { table, row, delta } => {
                        let t = self.table_by_id(table)?;
                        t.tree.table_modify(row, |leaf, idx, _, _| {
                            for (col, v) in &delta {
                                leaf.write_col(&t.layout, idx, *col as usize, v);
                            }
                        })?;
                    }
                    RecordBody::Delete { table, row } => {
                        let t = self.table_by_id(table)?;
                        // Frozen rows: tombstone; hot rows: physical remove.
                        if row.raw() <= t.frozen.max_frozen_row_id() {
                            t.frozen.mark_deleted(row);
                            continue;
                        }
                        let image = t
                            .tree
                            .table_read(row, |leaf, idx, _, _| leaf.read_row(&t.layout, idx))?;
                        if let Some(image) = image {
                            t.tree.table_modify(row, |leaf, idx, _, _| {
                                leaf.mark_deleted(idx);
                            })?;
                            for index in t.all_indexes() {
                                let key = index.key_for(&t.schema, &image, row);
                                let _ = index.tree.index_remove(&key);
                            }
                        }
                    }
                    RecordBody::Begin | RecordBody::Commit { .. } | RecordBody::Abort => {}
                }
            }
        }
        Ok(n)
    }

    /// Convenience for tests/diagnostics: count visible rows of a table by
    /// scanning leaves + the frozen store.
    pub fn approximate_row_count(&self, table: &Arc<TableEntry>) -> Result<usize> {
        let mut n = 0usize;
        table.tree.table_for_each_leaf(|_, leaf| {
            n += leaf.live_rows();
            true
        })?;
        table.frozen.scan(|_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.stop_reporters();
        if let Some(rt) = self.runtime.write().take() {
            rt.shutdown();
        }
        self.wal.shutdown();
    }
}

/// Helper for examples and tests: a `Value` vector from mixed literals.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$(phoebe_storage::schema::Value::from($v)),*]
    };
}
