//! [`Row`]: a schema-aware view over a tuple returned by the read API.
//!
//! `Transaction::read`, `lookup_unique` and `scan_index` used to hand back
//! bare `Vec<Value>` tuples, forcing callers to remember column positions.
//! `Row` keeps the tuple *and* its table's schema, so columns can be
//! addressed by name ([`Row::get`]) or with typed accessors, while staying
//! positionally compatible: it derefs to `[Value]`, supports `row[i]`, and
//! compares equal to a plain `Vec<Value>` with the same contents.

use crate::catalog::TableEntry;
use phoebe_storage::schema::Value;
use std::fmt;
use std::ops::{Deref, Index};
use std::sync::Arc;

/// One visible tuple plus the schema it was read through.
#[derive(Clone)]
pub struct Row {
    table: Arc<TableEntry>,
    values: Vec<Value>,
}

impl Row {
    pub(crate) fn new(table: Arc<TableEntry>, values: Vec<Value>) -> Row {
        Row { table, values }
    }

    /// The column named `col`, or `None` if the schema has no such column.
    pub fn try_get(&self, col: &str) -> Option<&Value> {
        self.table.schema.col_index(col).map(|i| &self.values[i])
    }

    /// The column named `col`.
    ///
    /// # Panics
    /// If the table's schema has no column with that name — a programming
    /// error on par with an out-of-bounds index.
    pub fn get(&self, col: &str) -> &Value {
        self.try_get(col)
            .unwrap_or_else(|| panic!("no column '{col}' in table '{}'", self.table.name))
    }

    /// Typed accessor: the named column as `i64`.
    pub fn i64(&self, col: &str) -> i64 {
        self.get(col).as_i64()
    }

    /// Typed accessor: the named column as `i32`.
    pub fn i32(&self, col: &str) -> i32 {
        self.get(col).as_i32()
    }

    /// Typed accessor: the named column as `f64`.
    pub fn f64(&self, col: &str) -> f64 {
        self.get(col).as_f64()
    }

    /// Typed accessor: the named column as `&str`.
    pub fn str(&self, col: &str) -> &str {
        self.get(col).as_str()
    }

    /// The table this row was read from.
    pub fn table(&self) -> &Arc<TableEntry> {
        &self.table
    }

    /// The tuple as a slice, in schema column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Unwrap into the positional tuple (the pre-`Row` representation).
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl Deref for Row {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.values
    }
}

impl Index<usize> for Row {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl PartialEq for Row {
    fn eq(&self, other: &Row) -> bool {
        self.values == other.values
    }
}

impl PartialEq<Vec<Value>> for Row {
    fn eq(&self, other: &Vec<Value>) -> bool {
        self.values == *other
    }
}

impl PartialEq<Row> for Vec<Value> {
    fn eq(&self, other: &Row) -> bool {
        *self == other.values
    }
}

impl PartialEq<[Value]> for Row {
    fn eq(&self, other: &[Value]) -> bool {
        self.values.as_slice() == other
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (i, v) in self.values.iter().enumerate() {
            m.entry(&self.table.schema.col_name(i), v);
        }
        m.finish()
    }
}
