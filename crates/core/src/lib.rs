//! PhoebeDB-RS: the kernel crate (§4, Figure 1).
//!
//! This crate assembles the paper's components into one database object:
//! the in-memory data-centric storage engine (`phoebe-storage`), the
//! transaction machinery (`phoebe-txn`), parallel WAL with RFA
//! (`phoebe-wal`) and the co-routine pool (`phoebe-runtime`), plus the
//! pieces that only make sense at kernel scope: the catalog, the
//! transaction API, temperature-based freezing/warming, worker background
//! duties, GC orchestration and WAL replay.
//!
//! # Quickstart
//!
//! ```no_run
//! use phoebe_core::{Database, IsolationLevel};
//! use phoebe_common::KernelConfig;
//! use phoebe_storage::schema::{ColType, Schema};
//!
//! let db = Database::open(KernelConfig::for_tests()).unwrap();
//! let accounts = db
//!     .create_table("accounts", Schema::new(vec![
//!         ("id", ColType::I64),
//!         ("balance", ColType::I64),
//!     ]))
//!     .unwrap();
//! let rt = db.runtime();
//! let db2 = db.clone();
//! let accounts2 = accounts.clone();
//! rt.spawn(async move {
//!     let mut tx = db2.begin(IsolationLevel::ReadCommitted);
//!     let row = tx.insert(&accounts2, vec![1i64.into(), 100i64.into()]).await.unwrap();
//!     tx.commit().await.unwrap();
//!     row
//! })
//! .join();
//! ```

pub mod catalog;
pub mod db;
pub mod keys;
pub mod manifest;
pub mod prelude;
pub mod row;
pub mod stats;
pub mod telemetry;
pub mod temperature;
pub mod txn_api;
pub mod watchdog;

pub use catalog::{IndexDef, IndexEntry, TableEntry};
pub use db::{Database, RecoveryInfo, EXTERNAL_SLOTS};
pub use keys::KeyBuilder;
pub use phoebe_common::{TelemetryConfig, TraceConfig, Tracer, WatchdogConfig};
pub use phoebe_txn::locks::IsolationLevel;
pub use row::Row;
pub use stats::{
    ComponentCost, CounterValue, KernelStats, LatencySummary, RuntimeGauges, StatsReporter,
    WorkerStateSummary,
};
pub use telemetry::KernelTelemetry;
pub use temperature::{FreezeStats, WarmStats};
pub use txn_api::Transaction;
pub use watchdog::WatchdogHandle;
