//! The transaction API (§6): PostgreSQL-compatible snapshot isolation over
//! in-place updates with in-memory UNDO.
//!
//! A [`Transaction`] runs on one task slot (its co-routine's slot inside
//! the pool, or a checked-out external slot), which determines its UNDO
//! arena, WAL writer and tuple-lock slot. Reads never block: Algorithm 1
//! reconstructs the visible version from the twin table's chain. Writes
//! acquire the tuple claim under the leaf latch; a write-write conflict
//! waits on the holder's transaction-ID lock, then retries (read
//! committed) or aborts if the holder committed (repeatable read, §6.2).
//!
//! Writes to rows behind the `max_frozen_row_id` watermark are out of
//! place (§5.2): the frozen row is tombstoned and, for updates, the new
//! version is inserted hot under a fresh row id.

use crate::catalog::{IndexEntry, TableEntry};
use crate::db::Database;
use crate::row::Row;
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::hist::LatencySite;
use phoebe_common::ids::{RowId, Timestamp, Xid};
use phoebe_common::metrics::{Component, Counter};
use phoebe_common::trace::EventKind;
use phoebe_runtime::Urgency;
use phoebe_storage::row_key;
use phoebe_storage::schema::Value;
use phoebe_txn::clock::Snapshot;
use phoebe_txn::locks::{IsolationLevel, TxnHandle, TxnOutcome};
use phoebe_txn::undo::{UndoLog, UndoOp};
use phoebe_txn::visibility::{resolve_visibility, Visibility};
use phoebe_wal::writer::RfaState;
use phoebe_wal::RecordBody;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Per-key delta closure for [`Transaction::multi_update_rmw`]:
/// `f(i, current_values)` returns the `(column, new_value)` pairs for
/// key `i`, evaluated under the leaf latch like
/// [`Transaction::update_rmw`]'s closure.
pub type BatchRmwFn<'a> = dyn Fn(usize, &[Value]) -> Vec<(usize, Value)> + Sync + 'a;

/// A read-modify-write delta function: given the current (conflict-resolved)
/// row image, produce the `(column, new_value)` pairs to apply.
pub type DeltaFn<'a> = dyn Fn(&[Value]) -> Vec<(usize, Value)> + Sync + 'a;

/// Outcome of one latched write attempt.
enum WriteAttempt {
    Done,
    /// Another transaction holds the tuple: wait on its ID lock.
    Wait(Arc<TxnHandle>),
    /// Repeatable read lost a write-write race to a committed writer.
    Conflict(Xid),
    /// The visible version is a deletion.
    Gone,
    /// The twin table died under us; refetch and retry.
    Retry,
}

/// An open transaction. Obtain via [`Database::begin`]; finish with
/// [`Transaction::commit`] or [`Transaction::abort`] (dropping an open
/// transaction rolls it back).
pub struct Transaction {
    db: Arc<Database>,
    slot: usize,
    external: bool,
    xid: Xid,
    start_ts: Timestamp,
    iso: IsolationLevel,
    snapshot: Snapshot,
    handle: Arc<TxnHandle>,
    undo: Vec<Arc<UndoLog>>,
    rfa: RfaState,
    wal_begun: bool,
    finished: bool,
    /// Reusable row-id buffer for index scans: one transaction runs many
    /// scans (TPC-C order-status, stock-level), and this keeps the
    /// candidate collection allocation-free after the first.
    scan_scratch: Vec<RowId>,
}

impl Transaction {
    pub(crate) fn start(db: Arc<Database>, iso: IsolationLevel) -> Transaction {
        let (slot, external) = match phoebe_runtime::current_slot() {
            Some(id) => (id.flat(db.cfg.slots_per_worker), false),
            None => (db.checkout_external_slot(), true),
        };
        let (xid, start_ts) = db.clock.begin();
        // O(1) snapshot acquisition (§6.1): one atomic load.
        let snapshot = db.clock.snapshot();
        db.active.begin(slot, start_ts);
        db.metrics.tracer().instant(EventKind::TxnBegin, slot as u32, 0, xid.raw());
        let handle = TxnHandle::new(xid);
        Transaction {
            db,
            slot,
            external,
            xid,
            start_ts,
            iso,
            snapshot,
            handle,
            undo: Vec::new(),
            rfa: RfaState::default(),
            wal_begun: false,
            finished: false,
            scan_scratch: Vec::new(),
        }
    }

    pub fn xid(&self) -> Xid {
        self.xid
    }

    pub fn slot(&self) -> usize {
        self.slot
    }

    pub fn isolation(&self) -> IsolationLevel {
        self.iso
    }

    /// The snapshot governing the next statement: fixed for repeatable
    /// read, refreshed per statement for read committed (§6.1).
    fn stmt_snapshot(&mut self) -> Snapshot {
        if self.iso == IsolationLevel::ReadCommitted {
            self.snapshot = self.db.clock.snapshot();
        }
        self.snapshot
    }

    fn ensure_wal_begin(&mut self) {
        if !self.wal_begun {
            let gsn = self.db.wal.current_gsn();
            self.db.wal.log_op(self.slot, self.xid, gsn, RecordBody::Begin);
            self.wal_begun = true;
        }
    }

    fn lock_timeout(&self) -> Duration {
        Duration::from_millis(self.db.cfg.lock_timeout_ms)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Read the visible version of `row`, or `None` if no version is
    /// visible in this snapshot.
    pub fn read(&mut self, table: &Arc<TableEntry>, row: RowId) -> Result<Option<Row>> {
        Ok(self.read_values(table, row)?.map(|t| Row::new(Arc::clone(table), t)))
    }

    /// The positional-tuple read underneath [`Transaction::read`].
    pub fn read_values(
        &mut self,
        table: &Arc<TableEntry>,
        row: RowId,
    ) -> Result<Option<Vec<Value>>> {
        let snapshot = self.stmt_snapshot();
        // Frozen rows are globally visible by construction (§5.2).
        if row.raw() <= table.frozen.max_frozen_row_id() {
            return table.frozen.get(row);
        }
        let pair = table.tree.table_read(row, |leaf, idx, first, _| {
            let tuple = leaf.read_row(&table.layout, idx);
            let head = self.db.twins.get((table.id, first)).and_then(|t| t.head(row));
            (tuple, head)
        })?;
        let Some((mut tuple, head)) = pair else {
            return Ok(None);
        };
        let _t = self.db.metrics.timer(Component::Mvcc);
        // In-place Algorithm 1: rebuilds reassemble the before image inside
        // the row buffer we already materialized — no second allocation.
        Ok(match resolve_visibility(&mut tuple, head.as_ref(), self.xid, snapshot) {
            Visibility::Invisible => None,
            Visibility::Current | Visibility::Rebuilt => Some(tuple),
        })
    }

    /// Point lookup through a unique index, returning the row id and the
    /// visible tuple.
    pub fn lookup_unique(
        &mut self,
        table: &Arc<TableEntry>,
        index: &Arc<IndexEntry>,
        key: &[Value],
    ) -> Result<Option<(RowId, Row)>> {
        debug_assert!(index.def.unique, "lookup_unique on a non-unique index");
        let encoded = index.prefix_for(&table.schema, key);
        let Some(row) = index.tree.index_get(&encoded)? else {
            return Ok(None);
        };
        Ok(self.read(table, row)?.map(|t| (row, t)))
    }

    /// Collect up to `limit` visible rows whose index key starts with
    /// `prefix`, in key order.
    pub fn scan_index(
        &mut self,
        table: &Arc<TableEntry>,
        index: &Arc<IndexEntry>,
        prefix: &[Value],
        limit: usize,
    ) -> Result<Vec<(RowId, Row)>> {
        let (low, high) = index.range_for(&table.schema, prefix);
        let mut candidates = std::mem::take(&mut self.scan_scratch);
        candidates.clear();
        index.tree.index_range(&low, &high, |_, row| {
            candidates.push(row);
            true
        })?;
        let mut out = Vec::with_capacity(limit.min(candidates.len()));
        for &row in &candidates {
            if let Some(t) = self.read(table, row)? {
                out.push((row, t));
                if out.len() >= limit {
                    break;
                }
            }
        }
        self.scan_scratch = candidates;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Batched (interleaved) operations
    // ------------------------------------------------------------------

    /// Read the visible versions of N rows, result `i` corresponding to
    /// `rows[i]` — semantically `rows.map(|r| read(r))` as one statement,
    /// but the descents run interleaved: each B-Tree hop prefetches the
    /// next node and suspends, and cold pages fault in the background
    /// loader, so one descent's stall is hidden behind its siblings.
    ///
    /// Being *one statement* is visible under ReadCommitted: the whole
    /// batch resolves against a single statement snapshot, whereas N
    /// separate `read` statements would each take a fresh snapshot and
    /// could observe commits that land mid-loop. Under snapshot
    /// isolation the two shapes see identical data.
    pub async fn multi_get(
        &mut self,
        table: &Arc<TableEntry>,
        rows: &[RowId],
    ) -> Result<Vec<Option<Row>>> {
        let t0 = std::time::Instant::now();
        let snapshot = self.stmt_snapshot();
        let tuples = self.multi_get_inner(table, rows, snapshot).await?;
        self.note_batch(t0, rows.len());
        Ok(tuples.into_iter().map(|t| t.map(|t| Row::new(Arc::clone(table), t))).collect())
    }

    /// N unique-index point lookups, result `i` corresponding to
    /// `keys[i]` — `keys.map(|k| lookup_unique(k))` as one interleaved
    /// statement. Phase one interleaves the index descents, phase two
    /// interleaves the table reads for the hits. Like
    /// [`Transaction::multi_get`], the whole batch reads one statement
    /// snapshot (see there for the ReadCommitted implication).
    pub async fn multi_lookup(
        &mut self,
        table: &Arc<TableEntry>,
        index: &Arc<IndexEntry>,
        keys: &[Vec<Value>],
    ) -> Result<Vec<Option<(RowId, Row)>>> {
        debug_assert!(index.def.unique, "multi_lookup on a non-unique index");
        let t0 = std::time::Instant::now();
        let snapshot = self.stmt_snapshot();
        let encoded: Vec<Vec<u8>> =
            keys.iter().map(|k| index.prefix_for(&table.schema, k)).collect();
        let mut row_ids: Vec<Option<RowId>> = vec![None; keys.len()];
        drive_reads(
            encoded.iter().map(|k| index.tree.batch_cursor(k, false)).enumerate().collect(),
            |i, leaf| {
                row_ids[i] = leaf.index_get(&encoded[i])?;
                Ok(())
            },
        )
        .await?;
        // Phase two: fetch the visible versions of every hit, interleaved.
        let hits: Vec<(usize, RowId)> =
            row_ids.iter().enumerate().filter_map(|(i, r)| r.map(|r| (i, r))).collect();
        let hit_rows: Vec<RowId> = hits.iter().map(|&(_, r)| r).collect();
        let tuples = self.multi_get_inner(table, &hit_rows, snapshot).await?;
        let mut out: Vec<Option<(RowId, Row)>> = vec![None; keys.len()];
        for ((i, row), tuple) in hits.into_iter().zip(tuples) {
            out[i] = tuple.map(|t| (row, Row::new(Arc::clone(table), t)));
        }
        self.note_batch(t0, keys.len());
        Ok(out)
    }

    /// The interleaved heart of [`Transaction::multi_get`]: one snapshot
    /// for the whole batch (it is a single statement), frozen rows
    /// answered directly (globally visible, no descent), hot rows driven
    /// through resumable cursors.
    async fn multi_get_inner(
        &self,
        table: &Arc<TableEntry>,
        rows: &[RowId],
        snapshot: Snapshot,
    ) -> Result<Vec<Option<Vec<Value>>>> {
        let mut results: Vec<Option<Vec<Value>>> = vec![None; rows.len()];
        let watermark = table.frozen.max_frozen_row_id();
        let mut pending = Vec::with_capacity(rows.len());
        for (i, &row) in rows.iter().enumerate() {
            if row.raw() <= watermark {
                results[i] = table.frozen.get(row)?;
            } else {
                pending.push((i, table.tree.batch_cursor(&row_key(row), false)));
            }
        }
        let results_ref = &mut results;
        drive_reads(pending, |i, leaf| {
            let row = rows[i];
            let pair = leaf.table_read(row, |leaf, idx, first, _| {
                let tuple = leaf.read_row(&table.layout, idx);
                let head = self.db.twins.get((table.id, first)).and_then(|t| t.head(row));
                (tuple, head)
            })?;
            if let Some((mut tuple, head)) = pair {
                let _t = self.db.metrics.timer(Component::Mvcc);
                results_ref[i] =
                    match resolve_visibility(&mut tuple, head.as_ref(), self.xid, snapshot) {
                        Visibility::Invisible => None,
                        Visibility::Current | Visibility::Rebuilt => Some(tuple),
                    };
            }
            Ok(())
        })
        .await?;
        Ok(results)
    }

    /// Per-batch accounting: histogram sample, flight-recorder span and
    /// the depth counters (`batch_keys / batch_gets` = mean batch depth).
    fn note_batch(&self, t0: std::time::Instant, keys: usize) {
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.db.metrics.incr(Counter::BatchGets);
        self.db.metrics.add(Counter::BatchKeys, keys as u64);
        self.db.metrics.record_latency(LatencySite::BatchGet, dur_ns);
        self.db.metrics.tracer().span_dur(
            EventKind::BatchGet,
            self.slot as u32,
            dur_ns,
            keys as u64,
        );
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Insert a tuple; returns its fresh row id.
    ///
    /// The row id is drawn inside the rightmost leaf's latch (allocation
    /// order = append order, the monotonic-key invariant of §5.1), with the
    /// twin entry installed before the tuple becomes readable. Index
    /// entries follow; a unique violation compensates the append.
    pub async fn insert(&mut self, table: &Arc<TableEntry>, tuple: Vec<Value>) -> Result<RowId> {
        table.schema.check(table.id, &tuple)?;
        self.ensure_wal_begin();
        let db = Arc::clone(&self.db);
        let (xid, start_ts, slot) = (self.xid, self.start_ts, self.slot);
        let handle = Arc::clone(&self.handle);
        let rfa = &mut self.rfa;
        let mut new_log = None;
        let alloc = || table.next_row_id();
        let (row, _fid, _first) = table.tree.table_append_alloc(
            &table.layout,
            &alloc,
            &tuple,
            |_leaf, _idx, first, fid| {
                // Twin entry installed while the tuple is still invisible
                // to readers (we hold the leaf exclusively).
                let row = _leaf.row_id_at(_idx);
                let log =
                    UndoLog::new(table.id, row, first, UndoOp::Insert, Arc::clone(&handle), None);
                loop {
                    let twin = db.twins.get_or_create((table.id, first));
                    if twin.set_head(row, Arc::clone(&log), start_ts) {
                        break;
                    }
                }
                // WAL + RFA stamping (§8).
                let meta = &db.pool.frame(fid).meta;
                let page_gsn = meta.page_gsn.load(Ordering::Relaxed);
                let lw = meta.last_writer_slot.load(Ordering::Relaxed);
                let last_writer = (lw != u64::MAX).then_some(lw as usize);
                let gsn = db.wal.stamp_write(rfa, page_gsn, last_writer, slot);
                db.wal.log_op(
                    slot,
                    xid,
                    gsn,
                    RecordBody::Insert { table: table.id, row, tuple: tuple.clone() },
                );
                meta.page_gsn.fetch_max(gsn, Ordering::Relaxed);
                meta.last_writer_slot.store(slot as u64, Ordering::Relaxed);
                new_log = Some(log);
            },
        )?;
        let log = new_log.expect("append ran the callback");
        // Index maintenance; a unique violation compensates the append so
        // the transaction can continue (statement-level atomicity).
        let indexes = table.all_indexes();
        let mut added: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut failure = None;
        for (i, index) in indexes.iter().enumerate() {
            let key = index.key_for(&table.schema, &tuple, row);
            match index.tree.index_insert(&key, row) {
                Ok(()) => added.push((i, key)),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            for (i, key) in added {
                let _ = indexes[i].tree.index_remove(&key);
            }
            // Physically retract the tuple and compensate in the WAL so
            // replay nets out.
            let _ = table.tree.table_modify(row, |leaf, idx, _, _| {
                leaf.mark_deleted(idx);
            });
            if let Some(twin) = self.db.twins.get((table.id, log.page_key)) {
                twin.pop_head_if(row, &log);
            }
            log.invalidate();
            let gsn = self.db.wal.current_gsn();
            self.db.wal.log_op(
                self.slot,
                self.xid,
                gsn,
                RecordBody::Delete { table: table.id, row },
            );
            return Err(e);
        }
        self.db.arena(self.slot).push(Arc::clone(&log));
        self.undo.push(log);
        Ok(row)
    }

    /// Update columns of `row` in place with a precomputed delta. Returns
    /// the row id holding the new version — different from `row` only when
    /// a frozen row moved back to hot storage (§5.2).
    pub async fn update(
        &mut self,
        table: &Arc<TableEntry>,
        row: RowId,
        delta: &[(usize, Value)],
    ) -> Result<RowId> {
        self.update_rmw(table, row, &|_| delta.to_vec()).await.map(|(r, _)| r)
    }

    /// Atomic read-modify-write: `f` computes the delta from the row's
    /// current (conflict-resolved) version *under the leaf latch*, so
    /// counter increments like `d_next_o_id` never lose updates. Returns
    /// the new version's row id and the row `f` observed.
    pub async fn update_rmw(
        &mut self,
        table: &Arc<TableEntry>,
        row: RowId,
        f: &DeltaFn<'_>,
    ) -> Result<(RowId, Vec<Value>)> {
        if row.raw() <= table.frozen.max_frozen_row_id() {
            return self.write_frozen_rmw(table, row, Some(f)).await;
        }
        self.ensure_wal_begin();
        loop {
            let snapshot = self.stmt_snapshot();
            let mut new_log = None;
            let mut observed: Option<Vec<Value>> = None;
            let observed_ref = &mut observed;
            let attempt = self.latched_write(
                table,
                row,
                snapshot,
                |leaf, idx, layout| {
                    let current = leaf.read_row(layout, idx);
                    let delta = f(&current);
                    let before = delta.iter().map(|(c, _)| (*c, current[*c].clone())).collect();
                    let body = RecordBody::Update {
                        table: table.id,
                        row,
                        delta: delta.iter().map(|(c, v)| (*c as u16, v.clone())).collect(),
                    };
                    *observed_ref = Some(current);
                    (UndoOp::Update { delta: before }, body, delta)
                },
                &mut new_log,
            )?;
            match attempt {
                None => return Err(PhoebeError::RowNotFound { table: table.id, row }),
                Some(WriteAttempt::Done) => {
                    let log = new_log.expect("write produced a log");
                    self.db.arena(self.slot).push(Arc::clone(&log));
                    self.undo.push(log);
                    return Ok((row, observed.expect("observed row")));
                }
                Some(WriteAttempt::Retry) => continue,
                Some(WriteAttempt::Gone) => {
                    return Err(PhoebeError::RowNotFound { table: table.id, row })
                }
                Some(WriteAttempt::Conflict(holder)) => {
                    return Err(PhoebeError::WriteConflict { table: table.id, row, holder })
                }
                Some(WriteAttempt::Wait(holder)) => {
                    self.wait_on_writer(table, row, holder).await?;
                    // Read committed: retry against the newest version.
                }
            }
        }
    }

    /// N read-modify-writes as one statement: `f(i, current)` computes key
    /// `i`'s delta under the leaf latch, exactly like
    /// [`Transaction::update_rmw`] does for one row. Errors (row missing,
    /// write conflict) abort the batch with the same error the sequential
    /// loop would have hit. Returns `(new_row_id, observed_row)` per key.
    ///
    /// Two phases. First, read-mode descents for every key run interleaved
    /// (prefetch + background faults) — that is where the data stalls
    /// live, and it claims nothing. Then the writes apply *in batch order*
    /// over the now-hot paths, preserving the sequential loop's claim
    /// order exactly: interleaved claiming would let two transactions
    /// batching the same ascending keys deadlock against each other — a
    /// hazard the per-key loop cannot exhibit — so equivalence demands
    /// ordered writes.
    pub async fn multi_update_rmw(
        &mut self,
        table: &Arc<TableEntry>,
        rows: &[RowId],
        f: &BatchRmwFn<'_>,
    ) -> Result<Vec<(RowId, Vec<Value>)>> {
        let t0 = std::time::Instant::now();
        // Phase one: interleaved warm-up. Frozen rows skip it — their
        // write path is out-of-place (§5.2), not a table descent.
        let watermark = table.frozen.max_frozen_row_id();
        let pending: Vec<_> = rows
            .iter()
            .enumerate()
            .filter(|&(_, r)| r.raw() > watermark)
            .map(|(i, &row)| (i, table.tree.batch_cursor(&row_key(row), false)))
            .collect();
        // The leaf guard is dropped immediately: the warm-up only exists
        // to overlap the descents' misses.
        drive_reads(pending, |_, _| Ok(())).await?;
        // Phase two: ordered writes over hot paths.
        let mut out = Vec::with_capacity(rows.len());
        for (i, &row) in rows.iter().enumerate() {
            let g = |vals: &[Value]| f(i, vals);
            out.push(self.update_rmw(table, row, &g).await?);
        }
        self.note_batch(t0, rows.len());
        Ok(out)
    }

    /// Delete `row` (logical: the tuple stays until GC makes the deletion
    /// globally visible, §7.3).
    pub async fn delete(&mut self, table: &Arc<TableEntry>, row: RowId) -> Result<()> {
        if row.raw() <= table.frozen.max_frozen_row_id() {
            self.write_frozen_rmw(table, row, None).await?;
            return Ok(());
        }
        self.ensure_wal_begin();
        loop {
            let snapshot = self.stmt_snapshot();
            let mut new_log = None;
            let attempt = self.latched_write(
                table,
                row,
                snapshot,
                |leaf, idx, layout| {
                    let image = leaf.read_row(layout, idx);
                    (
                        UndoOp::Delete { row_image: image },
                        RecordBody::Delete { table: table.id, row },
                        Vec::new(),
                    )
                },
                &mut new_log,
            )?;
            match attempt {
                None => return Err(PhoebeError::RowNotFound { table: table.id, row }),
                Some(WriteAttempt::Done) => {
                    let log = new_log.expect("write produced a log");
                    self.db.arena(self.slot).push(Arc::clone(&log));
                    self.undo.push(log);
                    return Ok(());
                }
                Some(WriteAttempt::Retry) => continue,
                Some(WriteAttempt::Gone) => {
                    return Err(PhoebeError::RowNotFound { table: table.id, row })
                }
                Some(WriteAttempt::Conflict(holder)) => {
                    return Err(PhoebeError::WriteConflict { table: table.id, row, holder })
                }
                Some(WriteAttempt::Wait(holder)) => {
                    self.wait_on_writer(table, row, holder).await?;
                }
            }
        }
    }

    /// The shared latched write path: conflict check, UNDO creation, twin
    /// install, WAL/RFA stamping, optional in-place column writes.
    fn latched_write(
        &mut self,
        table: &Arc<TableEntry>,
        row: RowId,
        snapshot: Snapshot,
        build: impl FnOnce(
            &phoebe_storage::PaxLeaf,
            usize,
            &phoebe_storage::PaxLayout,
        ) -> (UndoOp, RecordBody, Vec<(usize, Value)>),
        new_log: &mut Option<Arc<UndoLog>>,
    ) -> Result<Option<WriteAttempt>> {
        let mut ctx = self.write_ctx(snapshot);
        table.tree.table_modify(row, |leaf, idx, first, fid| {
            write_under_latch(&mut ctx, table, row, leaf, idx, first, fid, build, new_log)
        })
    }

    /// Snapshot of the per-transaction state [`write_under_latch`] needs.
    fn write_ctx(&mut self, snapshot: Snapshot) -> WriteCtx<'_> {
        WriteCtx {
            db: &self.db,
            xid: self.xid,
            start_ts: self.start_ts,
            slot: self.slot,
            iso: self.iso,
            snapshot,
            handle: &self.handle,
            rfa: &mut self.rfa,
        }
    }

    /// Wait on a conflicting writer's transaction-ID lock, applying the
    /// isolation level's outcome rules (§6.2).
    async fn wait_on_writer(
        &mut self,
        table: &Arc<TableEntry>,
        row: RowId,
        holder: Arc<TxnHandle>,
    ) -> Result<()> {
        // The sleep itself is idle time, not lock-management instructions;
        // only the occurrence is accounted (Figure 12 semantics). The
        // latency histogram, by contrast, wants the full stall.
        self.db.metrics.record(Component::Lock, 0);
        let t0 = std::time::Instant::now();
        let wait_result = holder.wait(self.lock_timeout()).await;
        let waited_ns = t0.elapsed().as_nanos() as u64;
        self.db.metrics.record_latency(LatencySite::LockWait, waited_ns);
        self.db.metrics.tracer().span_dur(
            EventKind::LockWait,
            self.slot as u32,
            waited_ns,
            holder.xid.raw(),
        );
        let outcome = wait_result?;
        match (self.iso, outcome) {
            (IsolationLevel::RepeatableRead, TxnOutcome::Committed(_)) => {
                Err(PhoebeError::WriteConflict { table: table.id, row, holder: holder.xid })
            }
            _ => Ok(()), // aborted, or read committed: retry
        }
    }

    /// Out-of-place write against a frozen row (§5.2): tombstone it and,
    /// for updates, re-insert the new version hot under a fresh row id.
    async fn write_frozen_rmw(
        &mut self,
        table: &Arc<TableEntry>,
        row: RowId,
        f: Option<&DeltaFn<'_>>,
    ) -> Result<(RowId, Vec<Value>)> {
        self.ensure_wal_begin();
        let Some(image) = table.frozen.get(row)? else {
            return Err(PhoebeError::RowNotFound { table: table.id, row });
        };
        table.frozen.mark_deleted(row);
        let log = UndoLog::new(
            table.id,
            row,
            RowId(0),
            UndoOp::FrozenDelete { row_image: image.clone() },
            Arc::clone(&self.handle),
            None,
        );
        let gsn = self.db.wal.current_gsn();
        self.db.wal.log_op(self.slot, self.xid, gsn, RecordBody::Delete { table: table.id, row });
        self.rfa.max_gsn = self.rfa.max_gsn.max(gsn);
        self.db.arena(self.slot).push(Arc::clone(&log));
        self.undo.push(log);
        match f {
            Some(f) => {
                let delta = f(&image);
                let mut new_tuple = image.clone();
                for (c, v) in &delta {
                    new_tuple[*c] = v.clone();
                }
                let new_row = self.insert(table, new_tuple).await?;
                Ok((new_row, image))
            }
            None => Ok((row, image)),
        }
    }

    // ------------------------------------------------------------------
    // Finish
    // ------------------------------------------------------------------

    /// Commit. Returns the commit timestamp. Waits for WAL durability per
    /// the RFA rules when `wal_sync` is on (§8).
    pub async fn commit(mut self) -> Result<Timestamp> {
        debug_assert!(!self.finished);
        let t0 = std::time::Instant::now();
        if self.undo.is_empty() && !self.wal_begun {
            // Read-only: nothing to stamp or flush.
            self.finish_common(TxnOutcome::Committed(self.start_ts));
            self.db.metrics.incr(Counter::Commits);
            let dur_ns = t0.elapsed().as_nanos() as u64;
            self.db.metrics.record_latency(LatencySite::Commit, dur_ns);
            self.db.metrics.tracer().span_dur(
                EventKind::TxnCommit,
                self.slot as u32,
                dur_ns,
                self.xid.raw(),
            );
            return Ok(self.start_ts);
        }
        let cts = self.db.clock.commit_ts();
        // Publish the outcome first: readers that catch an unstamped ets
        // learn the cts through the handle (mid-commit bridge).
        self.handle.finish(TxnOutcome::Committed(cts));
        // Single scan over the grouped UNDO logs (§6.2).
        {
            let _t = self.db.metrics.timer(Component::Mvcc);
            for log in &self.undo {
                log.stamp_commit(cts);
            }
        }
        let wal_result = self.db.wal.commit(self.slot, self.xid, cts, &self.rfa).await;
        self.finish_slot_state();
        self.db.metrics.incr(Counter::Commits);
        // Commit latency includes the durability wait: it is what a client
        // of a synchronous commit observes.
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.db.metrics.record_latency(LatencySite::Commit, dur_ns);
        self.db.metrics.tracer().span_dur(
            EventKind::TxnCommit,
            self.slot as u32,
            dur_ns,
            self.xid.raw(),
        );
        wal_result.map(|_| cts)
    }

    /// Roll back: restore before images, unlink our chain heads, log the
    /// abort. Synchronous — rollback never waits on anyone.
    pub fn abort(mut self) {
        self.rollback();
    }

    fn rollback(&mut self) {
        if self.finished {
            return;
        }
        let t0 = std::time::Instant::now();
        for log in self.undo.iter().rev() {
            let Ok(table) = self.db.table_by_id(log.table) else {
                continue;
            };
            match &log.op {
                UndoOp::Update { delta } => {
                    let delta = delta.clone();
                    let _ = table.tree.table_modify(log.row, |leaf, idx, _, _| {
                        for (c, v) in &delta {
                            leaf.write_col(&table.layout, idx, *c, v);
                        }
                    });
                }
                UndoOp::Insert => {
                    // Remove the tuple and its index entries.
                    let image = table
                        .tree
                        .table_read(log.row, |leaf, idx, _, _| leaf.read_row(&table.layout, idx))
                        .ok()
                        .flatten();
                    let _ = table.tree.table_modify(log.row, |leaf, idx, _, _| {
                        leaf.mark_deleted(idx);
                    });
                    if let Some(image) = image {
                        for index in table.all_indexes() {
                            let key = index.key_for(&table.schema, &image, log.row);
                            let _ = index.tree.index_remove(&key);
                        }
                    }
                }
                UndoOp::Delete { .. } => {
                    // Logical delete: nothing physical happened yet.
                }
                UndoOp::FrozenDelete { .. } => {
                    table.frozen.unmark_deleted(log.row);
                }
            }
            if let Some(twin) = self.db.twins.get((log.table, log.page_key)) {
                twin.pop_head_if(log.row, log);
            }
            log.invalidate();
        }
        if self.wal_begun {
            let gsn = self.db.wal.current_gsn();
            self.db.wal.log_op(self.slot, self.xid, gsn, RecordBody::Abort);
        }
        self.finish_common(TxnOutcome::Aborted);
        self.db.metrics.incr(Counter::Aborts);
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.db.metrics.record_latency(LatencySite::Abort, dur_ns);
        self.db.metrics.tracer().span_dur(
            EventKind::TxnAbort,
            self.slot as u32,
            dur_ns,
            self.xid.raw(),
        );
    }

    fn finish_common(&mut self, outcome: TxnOutcome) {
        self.handle.finish(outcome);
        self.finish_slot_state();
    }

    fn finish_slot_state(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.db.active.end(self.slot);
        self.db.note_txn_done();
        if self.external {
            self.db.return_external_slot(self.slot);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
        }
    }
}

/// The transaction-side inputs of one latched write, split out of
/// [`Transaction::latched_write`] so the blocking descent and the batch
/// cursors ([`Transaction::multi_update_rmw`]) share a single
/// implementation of the conflict/UNDO/WAL protocol.
struct WriteCtx<'a> {
    db: &'a Arc<Database>,
    xid: Xid,
    start_ts: Timestamp,
    slot: usize,
    iso: IsolationLevel,
    snapshot: Snapshot,
    handle: &'a Arc<TxnHandle>,
    rfa: &'a mut RfaState,
}

/// The write body that runs under the leaf's exclusive latch: ets
/// handshake, tuple-lock claim, UNDO + twin install, WAL/RFA stamping and
/// the in-place column writes (§6.2, §8).
#[allow(clippy::too_many_arguments)]
fn write_under_latch(
    ctx: &mut WriteCtx<'_>,
    table: &Arc<TableEntry>,
    row: RowId,
    leaf: &mut phoebe_storage::PaxLeaf,
    idx: usize,
    first: RowId,
    fid: phoebe_storage::FrameId,
    build: impl FnOnce(
        &phoebe_storage::PaxLeaf,
        usize,
        &phoebe_storage::PaxLayout,
    ) -> (UndoOp, RecordBody, Vec<(usize, Value)>),
    new_log: &mut Option<Arc<UndoLog>>,
) -> WriteAttempt {
    let db = ctx.db;
    // Lock-management work (Figure 12 "locking"): the ets
    // handshake, tuple-lock claim and outcome dispatch.
    let lock_timer = db.metrics.timer(Component::Lock);
    let twin = db.twins.get_or_create((table.id, first));
    let head = twin.head(row).filter(|h| h.is_valid());
    // Write-write handshake on the chain head's ets (§6.2).
    if let Some(h) = &head {
        let ets = h.ets();
        if Xid::is_xid(ets) && ets != ctx.xid.raw() {
            match h.writer.outcome() {
                None | Some(TxnOutcome::Aborted) => {
                    // In flight (or aborted but not yet rolled
                    // back): wait on the holder's ID lock.
                    return WriteAttempt::Wait(Arc::clone(&h.writer));
                }
                Some(TxnOutcome::Committed(cts)) => {
                    if ctx.iso == IsolationLevel::RepeatableRead && !ctx.snapshot.sees(cts) {
                        return WriteAttempt::Conflict(h.writer.xid);
                    }
                    if matches!(h.op, UndoOp::Delete { .. }) {
                        return WriteAttempt::Gone;
                    }
                }
            }
        } else if !Xid::is_xid(ets) {
            if ctx.iso == IsolationLevel::RepeatableRead && !ctx.snapshot.sees(ets) {
                return WriteAttempt::Conflict(h.writer.xid);
            }
            if matches!(h.op, UndoOp::Delete { .. }) {
                return WriteAttempt::Gone;
            }
        } else if matches!(h.op, UndoOp::Delete { .. }) {
            // Our own earlier delete of this row.
            return WriteAttempt::Gone;
        }
    }
    // Tuple lock: claimed for the operation, released right after
    // (§7.2); grant accounting lives in the twin table.
    db.tuple_locks[ctx.slot].claim(table.id, row);
    twin.record_lock_grant();
    drop(lock_timer);
    let _mvcc = db.metrics.timer(Component::Mvcc);
    let (op, wal_body, apply) = build(leaf, idx, &table.layout);
    let log = UndoLog::new(table.id, row, first, op, Arc::clone(ctx.handle), head.clone());
    if !twin.set_head(row, Arc::clone(&log), ctx.start_ts) {
        db.tuple_locks[ctx.slot].release();
        return WriteAttempt::Retry;
    }
    drop(_mvcc);
    // WAL + RFA (§8).
    let meta = &db.pool.frame(fid).meta;
    let page_gsn = meta.page_gsn.load(Ordering::Relaxed);
    let lw = meta.last_writer_slot.load(Ordering::Relaxed);
    let last_writer = (lw != u64::MAX).then_some(lw as usize);
    let gsn = db.wal.stamp_write(ctx.rfa, page_gsn, last_writer, ctx.slot);
    db.wal.log_op(ctx.slot, ctx.xid, gsn, wal_body);
    meta.page_gsn.fetch_max(gsn, Ordering::Relaxed);
    meta.last_writer_slot.store(ctx.slot as u64, Ordering::Relaxed);
    // In-place update (§5.2).
    for (c, v) in &apply {
        leaf.write_col(&table.layout, idx, *c, v);
    }
    db.tuple_locks[ctx.slot].release();
    *new_log = Some(log);
    WriteAttempt::Done
}

/// Round-robin driver for a set of read-mode descent cursors: step each
/// live cursor once per pass, hand finished leaves to `on_leaf` (the leaf
/// guard lives only inside that call — it never crosses the yield), and
/// yield to the scheduler between passes. A pass that still made hops
/// yields at [`Urgency::Prefetch`] (the wait is a cache-line fill); a
/// pass where every survivor is stalled on a cold-page fault yields at
/// [`Urgency::High`], the paper's async-read-in-flight class (§7.1).
async fn drive_reads<'t>(
    mut pending: Vec<(usize, phoebe_storage::DescentCursor<'t>)>,
    mut on_leaf: impl FnMut(usize, phoebe_storage::BatchLeaf<'t>) -> Result<()>,
) -> Result<()> {
    use phoebe_storage::DescentStep;
    while !pending.is_empty() {
        let mut any_prefetch = false;
        let mut any_leaf = false;
        let mut i = 0;
        while i < pending.len() {
            match pending[i].1.step()? {
                DescentStep::Leaf(leaf) => {
                    let key_idx = pending[i].0;
                    on_leaf(key_idx, leaf)?;
                    pending.swap_remove(i);
                    any_leaf = true;
                }
                DescentStep::Prefetched => {
                    any_prefetch = true;
                    i += 1;
                }
                DescentStep::FaultPending => i += 1,
            }
        }
        // Siblings in this batch already fill each hop's prefetch window;
        // yield to *other* tasks only when a whole pass made no leaf
        // progress (everything prefetching or faulting). Yielding every
        // pass would hand the page-swap duty a window to re-latch parents
        // and invalidate every suspended cursor — a restart storm.
        if !pending.is_empty() && !any_leaf {
            let u = if any_prefetch { Urgency::Prefetch } else { Urgency::High };
            phoebe_runtime::yield_now(u).await;
        }
    }
    Ok(())
}
