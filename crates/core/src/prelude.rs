//! The convenience prelude: one `use` for the whole public surface.
//!
//! ```no_run
//! use phoebe_core::prelude::*;
//!
//! let cfg = KernelConfig::builder().workers(2).build().unwrap();
//! let db = Database::open(cfg).unwrap();
//! ```

pub use crate::catalog::{IndexDef, IndexEntry, TableEntry};
pub use crate::db::Database;
pub use crate::row::Row;
pub use crate::stats::{KernelStats, LatencySummary, StatsReporter};
pub use crate::txn_api::Transaction;
pub use phoebe_common::{
    KernelConfig, KernelConfigBuilder, LatencySite, PhoebeError, Result, TelemetryConfig,
    TraceConfig, Tracer, WatchdogConfig,
};
pub use phoebe_storage::schema::{ColType, Schema, Value};
pub use phoebe_txn::locks::IsolationLevel;

// The `row!` tuple-literal macro (exported at the crate root by
// `#[macro_export]`); this brings it in alongside the types.
pub use crate::row;
