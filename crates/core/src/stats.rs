//! Kernel-wide observability: [`KernelStats`] snapshots and the periodic
//! [`StatsReporter`].
//!
//! [`Database::stats`] merges the per-worker metric shards — counters,
//! Figure-12 component costs, and the per-site latency histograms — in
//! O(workers), then decorates the result with runtime, WAL and buffer-pool
//! gauges. The snapshot is plain data: serde-derived and convertible to a
//! single-line JSON document via [`KernelStats::to_json`], which is what
//! the benchmark binaries emit for machine consumption.
//!
//! The [`StatsReporter`] is a co-routine on the kernel's own runtime that
//! wakes on a fixed cadence (via the runtime's timer service), computes the
//! *delta* since its previous tick, and hands the interval snapshot to a
//! caller-supplied sink. `Database::shutdown` stops all reporters before
//! the pool drains, so a running reporter never wedges shutdown.

use crate::db::Database;
use phoebe_common::hist::{LatencySite, SITES};
use phoebe_common::json::Json;
use phoebe_common::metrics::{MetricsSnapshot, COMPONENTS, COUNTERS};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Percentile summary of one instrumented latency site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Stable site name (e.g. `"commit"`, `"wal_flush"`).
    pub site: &'static str,
    pub count: u64,
    pub mean_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// One Figure-12 cost component's accumulated busy time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentCost {
    pub component: &'static str,
    pub busy_ns: u64,
    pub ops: u64,
}

/// A named operational counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterValue {
    pub name: &'static str,
    pub value: u64,
}

/// Scheduler gauges lifted from [`phoebe_runtime::RuntimeStats`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuntimeGauges {
    pub tasks_completed: u64,
    pub polls: u64,
    pub parks: u64,
    pub tasks_pulled_global: u64,
    pub tasks_pulled_local: u64,
    pub urgent_pull_stalls: u64,
    /// Task slots currently seated (gauge, sampled at snapshot time).
    #[serde(default)]
    pub occupied_slots: u64,
    /// Spawned tasks waiting for a slot: global + local queues (gauge).
    #[serde(default)]
    pub ready_tasks: u64,
    /// Depth of the global injector queue alone (gauge).
    #[serde(default)]
    pub global_queue_depth: u64,
}

/// One worker's scheduler time-in-state split (see
/// [`phoebe_runtime::WorkerTimeInState`]): cumulative in
/// [`Database::stats`], interval deltas from the [`StatsReporter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStateSummary {
    pub worker: usize,
    /// Polling seated co-routines (useful work).
    pub running_ns: u64,
    /// Pull/bookkeeping between polls — scheduling overhead.
    pub ready_ns: u64,
    /// Parked with nothing runnable.
    pub parked_ns: u64,
    /// Worker-hook background duties: page swaps, GC.
    pub io_ns: u64,
}

/// A merged, point-in-time view of the whole kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelStats {
    /// Operational counters (commits, aborts, page I/O, WAL volume, ...).
    pub counters: Vec<CounterValue>,
    /// Per-component busy time (the paper's Figure 12 substrate).
    pub components: Vec<ComponentCost>,
    /// Latency percentiles for every instrumented site.
    pub latency: Vec<LatencySummary>,
    /// Co-routine scheduler gauges.
    pub runtime: RuntimeGauges,
    /// Per-worker scheduler time-in-state (running/ready/parked/io).
    #[serde(default)]
    pub worker_states: Vec<WorkerStateSummary>,
    /// Bytes physically flushed across all slot WAL writers.
    pub wal_bytes_flushed: u64,
    /// The global durable GSN horizon, clamped to the current GSN (an
    /// idle WAL is fully durable, not infinitely durable).
    pub wal_durable_gsn: u64,
    /// How long the WAL flush horizon has been stuck behind the append
    /// horizon (gauge; 0 while the flusher keeps up).
    #[serde(default)]
    pub wal_flush_horizon_age_ns: u64,
    /// Records appended but not yet flushed, summed across slot writers.
    #[serde(default)]
    pub wal_backlog_records: u64,
    /// Whether the WAL hub halted after an I/O failure.
    #[serde(default)]
    pub wal_halted: bool,
    /// Physical (reads, writes) against the Data Page File.
    pub page_file_reads: u64,
    pub page_file_writes: u64,
    /// Buffer pool shape and occupancy.
    pub buffer_total_frames: u64,
    pub buffer_free_frames: u64,
    /// Asynchronous page faults currently in flight (gauge).
    #[serde(default)]
    pub fault_tickets_inflight: u64,
    /// The in-flight fault cap backpressure enforces.
    #[serde(default)]
    pub fault_budget_limit: u64,
}

impl KernelStats {
    /// Build the metric-derived part of a snapshot from a (possibly
    /// delta'd) [`MetricsSnapshot`].
    fn from_metrics(snap: &MetricsSnapshot) -> KernelStats {
        let counters = COUNTERS
            .iter()
            .map(|&(c, name)| CounterValue { name, value: snap.counter(c) })
            .collect();
        let components = COMPONENTS
            .iter()
            .map(|&c| ComponentCost {
                component: c.name(),
                busy_ns: snap.component_ns(c),
                ops: snap.component_ops(c),
            })
            .collect();
        let latency = SITES
            .iter()
            .map(|&site| {
                let h = snap.latency(site);
                LatencySummary {
                    site: site.name(),
                    count: h.count(),
                    mean_ns: h.mean_ns() as u64,
                    max_ns: h.max_ns(),
                    p50_ns: h.p50(),
                    p95_ns: h.p95(),
                    p99_ns: h.p99(),
                }
            })
            .collect();
        KernelStats {
            counters,
            components,
            latency,
            runtime: RuntimeGauges::default(),
            worker_states: Vec::new(),
            wal_bytes_flushed: 0,
            wal_durable_gsn: 0,
            wal_flush_horizon_age_ns: 0,
            wal_backlog_records: 0,
            wal_halted: false,
            page_file_reads: 0,
            page_file_writes: 0,
            buffer_total_frames: 0,
            buffer_free_frames: 0,
            fault_tickets_inflight: 0,
            fault_budget_limit: 0,
        }
    }

    /// The summary for one latency site.
    pub fn latency(&self, site: LatencySite) -> &LatencySummary {
        // SITES order == construction order, so index by discriminant.
        &self.latency[site as usize]
    }

    /// A named counter's value (0 for unknown names).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Render as a JSON value tree (one object, no external deps).
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for c in &self.counters {
            counters = counters.with(c.name, c.value);
        }
        let mut components = Json::obj();
        for c in &self.components {
            components = components
                .with(c.component, Json::obj().with("busy_ns", c.busy_ns).with("ops", c.ops));
        }
        let mut latency = Json::obj();
        for l in &self.latency {
            latency = latency.with(
                l.site,
                Json::obj()
                    .with("count", l.count)
                    .with("mean_ns", l.mean_ns)
                    .with("max_ns", l.max_ns)
                    .with("p50_ns", l.p50_ns)
                    .with("p95_ns", l.p95_ns)
                    .with("p99_ns", l.p99_ns),
            );
        }
        Json::obj()
            .with("counters", counters)
            .with("components", components)
            .with("latency", latency)
            .with(
                "runtime",
                Json::obj()
                    .with("tasks_completed", self.runtime.tasks_completed)
                    .with("polls", self.runtime.polls)
                    .with("parks", self.runtime.parks)
                    .with("tasks_pulled_global", self.runtime.tasks_pulled_global)
                    .with("tasks_pulled_local", self.runtime.tasks_pulled_local)
                    .with("urgent_pull_stalls", self.runtime.urgent_pull_stalls)
                    .with("occupied_slots", self.runtime.occupied_slots)
                    .with("ready_tasks", self.runtime.ready_tasks)
                    .with("global_queue_depth", self.runtime.global_queue_depth)
                    .with(
                        "workers",
                        self.worker_states
                            .iter()
                            .map(|w| {
                                Json::obj()
                                    .with("worker", w.worker)
                                    .with("running_ns", w.running_ns)
                                    .with("ready_ns", w.ready_ns)
                                    .with("parked_ns", w.parked_ns)
                                    .with("io_ns", w.io_ns)
                            })
                            .collect::<Vec<Json>>(),
                    ),
            )
            .with(
                "wal",
                Json::obj()
                    .with("bytes_flushed", self.wal_bytes_flushed)
                    .with("durable_gsn", self.wal_durable_gsn)
                    .with("flush_horizon_age_ns", self.wal_flush_horizon_age_ns)
                    .with("backlog_records", self.wal_backlog_records)
                    .with("halted", self.wal_halted),
            )
            .with(
                "buffer",
                Json::obj()
                    .with("page_file_reads", self.page_file_reads)
                    .with("page_file_writes", self.page_file_writes)
                    .with("total_frames", self.buffer_total_frames)
                    .with("free_frames", self.buffer_free_frames)
                    .with("fault_tickets_inflight", self.fault_tickets_inflight)
                    .with("fault_budget_limit", self.fault_budget_limit),
            )
    }
}

impl Database {
    /// Merge every worker's metric shard into one [`KernelStats`] snapshot.
    /// O(workers) array merges plus a handful of atomic gauge loads; safe
    /// to call from any thread at any frequency.
    pub fn stats(&self) -> KernelStats {
        self.stats_from_metrics(&self.metrics.snapshot())
    }

    /// Decorate a (possibly delta'd) metrics snapshot with the kernel's
    /// live gauges. Used by both [`Database::stats`] and the reporter.
    pub(crate) fn stats_from_metrics(&self, snap: &MetricsSnapshot) -> KernelStats {
        let mut out = KernelStats::from_metrics(snap);
        if let Some(rt) = self.try_runtime() {
            let rs = rt.stats();
            out.runtime = RuntimeGauges {
                tasks_completed: rs.tasks_completed,
                polls: rs.polls,
                parks: rs.parks,
                tasks_pulled_global: rs.tasks_pulled_global,
                tasks_pulled_local: rs.tasks_pulled_local,
                urgent_pull_stalls: rs.urgent_pull_stalls,
                occupied_slots: rs.occupied_slots,
                ready_tasks: rs.ready_tasks,
                global_queue_depth: rs.global_queue_depth,
            };
            out.worker_states = rs
                .worker_state_ns
                .iter()
                .enumerate()
                .map(|(worker, s)| WorkerStateSummary {
                    worker,
                    running_ns: s.running_ns,
                    ready_ns: s.ready_ns,
                    parked_ns: s.parked_ns,
                    io_ns: s.io_ns,
                })
                .collect();
        }
        out.wal_bytes_flushed = self.wal.total_bytes_flushed();
        out.wal_durable_gsn = self.wal.durable_gsn().min(self.wal.current_gsn());
        out.wal_flush_horizon_age_ns = self.wal.flush_horizon_age_ns();
        out.wal_backlog_records = self.wal.backlog_records();
        out.wal_halted = self.wal.is_halted();
        let (r, w) = self.pool.io_counts();
        out.page_file_reads = r;
        out.page_file_writes = w;
        out.buffer_total_frames = self.pool.total_frames() as u64;
        out.buffer_free_frames =
            (0..self.pool.partition_count()).map(|p| self.pool.free_frames(p) as u64).sum();
        out.fault_tickets_inflight = self.pool.faults_inflight() as u64;
        out.fault_budget_limit = self.pool.fault_budget_limit() as u64;
        out
    }

    /// Spawn a [`StatsReporter`] on the kernel's runtime. Every `interval`
    /// the sink receives the *delta* since the previous tick (counters,
    /// component time and histograms subtracted; gauges absolute). The
    /// reporter stops when its handle is dropped/stopped or at
    /// `Database::shutdown`.
    pub fn start_stats_reporter(
        self: &Arc<Self>,
        interval: Duration,
        sink: impl Fn(KernelStats) + Send + 'static,
    ) -> StatsReporter {
        let stop = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        self.reporter_stops().lock().push(Arc::clone(&stop));
        let weak: Weak<Database> = Arc::downgrade(self);
        let stop_task = Arc::clone(&stop);
        let done_task = Arc::clone(&done);
        let rt = self.runtime();
        rt.spawn(async move {
            // Raised on *every* exit path so `StatsReporter::join` can
            // prove the sink will never run again.
            let _done = DoneOnDrop(done_task);
            let mut prev = match weak.upgrade() {
                Some(db) => db.metrics.snapshot(),
                None => return,
            };
            // Cumulative per-worker time-in-state and runtime counters at
            // the previous tick, so intervals report what happened in
            // *this* interval. All subtractions saturate: a worker vector
            // that shrinks or a counter that resets (runtime recycled
            // between ticks) must yield a zero delta, not an underflow.
            let mut prev_states: Vec<WorkerStateSummary> = Vec::new();
            let mut prev_runtime = RuntimeGauges::default();
            'ticks: loop {
                // Sleep in short slices so shutdown never waits a full
                // interval for the slot to drain.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if stop_task.load(Ordering::Acquire) {
                        break 'ticks;
                    }
                    let slice = Duration::from_millis(25)
                        .min(deadline.saturating_duration_since(Instant::now()));
                    phoebe_runtime::sleep(slice).await;
                }
                if stop_task.load(Ordering::Acquire) {
                    break;
                }
                let Some(db) = weak.upgrade() else { break };
                let now = db.metrics.snapshot();
                let delta = now.delta_since(&prev);
                prev = now;
                let mut stats = db.stats_from_metrics(&delta);
                let absolute = stats.worker_states.clone();
                for (ws, p) in stats.worker_states.iter_mut().zip(prev_states.iter()) {
                    ws.running_ns = ws.running_ns.saturating_sub(p.running_ns);
                    ws.ready_ns = ws.ready_ns.saturating_sub(p.ready_ns);
                    ws.parked_ns = ws.parked_ns.saturating_sub(p.parked_ns);
                    ws.io_ns = ws.io_ns.saturating_sub(p.io_ns);
                }
                prev_states = absolute;
                let rt_abs = stats.runtime.clone();
                let r = &mut stats.runtime;
                r.tasks_completed = r.tasks_completed.saturating_sub(prev_runtime.tasks_completed);
                r.polls = r.polls.saturating_sub(prev_runtime.polls);
                r.parks = r.parks.saturating_sub(prev_runtime.parks);
                r.tasks_pulled_global =
                    r.tasks_pulled_global.saturating_sub(prev_runtime.tasks_pulled_global);
                r.tasks_pulled_local =
                    r.tasks_pulled_local.saturating_sub(prev_runtime.tasks_pulled_local);
                r.urgent_pull_stalls =
                    r.urgent_pull_stalls.saturating_sub(prev_runtime.urgent_pull_stalls);
                // occupied_slots / ready_tasks / global_queue_depth are
                // gauges: report them absolute.
                prev_runtime = rt_abs;
                sink(stats);
            }
        });
        StatsReporter { stop, done }
    }
}

struct DoneOnDrop(Arc<AtomicBool>);

impl Drop for DoneOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Handle to a running stats reporter. Dropping it stops the reporter.
pub struct StatsReporter {
    stop: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
}

impl StatsReporter {
    /// Ask the reporter co-routine to exit at its next slice (≤25 ms).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether `stop` has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Whether the reporter co-routine has actually exited (its sink will
    /// never be invoked again).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Stop the reporter and wait (bounded by `timeout`) for its
    /// co-routine to exit, so a sink capturing external state can be torn
    /// down without racing a final tick. Returns whether the reporter
    /// finished within the timeout. The reporter runs *on the kernel's
    /// own runtime*, so this must be called from an external thread, not
    /// from a kernel co-routine.
    pub fn join(&self, timeout: Duration) -> bool {
        self.stop();
        let deadline = Instant::now() + timeout;
        while !self.is_done() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

impl Drop for StatsReporter {
    fn drop(&mut self) {
        self.stop();
    }
}
