//! The temperature controller: freezing cold pages and warming hot frozen
//! blocks (§5.2, "Temperature-based Exchange", cases 2 and 3).
//!
//! Freezing walks a table's leaves left to right starting past the current
//! `max_frozen_row_id`. Consecutive leaves whose OLTP access count over
//! the current observation window stays below the threshold — and whose
//! rows carry no pending versions — are compressed into frozen data
//! blocks, advancing the watermark. The walk stops at the first leaf that
//! fails the criteria, so the frozen region stays a contiguous row-id
//! prefix. Frozen rows are then logically removed from the hot tree (the
//! tree keeps routing reads; `row <= max_frozen_row_id` short-circuits to
//! the block store before ever touching the buffer pool).
//!
//! Warming takes blocks whose OLTP read count crossed the threshold,
//! tombstones their rows and re-inserts them into hot storage under fresh
//! row ids, updating every secondary index (§5.2 case 3).

use crate::catalog::TableEntry;
use crate::db::Database;
use phoebe_common::error::Result;
use phoebe_common::ids::RowId;
use phoebe_common::metrics::Counter;
use phoebe_storage::schema::Value;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Outcome of one freeze pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FreezeStats {
    pub pages_frozen: usize,
    pub rows_frozen: usize,
    pub new_watermark: u64,
}

/// Outcome of one warm pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WarmStats {
    pub blocks_warmed: usize,
    pub rows_warmed: usize,
}

impl Database {
    /// One freezing pass over `table` (§5.2 case 2). Returns what was
    /// frozen. Access counters of inspected leaves are reset so the next
    /// pass observes a fresh window ("access frequency over time").
    pub fn freeze_table(&self, table: &Arc<TableEntry>) -> Result<FreezeStats> {
        // Freeze only touches globally visible data: reclaim whatever UNDO
        // is already reclaimable so committed-long-ago rows shed their
        // version chains first.
        let _ = self.collect_all();
        let mut stats = FreezeStats::default();
        let threshold = self.cfg.freeze_access_threshold;
        let batch_pages = self.cfg.freeze_batch_pages;
        let mut ids: Vec<RowId> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut pages = 0usize;
        let twins = Arc::clone(&self.twins);
        let pool = Arc::clone(&self.pool);
        table.tree.table_for_each_leaf(|fid, leaf| {
            // Leaves already drained by earlier freezes are skipped.
            if leaf.live_rows() == 0 {
                return true;
            }
            let first = match leaf.first_row_id() {
                Some(f) => f,
                None => return true,
            };
            // Never freeze the rightmost growth leaf: appends land there.
            // (Detect via the leaf not being full; a partially filled leaf
            // in the middle can only be the last one, since table leaves
            // fill strictly left to right.)
            if !leaf.is_full(&table.layout) {
                return false;
            }
            let meta = &pool.frame(fid).meta;
            let count = meta.access_count.swap(0, Ordering::Relaxed);
            if count >= threshold {
                return false; // hot leaf ends the contiguous prefix
            }
            // Rows with live version chains are not globally visible yet.
            if let Some(twin) = twins.get((table.id, first)) {
                if twin.live_entries() > 0 {
                    return false;
                }
            }
            for r in 0..leaf.len() {
                if leaf.is_valid(r) {
                    ids.push(leaf.row_id_at(r));
                    rows.push(leaf.read_row(&table.layout, r));
                }
            }
            pages += 1;
            pages < batch_pages
        })?;
        if ids.is_empty() {
            return Ok(stats);
        }
        table.frozen.append_block(&ids, &rows)?;
        // Drain the hot copies: reads now route through the watermark.
        for id in &ids {
            table.tree.table_modify(*id, |leaf, idx, _, _| {
                leaf.mark_deleted(idx);
            })?;
        }
        stats.pages_frozen = pages;
        stats.rows_frozen = ids.len();
        stats.new_watermark = table.frozen.max_frozen_row_id();
        self.metrics.add(Counter::PagesFrozen, pages as u64);
        Ok(stats)
    }

    /// One warming pass (§5.2 case 3): every block whose read count
    /// crossed `warm_read_threshold` is dissolved back into hot storage
    /// under fresh row ids, with index maintenance.
    pub fn warm_table(&self, table: &Arc<TableEntry>) -> Result<WarmStats> {
        let mut stats = WarmStats::default();
        for block in table.frozen.hot_blocks(self.cfg.warm_read_threshold) {
            let (old_ids, tuples) = table.frozen.take_block(block.index)?;
            for (old_row, tuple) in old_ids.into_iter().zip(tuples) {
                // Retire the frozen row's index entries, then re-insert hot.
                for index in table.all_indexes() {
                    let key = index.key_for(&table.schema, &tuple, old_row);
                    let _ = index.tree.index_remove(&key);
                }
                let new_row = table.next_row_id();
                table.tree.table_append(&table.layout, new_row, &tuple, |_, _, _, _| {})?;
                for index in table.all_indexes() {
                    let key = index.key_for(&table.schema, &tuple, new_row);
                    index.tree.index_insert(&key, new_row)?;
                }
                stats.rows_warmed += 1;
            }
            stats.blocks_warmed += 1;
        }
        self.metrics.add(Counter::RowsWarmed, stats.rows_warmed as u64);
        Ok(stats)
    }
}
