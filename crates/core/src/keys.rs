//! Order-preserving key encoding for secondary indexes (§5.1).
//!
//! Index B-Trees compare keys as byte strings, so typed keys must encode
//! such that byte order equals value order: integers are sign-flipped and
//! big-endian; strings are padded to a fixed width per column (all TPC-C
//! string keys are bounded). Non-unique indexes append the row id, making
//! every stored key unique while preserving user-key grouping.

use phoebe_common::ids::RowId;
use phoebe_storage::schema::Value;

/// Incremental builder for composite index keys.
#[derive(Default, Debug, Clone)]
pub struct KeyBuilder {
    buf: Vec<u8>,
}

impl KeyBuilder {
    pub fn new() -> Self {
        KeyBuilder { buf: Vec::with_capacity(32) }
    }

    pub fn push_i64(&mut self, v: i64) -> &mut Self {
        // Flip the sign bit: negative values sort below positive ones.
        self.buf.extend_from_slice(&((v as u64) ^ (1 << 63)).to_be_bytes());
        self
    }

    pub fn push_i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&((v as u32) ^ (1 << 31)).to_be_bytes());
        self
    }

    /// Fixed-width string segment: `s` truncated/zero-padded to `width`.
    /// Zero padding preserves order because index strings are compared
    /// within the same fixed-width segment.
    pub fn push_str_padded(&mut self, s: &str, width: usize) -> &mut Self {
        let bytes = s.as_bytes();
        let n = bytes.len().min(width);
        self.buf.extend_from_slice(&bytes[..n]);
        self.buf.extend(std::iter::repeat_n(0u8, width - n));
        self
    }

    /// Row-id suffix for non-unique indexes.
    pub fn push_row_id(&mut self, row: RowId) -> &mut Self {
        self.buf.extend_from_slice(&row.raw().to_be_bytes());
        self
    }

    /// Append a value per its type (strings use `width`).
    pub fn push_value(&mut self, v: &Value, width: usize) -> &mut Self {
        match v {
            Value::I64(x) => self.push_i64(*x),
            Value::I32(x) => self.push_i32(*x),
            Value::F64(x) => {
                // Order-preserving f64: flip sign bit for positives, all
                // bits for negatives (standard total-order trick).
                let bits = x.to_bits();
                let ordered = if bits >> 63 == 0 { bits ^ (1 << 63) } else { !bits };
                self.buf.extend_from_slice(&ordered.to_be_bytes());
                self
            }
            Value::Str(s) => self.push_str_padded(s, width),
        }
    }

    pub fn finish(&self) -> Vec<u8> {
        self.buf.clone()
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Width of a string column segment in index keys.
pub const DEFAULT_STR_KEY_WIDTH: usize = 16;

/// The smallest possible row-id suffix (range-scan lower bound).
pub const ROW_ID_MIN: [u8; 8] = [0; 8];

/// The largest possible row-id suffix (range-scan upper bound).
pub const ROW_ID_MAX: [u8; 8] = [0xff; 8];

#[cfg(test)]
mod tests {
    use super::*;

    fn k(f: impl FnOnce(&mut KeyBuilder)) -> Vec<u8> {
        let mut b = KeyBuilder::new();
        f(&mut b);
        b.finish()
    }

    #[test]
    fn i64_order_is_preserved() {
        let values = [i64::MIN, -100, -1, 0, 1, 100, i64::MAX];
        let keys: Vec<_> = values
            .iter()
            .map(|&v| {
                k(|b| {
                    b.push_i64(v);
                })
            })
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn i32_order_is_preserved() {
        let values = [i32::MIN, -5, 0, 7, i32::MAX];
        let keys: Vec<_> = values
            .iter()
            .map(|&v| {
                k(|b| {
                    b.push_i32(v);
                })
            })
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn f64_order_is_preserved() {
        let values = [-1e9, -1.5, -0.0, 0.0, 2.5, 1e18];
        let keys: Vec<_> = values
            .iter()
            .map(|&v| {
                k(|b| {
                    b.push_value(&Value::F64(v), 0);
                })
            })
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn padded_strings_sort_like_strings() {
        let values = ["", "ABLE", "BAR", "BARBAR", "OUGHT"];
        let keys: Vec<_> = values
            .iter()
            .map(|v| {
                k(|b| {
                    b.push_str_padded(v, 16);
                })
            })
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(keys.iter().all(|key| key.len() == 16));
    }

    #[test]
    fn composite_keys_group_by_prefix() {
        let a = k(|b| {
            b.push_i32(1).push_str_padded("SMITH", 16).push_row_id(RowId(5));
        });
        let b_ = k(|b| {
            b.push_i32(1).push_str_padded("SMITH", 16).push_row_id(RowId(9));
        });
        let c = k(|b| {
            b.push_i32(2).push_str_padded("AAAA", 16).push_row_id(RowId(1));
        });
        assert!(a < b_, "same prefix ordered by row id");
        assert!(b_ < c, "warehouse dominates");
        assert!(a.starts_with(&a[..20]) && b_.starts_with(&a[..20]));
    }

    #[test]
    fn tpcc_widest_key_fits_inline() {
        // (w i32)(d i32)(last 16)(first 16)(row id 8) = 48 <= MAX_KEY.
        let key = k(|b| {
            b.push_i32(1)
                .push_i32(10)
                .push_str_padded("OUGHTCALLYATION", 16)
                .push_str_padded("firstname0123456", 16)
                .push_row_id(RowId(u64::MAX));
        });
        assert!(key.len() <= phoebe_storage::node::MAX_KEY);
    }
}
