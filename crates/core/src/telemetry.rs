//! Kernel-side implementation of the live telemetry plane.
//!
//! [`phoebe_common::telemetry`] owns the HTTP listener and the Prometheus
//! text encoder; this module supplies the kernel data behind it: the
//! [`KernelTelemetry`] provider renders `/metrics` from a fresh
//! [`phoebe_common::metrics::MetricsSnapshot`] plus the runtime / WAL /
//! buffer-pool gauges, serves `/stats` via [`KernelStats::to_json`], and
//! answers `/trace?ms=N` by letting the flight recorder run `N` more
//! milliseconds and then draining the rings live (the seq-validated drain
//! is safe concurrent with writers — nothing stops while the snapshot is
//! taken).
//!
//! The provider holds a `Weak<Database>`: a scrape racing kernel shutdown
//! upgrades to `None` and the server answers 503 instead of touching a
//! dying kernel.

use crate::db::Database;
use phoebe_common::hist::SITES;
use phoebe_common::metrics::{COMPONENTS, COUNTERS};
use phoebe_common::telemetry::{PromText, TelemetryProvider};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// [`TelemetryProvider`] over a weak kernel reference.
pub struct KernelTelemetry {
    db: Weak<Database>,
}

impl KernelTelemetry {
    pub fn new(db: &Arc<Database>) -> Arc<Self> {
        Arc::new(KernelTelemetry { db: Arc::downgrade(db) })
    }
}

impl TelemetryProvider for KernelTelemetry {
    fn metrics_text(&self) -> Option<String> {
        self.db.upgrade().map(|db| prometheus_text(&db))
    }

    fn stats_json(&self) -> Option<String> {
        self.db.upgrade().map(|db| db.stats().to_json().render())
    }

    fn trace_json(&self, window_ms: u64) -> Option<String> {
        let db = self.db.upgrade()?;
        // Let the recorder fill `window_ms` more before snapshotting. The
        // rings keep recording throughout; the export drains whatever the
        // window currently holds.
        std::thread::sleep(Duration::from_millis(window_ms));
        Some(db.tracer().export_chrome_json())
    }
}

/// Render the full Prometheus text exposition for one kernel: every
/// operational counter, every Figure-12 component, every latency-site
/// histogram (cumulative octave buckets + sum/count), per-worker
/// scheduler time-in-state and progress heartbeats, and the WAL /
/// buffer-pool / fault-budget gauges the watchdog also samples.
pub fn prometheus_text(db: &Database) -> String {
    let snap = db.metrics.snapshot();
    let mut w = PromText::new();

    w.header("phoebe_counter_total", "Kernel operational counters.", "counter");
    for &(c, name) in COUNTERS.iter() {
        w.sample("phoebe_counter_total", &[("counter", name)], snap.counter(c));
    }

    w.header(
        "phoebe_component_busy_ns_total",
        "Cumulative busy time per kernel cost component (Figure 12).",
        "counter",
    );
    for &c in COMPONENTS.iter() {
        w.sample(
            "phoebe_component_busy_ns_total",
            &[("component", c.name())],
            snap.component_ns(c),
        );
    }
    w.header(
        "phoebe_component_ops_total",
        "Timed sections entered per kernel cost component.",
        "counter",
    );
    for &c in COMPONENTS.iter() {
        w.sample("phoebe_component_ops_total", &[("component", c.name())], snap.component_ops(c));
    }

    w.header(
        "phoebe_latency_ns",
        "Latency distribution per instrumented site, nanoseconds.",
        "histogram",
    );
    for &site in SITES.iter() {
        let h = snap.latency(site);
        w.histogram(
            "phoebe_latency_ns",
            &[("site", site.name())],
            &h.cumulative_octaves(),
            h.sum_ns(),
            h.count(),
        );
    }

    if let Some(rt) = db.try_runtime() {
        let rs = rt.stats();
        for (name, help, value) in [
            (
                "phoebe_runtime_tasks_completed_total",
                "Co-routines run to completion.",
                rs.tasks_completed,
            ),
            ("phoebe_runtime_polls_total", "Task polls across all workers.", rs.polls),
            ("phoebe_runtime_parks_total", "Times a worker parked empty-handed.", rs.parks),
            (
                "phoebe_runtime_tasks_pulled_global_total",
                "Tasks pulled from the global injector.",
                rs.tasks_pulled_global,
            ),
            (
                "phoebe_runtime_tasks_pulled_local_total",
                "Tasks pulled from local queues.",
                rs.tasks_pulled_local,
            ),
            (
                "phoebe_runtime_urgent_pull_stalls_total",
                "Urgent pulls that found nothing runnable.",
                rs.urgent_pull_stalls,
            ),
        ] {
            w.header(name, help, "counter");
            w.sample(name, &[], value);
        }
        for (name, help, value) in [
            ("phoebe_runtime_occupied_slots", "Task slots currently seated.", rs.occupied_slots),
            ("phoebe_runtime_ready_tasks", "Spawned tasks waiting for a slot.", rs.ready_tasks),
            (
                "phoebe_runtime_global_queue_depth",
                "Depth of the global injector queue.",
                rs.global_queue_depth,
            ),
        ] {
            w.header(name, help, "gauge");
            w.sample(name, &[], value);
        }

        w.header(
            "phoebe_worker_state_ns_total",
            "Cumulative wall time per worker and scheduler state.",
            "counter",
        );
        for (i, s) in rs.worker_state_ns.iter().enumerate() {
            let worker = i.to_string();
            for (state, ns) in [
                ("running", s.running_ns),
                ("ready", s.ready_ns),
                ("parked", s.parked_ns),
                ("io", s.io_ns),
            ] {
                w.sample(
                    "phoebe_worker_state_ns_total",
                    &[("worker", &worker), ("state", state)],
                    ns,
                );
            }
        }
        w.header(
            "phoebe_worker_polls_total",
            "Task polls per worker (the watchdog progress heartbeat).",
            "counter",
        );
        for (i, &polls) in rs.worker_polls.iter().enumerate() {
            w.sample("phoebe_worker_polls_total", &[("worker", &i.to_string())], polls);
        }
        w.header("phoebe_worker_occupied_slots", "Seated task slots per worker.", "gauge");
        for (i, &occ) in rs.worker_occupied.iter().enumerate() {
            w.sample("phoebe_worker_occupied_slots", &[("worker", &i.to_string())], occ);
        }
    }

    w.header("phoebe_wal_bytes_flushed_total", "Bytes physically flushed to WAL files.", "counter");
    w.sample("phoebe_wal_bytes_flushed_total", &[], db.wal.total_bytes_flushed());
    w.header("phoebe_wal_durable_gsn", "Globally durable GSN horizon.", "gauge");
    w.sample("phoebe_wal_durable_gsn", &[], db.wal.durable_gsn().min(db.wal.current_gsn()));
    w.header(
        "phoebe_wal_flush_horizon_age_ns",
        "How long the WAL flush horizon has been stuck behind appends.",
        "gauge",
    );
    w.sample("phoebe_wal_flush_horizon_age_ns", &[], db.wal.flush_horizon_age_ns());
    w.header("phoebe_wal_backlog_records", "WAL records appended but not yet flushed.", "gauge");
    w.sample("phoebe_wal_backlog_records", &[], db.wal.backlog_records());
    w.header("phoebe_wal_halted", "1 when the WAL hub halted after an I/O failure.", "gauge");
    w.sample("phoebe_wal_halted", &[], u64::from(db.wal.is_halted()));

    let (reads, writes) = db.pool.io_counts();
    w.header("phoebe_page_file_reads_total", "Pages read from the Data Page File.", "counter");
    w.sample("phoebe_page_file_reads_total", &[], reads);
    w.header("phoebe_page_file_writes_total", "Pages written to the Data Page File.", "counter");
    w.sample("phoebe_page_file_writes_total", &[], writes);
    w.header("phoebe_buffer_total_frames", "Buffer pool capacity in frames.", "gauge");
    w.sample("phoebe_buffer_total_frames", &[], db.pool.total_frames() as u64);
    w.header("phoebe_buffer_free_frames", "Free buffer frames across partitions.", "gauge");
    let free: u64 = (0..db.pool.partition_count()).map(|p| db.pool.free_frames(p) as u64).sum();
    w.sample("phoebe_buffer_free_frames", &[], free);
    w.header(
        "phoebe_fault_tickets_inflight",
        "Asynchronous page faults currently in flight.",
        "gauge",
    );
    w.sample("phoebe_fault_tickets_inflight", &[], db.pool.faults_inflight() as u64);
    w.header(
        "phoebe_fault_budget_limit",
        "In-flight fault cap enforced by buffer-pool backpressure.",
        "gauge",
    );
    w.sample("phoebe_fault_budget_limit", &[], db.pool.fault_budget_limit() as u64);

    w.header(
        "phoebe_trace_events_emitted_total",
        "Flight-recorder events emitted since boot (0 while disabled).",
        "counter",
    );
    w.sample("phoebe_trace_events_emitted_total", &[], db.tracer().total_emitted());

    w.finish()
}
