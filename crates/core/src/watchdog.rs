//! The stall watchdog: a sampling thread that turns kernel wedges into
//! incident records that carry their own evidence.
//!
//! Every [`WatchdogConfig::interval_ms`] the watchdog samples cheap
//! progress heartbeats — per-worker poll counters, the WAL flush-horizon
//! age, the buffer pool's fault-ticket budget, and (optionally) the
//! interval commit p99. None of these add hot-path cost: the counters
//! already exist for `/metrics`, and the watchdog only *reads* them.
//!
//! On a threshold breach the watchdog writes a structured incident
//! record to the incident directory with the same capture payload
//! `/trace` serves live: a flight-recorder snapshot (`trace.json`) plus
//! the full stats document (`stats.json`). A stalled kernel therefore
//! arrives at the operator already diagnosed — what breached, by how
//! much, and what every worker was doing in the seconds before.
//!
//! The watchdog is a dedicated OS thread, *not* a kernel co-routine: a
//! wedged runtime is exactly what it must keep observing.

use crate::db::Database;
use phoebe_common::config::WatchdogConfig;
use phoebe_common::hist::LatencySite;
use phoebe_common::json::Json;
use phoebe_common::metrics::Counter;
use phoebe_common::telemetry::IncidentLog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Handle to the running watchdog thread. `shutdown` (or drop) stops and
/// joins it.
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    incident_dir: PathBuf,
}

impl WatchdogHandle {
    /// Where this watchdog writes incident records.
    pub fn incident_dir(&self) -> &std::path::Path {
        &self.incident_dir
    }

    /// Stop the sampling thread and join it. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            // If the watchdog thread itself held the kernel's last Arc,
            // `Database::drop` (and thus this shutdown) runs *on* the
            // watchdog thread — joining would deadlock on ourselves. The
            // stop flag already guarantees the thread exits.
            if t.thread().id() != std::thread::current().id() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the watchdog over a weak kernel reference. The thread exits on
/// `shutdown` or as soon as the kernel is dropped.
pub fn start_watchdog(db: &Arc<Database>, cfg: WatchdogConfig) -> WatchdogHandle {
    let incident_dir =
        cfg.incident_dir.clone().unwrap_or_else(|| db.cfg.data_dir.join("incidents"));
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let weak = Arc::downgrade(db);
    let dir = incident_dir.clone();
    let thread = std::thread::Builder::new()
        .name("phoebe-watchdog".into())
        .spawn(move || watchdog_main(weak, cfg, dir, stop2))
        .expect("spawn watchdog thread");
    WatchdogHandle { stop, thread: Some(thread), incident_dir }
}

/// Per-detector state: when the current breach episode started and when
/// the last incident of this kind fired (cooldown).
#[derive(Default)]
struct Episode {
    since: Option<Instant>,
    last_incident: Option<Instant>,
}

impl Episode {
    /// Feed one observation. Returns `true` when the condition has held
    /// for `window` and the kind is out of its cooldown — i.e. exactly
    /// when an incident should fire.
    fn observe(&mut self, breached: bool, window: Duration, cooldown: Duration) -> bool {
        if !breached {
            self.since = None;
            return false;
        }
        let since = *self.since.get_or_insert_with(Instant::now);
        if since.elapsed() < window {
            return false;
        }
        if self.last_incident.is_some_and(|t| t.elapsed() < cooldown) {
            return false;
        }
        self.last_incident = Some(Instant::now());
        // Restart the episode so the *next* incident needs a fresh
        // sustained breach on top of the cooldown.
        self.since = None;
        true
    }
}

fn watchdog_main(weak: Weak<Database>, cfg: WatchdogConfig, dir: PathBuf, stop: Arc<AtomicBool>) {
    let log = IncidentLog::new(dir, cfg.max_incidents);
    let interval = Duration::from_millis(cfg.interval_ms);
    let worker_window = Duration::from_millis(cfg.worker_stall_ms);
    let wal_window = Duration::from_millis(cfg.wal_stall_ms);
    let cooldown = Duration::from_millis(cfg.cooldown_ms);

    // Per-worker poll heartbeat: (last polls value, Episode).
    let mut workers: Vec<(u64, Episode)> = Vec::new();
    let mut wal_stall = Episode::default();
    let mut wal_halt = Episode::default();
    let mut fault_budget = Episode::default();
    let mut p99 = Episode::default();
    let mut prev_metrics = weak.upgrade().map(|db| db.metrics.snapshot());

    loop {
        // Sleep the interval in short slices so shutdown stays prompt.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(
                Duration::from_millis(25).min(deadline.saturating_duration_since(Instant::now())),
            );
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Some(db) = weak.upgrade() else { return };

        // --- Worker progress: occupied slots but no polls for too long.
        if let Some(rt) = db.try_runtime() {
            let rs = rt.stats();
            workers.resize_with(rs.worker_polls.len(), Default::default);
            for (i, st) in workers.iter_mut().enumerate() {
                let polls = rs.worker_polls[i];
                let occupied = rs.worker_occupied.get(i).copied().unwrap_or(0);
                let stuck = occupied > 0 && polls == st.0;
                st.0 = polls;
                if st.1.observe(stuck, worker_window, cooldown) {
                    capture(
                        &db,
                        &log,
                        "worker_stall",
                        Json::obj()
                            .with("worker", i)
                            .with("occupied_slots", occupied)
                            .with("polls", polls)
                            .with("worker_stall_ms", cfg.worker_stall_ms),
                    );
                }
            }
        }

        // --- WAL flush horizon stuck behind appends.
        let age_ns = db.wal.flush_horizon_age_ns();
        if wal_stall.observe(age_ns >= wal_window.as_nanos() as u64, Duration::ZERO, cooldown) {
            capture(
                &db,
                &log,
                "wal_flush_stall",
                Json::obj()
                    .with("flush_horizon_age_ns", age_ns)
                    .with("backlog_records", db.wal.backlog_records())
                    .with("wal_stall_ms", cfg.wal_stall_ms),
            );
        }

        // --- WAL hub halted on an I/O failure (latched condition, so the
        // cooldown is what keeps this to one record per episode).
        if wal_halt.observe(db.wal.is_halted(), Duration::ZERO, cooldown) {
            capture(
                &db,
                &log,
                "wal_halted",
                Json::obj().with("backlog_records", db.wal.backlog_records()),
            );
        }

        // --- Fault-ticket budget pinned at the cap.
        let inflight = db.pool.faults_inflight();
        if fault_budget.observe(!db.pool.fault_budget_available(), worker_window, cooldown) {
            capture(
                &db,
                &log,
                "fault_budget_exhausted",
                Json::obj()
                    .with("faults_inflight", inflight)
                    .with("fault_budget_limit", db.pool.fault_budget_limit()),
            );
        }

        // --- Optional commit-p99 ceiling over the sampling window.
        if let Some(limit) = cfg.p99_limit_ns {
            let now = db.metrics.snapshot();
            let (breach, observed) = match prev_metrics.as_ref() {
                Some(prev) => {
                    let delta = now.delta_since(prev);
                    let commit = delta.latency(LatencySite::Commit);
                    (commit.count() > 0 && commit.p99() > limit, commit.p99())
                }
                None => (false, 0),
            };
            prev_metrics = Some(now);
            if p99.observe(breach, Duration::ZERO, cooldown) {
                capture(
                    &db,
                    &log,
                    "p99_breach",
                    Json::obj().with("commit_p99_ns", observed).with("p99_limit_ns", limit),
                );
            }
        }
    }
}

/// Write one incident with its evidence: the flight-recorder snapshot and
/// the full stats document — the same payload `/trace` and `/stats`
/// serve, so live and post-hoc diagnosis read identical artifacts.
fn capture(db: &Database, log: &IncidentLog, kind: &str, detail: Json) {
    let trace = db.tracer().export_chrome_json();
    let stats = db.stats().to_json().render();
    match log.record(kind, detail, &[("trace.json", &trace), ("stats.json", &stats)]) {
        Ok(Some(dir)) => {
            db.metrics.incr(Counter::WatchdogIncidents);
            eprintln!("phoebe-watchdog: {kind} incident recorded at {}", dir.display());
        }
        Ok(None) => {} // over the incident cap: stay quiet
        Err(e) => eprintln!("phoebe-watchdog: failed to record {kind} incident: {e}"),
    }
}
