//! Focused MVCC semantics tests: the paper's isolation-level rules (§6),
//! GC/twin lifecycle (§7.3), and RFA commit accounting (§8) observed
//! through the public API.

use phoebe_common::metrics::Counter;
use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use std::sync::Arc;

fn open_db() -> Arc<Database> {
    Database::open(KernelConfig::for_tests()).unwrap()
}

fn kv(db: &Arc<Database>) -> Arc<TableEntry> {
    db.create_table("kv", Schema::new(vec![("k", ColType::I64), ("v", ColType::I64)])).unwrap()
}

fn seed(db: &Arc<Database>, t: &Arc<TableEntry>, k: i64, v: i64) -> phoebe_common::ids::RowId {
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let r = tx.insert(t, vec![Value::I64(k), Value::I64(v)]).await.unwrap();
        tx.commit().await.unwrap();
        r
    })
}

#[test]
fn read_committed_exhibits_non_repeatable_reads_by_design() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 10);
    block_on(async {
        let mut rc = db.begin(IsolationLevel::ReadCommitted);
        assert_eq!(rc.read(&t, r).unwrap().unwrap()[1], Value::I64(10));
        let mut w = db.begin(IsolationLevel::ReadCommitted);
        w.update(&t, r, &[(1, Value::I64(20))]).await.unwrap();
        w.commit().await.unwrap();
        // RC refreshes its snapshot per statement: the second read differs.
        assert_eq!(rc.read(&t, r).unwrap().unwrap()[1], Value::I64(20));
        rc.commit().await.unwrap();
    });
    db.shutdown();
}

#[test]
fn version_chains_serve_multiple_snapshot_generations() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 100);
    block_on(async {
        // Three generations of readers pinned before successive updates.
        let mut r1 = db.begin(IsolationLevel::RepeatableRead);
        let _ = r1.read(&t, r).unwrap();
        let mut w = db.begin(IsolationLevel::ReadCommitted);
        w.update(&t, r, &[(1, Value::I64(200))]).await.unwrap();
        w.commit().await.unwrap();
        let mut r2 = db.begin(IsolationLevel::RepeatableRead);
        let _ = r2.read(&t, r).unwrap();
        let mut w = db.begin(IsolationLevel::ReadCommitted);
        w.update(&t, r, &[(1, Value::I64(300))]).await.unwrap();
        w.commit().await.unwrap();
        let mut r3 = db.begin(IsolationLevel::RepeatableRead);
        // Each reader sees its own generation from the same chain.
        assert_eq!(r1.read(&t, r).unwrap().unwrap()[1], Value::I64(100));
        assert_eq!(r2.read(&t, r).unwrap().unwrap()[1], Value::I64(200));
        assert_eq!(r3.read(&t, r).unwrap().unwrap()[1], Value::I64(300));
        r1.commit().await.unwrap();
        r2.commit().await.unwrap();
        r3.commit().await.unwrap();
    });
    db.shutdown();
}

#[test]
fn delete_respects_old_snapshots_until_gc() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 7);
    block_on(async {
        let mut old = db.begin(IsolationLevel::RepeatableRead);
        assert!(old.read(&t, r).unwrap().is_some());
        let mut d = db.begin(IsolationLevel::ReadCommitted);
        d.delete(&t, r).await.unwrap();
        d.commit().await.unwrap();
        // The old snapshot still sees the row; new snapshots don't.
        assert!(old.read(&t, r).unwrap().is_some(), "old snapshot preserved");
        let mut fresh = db.begin(IsolationLevel::ReadCommitted);
        assert!(fresh.read(&t, r).unwrap().is_none());
        fresh.commit().await.unwrap();
        old.commit().await.unwrap();
    });
    // Once no snapshot needs it, GC removes the tuple physically.
    let stats = db.collect_all();
    assert!(stats.tuples_deleted >= 1);
    db.shutdown();
}

#[test]
fn gc_reclaims_undo_and_twin_tables_end_to_end() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 0);
    block_on(async {
        for i in 1..=20i64 {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            tx.update(&t, r, &[(1, Value::I64(i))]).await.unwrap();
            tx.commit().await.unwrap();
        }
    });
    assert!(!db.twins.is_empty(), "twin tables exist while versions live");
    let stats = db.collect_all();
    assert!(stats.undo_reclaimed >= 20, "all committed undo reclaimable");
    // A second round may be needed for the twin watermark to advance.
    let stats2 = db.collect_all();
    assert!(
        stats.twins_reclaimed + stats2.twins_reclaimed > 0,
        "empty cold twin tables are reclaimed"
    );
    // Data still correct afterwards.
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(tx.read(&t, r).unwrap().unwrap()[1], Value::I64(20));
    block_on(tx.commit()).unwrap();
    db.shutdown();
}

#[test]
fn rfa_accounts_same_slot_commits_as_early() {
    let db = open_db();
    let t = kv(&db);
    block_on(async {
        for i in 0..12 {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            tx.insert(&t, vec![Value::I64(i), Value::I64(i)]).await.unwrap();
            tx.commit().await.unwrap();
        }
    });
    let snap = db.metrics.snapshot();
    assert!(
        snap.counter(Counter::RfaEarlyCommits) >= 11,
        "single-threaded writes never build remote dependencies"
    );
    db.shutdown();
}

#[test]
fn cross_slot_writes_trigger_remote_flush_waits() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 0);
    // Two external threads (distinct slots) ping-pong the same row with
    // wal_sync on: the second writer builds on the first's unflushed page.
    let mut handles = Vec::new();
    for i in 0..2i64 {
        let db = db.clone();
        let t = t.clone();
        handles.push(std::thread::spawn(move || {
            block_on(async {
                for j in 0..10 {
                    loop {
                        let mut tx = db.begin(IsolationLevel::ReadCommitted);
                        match tx.update(&t, r, &[(1, Value::I64(i * 100 + j))]).await {
                            Ok(_) => {
                                tx.commit().await.unwrap();
                                break;
                            }
                            Err(_) => tx.abort(),
                        }
                    }
                }
            })
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = db.metrics.snapshot();
    assert!(
        snap.counter(Counter::RemoteFlushWaits) > 0,
        "interleaved cross-slot writers must hit the remote path sometimes"
    );
    db.shutdown();
}

#[test]
fn scan_sees_consistent_prefix_under_concurrent_inserts() {
    let db = open_db();
    let t = db
        .create_table("events", Schema::new(vec![("bucket", ColType::I32), ("n", ColType::I64)]))
        .unwrap();
    let idx = db.create_index(&t, "by_bucket", vec![0], false).unwrap();
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..50 {
            tx.insert(&t, vec![Value::I32(i % 5), Value::I64(i as i64)]).await.unwrap();
        }
        tx.commit().await.unwrap();
    });
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let (db, t, stop) = (db.clone(), t.clone(), stop.clone());
        std::thread::spawn(move || {
            block_on(async {
                let mut i = 50i64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let mut tx = db.begin(IsolationLevel::ReadCommitted);
                    tx.insert(&t, vec![Value::I32((i % 5) as i32), Value::I64(i)]).await.unwrap();
                    tx.commit().await.unwrap();
                    i += 1;
                }
            })
        })
    };
    // Scans under load: every returned row must actually match the prefix.
    block_on(async {
        for _ in 0..30 {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            let rows = tx.scan_index(&t, &idx, &[Value::I32(2)], 1000).unwrap();
            assert!(!rows.is_empty());
            assert!(rows.iter().all(|(_, r)| r[0] == Value::I32(2)));
            tx.commit().await.unwrap();
        }
    });
    stop.store(true, std::sync::atomic::Ordering::Release);
    writer.join().unwrap();
    db.shutdown();
}

#[test]
fn update_rmw_increments_are_lost_update_free() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 0);
    let threads = 4;
    let per = 25;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let (db, t) = (db.clone(), t.clone());
            std::thread::spawn(move || {
                block_on(async {
                    for _ in 0..per {
                        loop {
                            let mut tx = db.begin(IsolationLevel::ReadCommitted);
                            let res = tx
                                .update_rmw(&t, r, &|cur| {
                                    vec![(1, Value::I64(cur[1].as_i64() + 1))]
                                })
                                .await;
                            match res {
                                Ok(_) => {
                                    tx.commit().await.unwrap();
                                    break;
                                }
                                Err(_) => tx.abort(),
                            }
                        }
                    }
                })
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(
        tx.read(&t, r).unwrap().unwrap()[1],
        Value::I64((threads * per) as i64),
        "every increment must land exactly once"
    );
    block_on(tx.commit()).unwrap();
    db.shutdown();
}

#[test]
fn abort_of_rmw_leaves_counter_untouched() {
    let db = open_db();
    let t = kv(&db);
    let r = seed(&db, &t, 1, 5);
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        tx.update_rmw(&t, r, &|cur| vec![(1, Value::I64(cur[1].as_i64() + 100))]).await.unwrap();
        assert_eq!(tx.read(&t, r).unwrap().unwrap()[1], Value::I64(105));
        tx.abort();
        let mut check = db.begin(IsolationLevel::ReadCommitted);
        assert_eq!(check.read(&t, r).unwrap().unwrap()[1], Value::I64(5));
        check.commit().await.unwrap();
    });
    db.shutdown();
}
