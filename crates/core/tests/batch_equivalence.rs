//! Batch-equivalence suite: `multi_get(keys)` / `multi_lookup(keys)` /
//! `multi_update_rmw(keys)` must be observably identical to the
//! sequential per-key loop — same visibility, same conflicts, same
//! rollback behavior — while running the descents interleaved.

use phoebe_common::metrics::Counter;
use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn open_db() -> Arc<Database> {
    Database::open(KernelConfig::for_tests()).unwrap()
}

fn kv(db: &Arc<Database>) -> Arc<TableEntry> {
    db.create_table("kv", Schema::new(vec![("k", ColType::I64), ("v", ColType::I64)])).unwrap()
}

fn seed_many(db: &Arc<Database>, t: &Arc<TableEntry>, n: i64) -> Vec<phoebe_common::ids::RowId> {
    block_on(async {
        let mut rows = Vec::new();
        // Commit in chunks so UNDO stays bounded.
        for chunk_lo in (0..n).step_by(500) {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            for k in chunk_lo..n.min(chunk_lo + 500) {
                rows.push(tx.insert(t, vec![Value::I64(k), Value::I64(k * 10)]).await.unwrap());
            }
            tx.commit().await.unwrap();
        }
        rows
    })
}

#[test]
fn multi_get_matches_sequential_reads() {
    let db = open_db();
    let t = kv(&db);
    // Enough rows that the table tree has inner levels (so descents hop,
    // prefetch and suspend rather than landing on a root leaf).
    let rows = seed_many(&db, &t, 5_000);
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        // Mixed batch: hits, a miss (never-allocated row id), repeats.
        let mut batch: Vec<_> = rows.iter().step_by(17).copied().collect();
        batch.push(phoebe_common::ids::RowId(1_000_000));
        batch.push(rows[3]);
        let batched = tx.multi_get(&t, &batch).await.unwrap();
        assert_eq!(batched.len(), batch.len());
        for (i, &row) in batch.iter().enumerate() {
            let seq = tx.read(&t, row).unwrap();
            match (&batched[i], &seq) {
                (Some(b), Some(s)) => assert_eq!(b.values(), s.values(), "key {i}"),
                (None, None) => {}
                _ => panic!("batched[{i}] disagrees with sequential read"),
            }
        }
        tx.commit().await.unwrap();
    });
    let snap = db.metrics.snapshot();
    assert!(snap.counter(Counter::BatchGets) >= 1);
    assert!(snap.counter(Counter::BatchKeys) >= 202);
    assert!(snap.counter(Counter::PrefetchesIssued) > 0, "interleaved descents must prefetch");
    db.shutdown();
}

#[test]
fn multi_lookup_matches_sequential_lookup_unique() {
    let db = open_db();
    let t = kv(&db);
    let idx = db.create_index(&t, "by_k", vec![0], true).unwrap();
    seed_many(&db, &t, 300);
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        // Hits and misses, shuffled order.
        let keys: Vec<Vec<Value>> = (0..320).map(|i| vec![Value::I64((i * 7) % 400)]).collect();
        let batched = tx.multi_lookup(&t, &idx, &keys).await.unwrap();
        for (i, key) in keys.iter().enumerate() {
            let seq = tx.lookup_unique(&t, &idx, key).unwrap();
            match (&batched[i], &seq) {
                (Some((br, bt)), Some((sr, st))) => {
                    assert_eq!(br, sr, "key {i} row id");
                    assert_eq!(bt.values(), st.values(), "key {i} tuple");
                }
                (None, None) => {}
                _ => panic!("batched[{i}] disagrees with lookup_unique"),
            }
        }
        tx.commit().await.unwrap();
    });
    db.shutdown();
}

/// A batch is one statement: under repeatable read it sees the pinned
/// snapshot; under read committed it sees data committed before the
/// statement began — exactly like the sequential loop's first read.
#[test]
fn multi_get_respects_isolation_levels() {
    let db = open_db();
    let t = kv(&db);
    let rows = seed_many(&db, &t, 10);
    block_on(async {
        let mut rr = db.begin(IsolationLevel::RepeatableRead);
        // Pin the snapshot with a first read.
        assert!(rr.read(&t, rows[0]).unwrap().is_some());
        let mut rc = db.begin(IsolationLevel::ReadCommitted);
        assert!(rc.read(&t, rows[0]).unwrap().is_some());
        // Concurrent committed update.
        let mut w = db.begin(IsolationLevel::ReadCommitted);
        w.update(&t, rows[5], &[(1, Value::I64(-1))]).await.unwrap();
        w.commit().await.unwrap();
        let rr_batch = rr.multi_get(&t, &rows).await.unwrap();
        assert_eq!(
            rr_batch[5].as_ref().unwrap().values()[1],
            Value::I64(50),
            "repeatable read must not see the later commit"
        );
        let rc_batch = rc.multi_get(&t, &rows).await.unwrap();
        assert_eq!(
            rc_batch[5].as_ref().unwrap().values()[1],
            Value::I64(-1),
            "read committed refreshes per statement"
        );
        rr.commit().await.unwrap();
        rc.commit().await.unwrap();
    });
    db.shutdown();
}

/// Writers atomically keep `v = k * factor`; every batched read must see
/// a tuple satisfying some generation's invariant — never a torn mix —
/// and agree with what a sequential read in the same statement window
/// could have returned.
#[test]
fn multi_get_is_consistent_under_concurrent_writers() {
    let db = open_db();
    let t = kv(&db);
    let rows = Arc::new(seed_many(&db, &t, 64));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (db, t, rows, stop) = (db.clone(), t.clone(), rows.clone(), stop.clone());
        std::thread::spawn(move || {
            block_on(async {
                let mut gen = 10i64;
                while !stop.load(Ordering::Acquire) {
                    gen += 1;
                    for (k, &row) in rows.iter().enumerate() {
                        loop {
                            let mut tx = db.begin(IsolationLevel::ReadCommitted);
                            let res = tx.update(&t, row, &[(1, Value::I64(k as i64 * gen))]).await;
                            match res {
                                Ok(_) => {
                                    tx.commit().await.unwrap();
                                    break;
                                }
                                Err(_) => tx.abort(),
                            }
                        }
                    }
                }
            })
        })
    };
    block_on(async {
        for _ in 0..50 {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            let batch = tx.multi_get(&t, &rows).await.unwrap();
            for (k, got) in batch.iter().enumerate() {
                let vals = got.as_ref().expect("rows are never deleted").values().to_vec();
                assert_eq!(vals[0], Value::I64(k as i64), "key column never changes");
                let v = match vals[1] {
                    Value::I64(v) => v,
                    ref other => panic!("unexpected value {other:?}"),
                };
                // v is always k * <some generation> (10 at seed time).
                if k != 0 {
                    assert_eq!(v % k as i64, 0, "tuple of key {k} is torn: v={v}");
                }
            }
            tx.commit().await.unwrap();
        }
    });
    stop.store(true, Ordering::Release);
    writer.join().unwrap();
    db.shutdown();
}

#[test]
fn multi_update_rmw_increments_are_lost_update_free() {
    let db = open_db();
    let t = kv(&db);
    let rows = Arc::new(seed_many(&db, &t, 8));
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        // Zero the counters first.
        for &r in rows.iter() {
            tx.update(&t, r, &[(1, Value::I64(0))]).await.unwrap();
        }
        tx.commit().await.unwrap();
    });
    let threads = 4;
    let per = 20;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let (db, t, rows) = (db.clone(), t.clone(), rows.clone());
            std::thread::spawn(move || {
                block_on(async {
                    for _ in 0..per {
                        loop {
                            let mut tx = db.begin(IsolationLevel::ReadCommitted);
                            let res = tx
                                .multi_update_rmw(&t, &rows, &|_, cur| {
                                    vec![(1, Value::I64(cur[1].as_i64() + 1))]
                                })
                                .await;
                            match res {
                                Ok(out) => {
                                    assert_eq!(out.len(), rows.len());
                                    tx.commit().await.unwrap();
                                    break;
                                }
                                Err(_) => tx.abort(),
                            }
                        }
                    }
                })
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    for &r in rows.iter() {
        assert_eq!(
            tx.read(&t, r).unwrap().unwrap()[1],
            Value::I64((threads * per) as i64),
            "every batched increment must land exactly once"
        );
    }
    block_on(tx.commit()).unwrap();
    db.shutdown();
}

/// A mid-batch write conflict fails the whole statement with the same
/// error the sequential loop would hit, and aborting the transaction
/// rolls back the batch's earlier keys too — no partial batch survives.
#[test]
fn multi_update_rmw_mid_batch_conflict_rolls_back_cleanly() {
    let db = open_db();
    let t = kv(&db);
    let rows = seed_many(&db, &t, 4);
    block_on(async {
        // Pin a repeatable-read victim, then commit a rival update to
        // rows[2] that its snapshot cannot see.
        let mut victim = db.begin(IsolationLevel::RepeatableRead);
        assert!(victim.read(&t, rows[0]).unwrap().is_some());
        let mut rival = db.begin(IsolationLevel::ReadCommitted);
        rival.update(&t, rows[2], &[(1, Value::I64(999))]).await.unwrap();
        rival.commit().await.unwrap();
        let err = victim
            .multi_update_rmw(&t, &rows, &|_, cur| vec![(1, Value::I64(cur[1].as_i64() + 1))])
            .await
            .expect_err("snapshot-stale write must conflict");
        assert!(
            matches!(err, PhoebeError::WriteConflict { .. }),
            "sequential loop reports WriteConflict; batch must too, got {err:?}"
        );
        victim.abort();
        // Keys before the conflicting one were written, then rolled back.
        let mut check = db.begin(IsolationLevel::ReadCommitted);
        let vals = check.multi_get(&t, &rows).await.unwrap();
        assert_eq!(vals[0].as_ref().unwrap().values()[1], Value::I64(0));
        assert_eq!(vals[1].as_ref().unwrap().values()[1], Value::I64(10));
        assert_eq!(vals[2].as_ref().unwrap().values()[1], Value::I64(999));
        assert_eq!(vals[3].as_ref().unwrap().values()[1], Value::I64(30));
        check.commit().await.unwrap();
    });
    db.shutdown();
}

/// With a buffer pool far smaller than the data set, batched descents
/// must take the kick-fault/suspend/resume path (not block the worker)
/// and still return exactly what sequential reads return.
#[test]
fn multi_get_survives_cold_buffer_pool() {
    let mut cfg = KernelConfig::for_tests();
    cfg.buffer_frames = 32;
    let db = Database::open(cfg).unwrap();
    let t = kv(&db);
    // A two-I64 leaf holds 640 rows, so 40k rows is 60+ leaves — roughly
    // twice the pool. Every batch below strides the whole table, so by
    // pigeonhole it must cross leaves that are not resident, making the
    // suspend-path assertion deterministic rather than dependent on how
    // much seed-time eviction pressure happened to survive.
    let n = 40_000i64;
    let rows = block_on(async {
        let mut rows = Vec::new();
        // Commit in chunks so UNDO stays bounded.
        for chunk in 0..(n / 500) {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            for k in (chunk * 500)..((chunk + 1) * 500) {
                rows.push(tx.insert(&t, vec![Value::I64(k), Value::I64(k * 10)]).await.unwrap());
            }
            tx.commit().await.unwrap();
        }
        rows
    });
    let before = db.metrics.snapshot();
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        // Batches that stride the whole table: mostly cold leaves.
        for start in 0..10 {
            let batch: Vec<_> = rows.iter().skip(start * 37).step_by(997).copied().collect();
            let got = tx.multi_get(&t, &batch).await.unwrap();
            for (i, &row) in batch.iter().enumerate() {
                let seq = tx.read(&t, row).unwrap().expect("row exists");
                assert_eq!(got[i].as_ref().unwrap().values(), seq.values());
            }
        }
        tx.commit().await.unwrap();
    });
    let after = db.metrics.snapshot();
    assert!(
        after.counter(Counter::FaultSuspends) > before.counter(Counter::FaultSuspends),
        "cold descents must suspend on background faults"
    );
    db.shutdown();
}
