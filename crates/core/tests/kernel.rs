//! Kernel-level integration tests: the full MVCC transaction path over the
//! tiered storage engine, exercised both from external threads and from
//! co-routines in the pool.

use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use std::sync::Arc;

fn open_db() -> Arc<Database> {
    Database::open(KernelConfig::for_tests()).unwrap()
}

fn accounts_schema() -> Schema {
    Schema::new(vec![("id", ColType::I64), ("owner", ColType::Str(16)), ("balance", ColType::I64)])
}

fn make_accounts(db: &Arc<Database>) -> Arc<TableEntry> {
    let t = db.create_table("accounts", accounts_schema()).unwrap();
    db.create_index(&t, "accounts_pk", vec![0], true).unwrap();
    t
}

fn row(id: i64, owner: &str, balance: i64) -> Vec<Value> {
    vec![Value::I64(id), Value::Str(owner.into()), Value::I64(balance)]
}

#[test]
fn insert_commit_read_roundtrip() {
    let db = open_db();
    let t = make_accounts(&db);
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let got = tx.read(&t, rid).unwrap().unwrap();
    assert_eq!(got, row(1, "alice", 100));
    block_on(tx.commit()).unwrap();
    db.shutdown();
}

#[test]
fn uncommitted_writes_are_invisible_and_own_writes_visible() {
    let db = open_db();
    let t = make_accounts(&db);
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    block_on(async {
        let mut writer = db.begin(IsolationLevel::ReadCommitted);
        writer.update(&t, rid, &[(2, Value::I64(999))]).await.unwrap();
        // Writer sees its own write.
        assert_eq!(writer.read(&t, rid).unwrap().unwrap()[2], Value::I64(999));
        // A fresh reader still sees the committed version.
        let mut reader = db.begin(IsolationLevel::ReadCommitted);
        assert_eq!(reader.read(&t, rid).unwrap().unwrap()[2], Value::I64(100));
        reader.commit().await.unwrap();
        writer.commit().await.unwrap();
        // Now it is visible.
        let mut reader2 = db.begin(IsolationLevel::ReadCommitted);
        assert_eq!(reader2.read(&t, rid).unwrap().unwrap()[2], Value::I64(999));
        reader2.commit().await.unwrap();
    });
    db.shutdown();
}

#[test]
fn repeatable_read_keeps_its_snapshot_read_committed_refreshes() {
    let db = open_db();
    let t = make_accounts(&db);
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    block_on(async {
        let mut rr = db.begin(IsolationLevel::RepeatableRead);
        let mut rc = db.begin(IsolationLevel::ReadCommitted);
        assert_eq!(rr.read(&t, rid).unwrap().unwrap()[2], Value::I64(100));
        assert_eq!(rc.read(&t, rid).unwrap().unwrap()[2], Value::I64(100));
        // A third transaction bumps the balance and commits.
        let mut w = db.begin(IsolationLevel::ReadCommitted);
        w.update(&t, rid, &[(2, Value::I64(150))]).await.unwrap();
        w.commit().await.unwrap();
        // RR still sees the old version; RC sees the new one.
        assert_eq!(rr.read(&t, rid).unwrap().unwrap()[2], Value::I64(100));
        assert_eq!(rc.read(&t, rid).unwrap().unwrap()[2], Value::I64(150));
        rr.commit().await.unwrap();
        rc.commit().await.unwrap();
    });
    db.shutdown();
}

#[test]
fn abort_rolls_back_updates_inserts_and_index_entries() {
    let db = open_db();
    let t = make_accounts(&db);
    let pk = t.index("accounts_pk").unwrap();
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        tx.update(&t, rid, &[(2, Value::I64(0))]).await.unwrap();
        let rid2 = tx.insert(&t, row(2, "bob", 50)).await.unwrap();
        assert!(tx.read(&t, rid2).unwrap().is_some());
        tx.abort();
        let mut check = db.begin(IsolationLevel::ReadCommitted);
        assert_eq!(check.read(&t, rid).unwrap().unwrap()[2], Value::I64(100));
        assert!(check.read(&t, rid2).unwrap().is_none(), "inserted row gone");
        assert!(
            check.lookup_unique(&t, &pk, &[Value::I64(2)]).unwrap().is_none(),
            "index entry rolled back"
        );
        check.commit().await.unwrap();
    });
    db.shutdown();
}

#[test]
fn delete_hides_row_then_gc_removes_it_physically() {
    let db = open_db();
    let t = make_accounts(&db);
    let pk = t.index("accounts_pk").unwrap();
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(7, "gone", 1)).await.unwrap();
        tx.commit().await.unwrap();
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        tx.delete(&t, rid).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    let mut check = db.begin(IsolationLevel::ReadCommitted);
    assert!(check.read(&t, rid).unwrap().is_none());
    block_on(check.commit()).unwrap();
    // GC: the deletion is globally visible, so the tuple and its index
    // entry are physically removed.
    let stats = db.collect_all();
    assert!(stats.tuples_deleted >= 1, "GC must remove the deleted tuple");
    let visible = t.tree.table_read(rid, |_, _, _, _| ()).unwrap();
    assert!(visible.is_none(), "tuple physically gone from the leaf");
    let mut check = db.begin(IsolationLevel::ReadCommitted);
    assert!(check.lookup_unique(&t, &pk, &[Value::I64(7)]).unwrap().is_none());
    block_on(check.commit()).unwrap();
    db.shutdown();
}

#[test]
fn unique_index_rejects_duplicates_atomically() {
    let db = open_db();
    let t = make_accounts(&db);
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let err = tx.insert(&t, row(1, "impostor", 0)).await.unwrap_err();
        assert!(matches!(err, phoebe_common::PhoebeError::DuplicateKey { .. }));
        tx.abort();
    });
    db.shutdown();
}

#[test]
fn write_write_conflict_aborts_repeatable_read() {
    let db = open_db();
    let t = make_accounts(&db);
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    block_on(async {
        // RR transaction takes its snapshot now.
        let mut rr = db.begin(IsolationLevel::RepeatableRead);
        let _ = rr.read(&t, rid).unwrap();
        // A second transaction updates and commits.
        let mut w = db.begin(IsolationLevel::ReadCommitted);
        w.update(&t, rid, &[(2, Value::I64(1))]).await.unwrap();
        w.commit().await.unwrap();
        // The RR write must fail with a write conflict.
        let err = rr.update(&t, rid, &[(2, Value::I64(2))]).await.unwrap_err();
        assert!(err.is_retryable());
        rr.abort();
    });
    db.shutdown();
}

#[test]
fn read_committed_waits_and_retries_against_inflight_writer() {
    let db = open_db();
    let t = make_accounts(&db);
    let rid = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let rid = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
        tx.commit().await.unwrap();
        rid
    });
    // Writer A holds the tuple from an external thread; writer B (in a
    // second thread) must wait until A commits, then apply on top.
    let db_a = db.clone();
    let t_a = t.clone();
    let a = std::thread::spawn(move || {
        block_on(async {
            let mut tx = db_a.begin(IsolationLevel::ReadCommitted);
            tx.update(&t_a, rid, &[(2, Value::I64(200))]).await.unwrap();
            std::thread::sleep(std::time::Duration::from_millis(100));
            tx.commit().await.unwrap();
        });
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    let db_b = db.clone();
    let t_b = t.clone();
    let b = std::thread::spawn(move || {
        block_on(async {
            let mut tx = db_b.begin(IsolationLevel::ReadCommitted);
            tx.update(&t_b, rid, &[(2, Value::I64(300))]).await.unwrap();
            tx.commit().await.unwrap();
        });
    });
    a.join().unwrap();
    b.join().unwrap();
    let mut check = db.begin(IsolationLevel::ReadCommitted);
    assert_eq!(check.read(&t, rid).unwrap().unwrap()[2], Value::I64(300));
    block_on(check.commit()).unwrap();
    db.shutdown();
}

#[test]
fn concurrent_transfers_preserve_total_balance() {
    let db = open_db();
    let t = make_accounts(&db);
    const ACCOUNTS: i64 = 10;
    const PER: i64 = 1_000;
    let rids: Vec<_> = block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let mut rids = Vec::new();
        for i in 0..ACCOUNTS {
            rids.push(tx.insert(&t, row(i, "acct", PER)).await.unwrap());
        }
        tx.commit().await.unwrap();
        rids
    });
    let rt = db.runtime();
    let handles: Vec<_> = (0..64u64)
        .map(|i| {
            let db = db.clone();
            let t = t.clone();
            let rids = rids.clone();
            rt.spawn(async move {
                let from = rids[(i % ACCOUNTS as u64) as usize];
                let to = rids[((i + 3) % ACCOUNTS as u64) as usize];
                if from == to {
                    return;
                }
                loop {
                    // Atomic read-modify-write: precomputing the new
                    // balance from a separate read would lose updates
                    // under read committed (two writers reading the same
                    // base) — the reason update_rmw exists.
                    let mut tx = db.begin(IsolationLevel::ReadCommitted);
                    let r1 = tx
                        .update_rmw(&t, from, &|cur| vec![(2, Value::I64(cur[2].as_i64() - 1))])
                        .await;
                    let r2 = tx
                        .update_rmw(&t, to, &|cur| vec![(2, Value::I64(cur[2].as_i64() + 1))])
                        .await;
                    match (r1, r2) {
                        (Ok(_), Ok(_)) => {
                            tx.commit().await.unwrap();
                            return;
                        }
                        _ => {
                            tx.abort();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let total: i64 = block_on(async {
        let mut tx = db.begin(IsolationLevel::RepeatableRead);
        let mut sum = 0;
        for rid in &rids {
            sum += tx.read(&t, *rid).unwrap().unwrap()[2].as_i64();
        }
        tx.commit().await.unwrap();
        sum
    });
    assert_eq!(total, ACCOUNTS * PER, "money must be conserved");
    db.shutdown();
}

#[test]
fn index_scans_respect_visibility() {
    let db = open_db();
    let t = db
        .create_table(
            "orders",
            Schema::new(vec![("customer", ColType::I32), ("amount", ColType::I64)]),
        )
        .unwrap();
    let by_cust = db.create_index(&t, "orders_by_customer", vec![0], false).unwrap();
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..20 {
            tx.insert(&t, vec![Value::I32(i % 4), Value::I64(i as i64)]).await.unwrap();
        }
        tx.commit().await.unwrap();
        // An uncommitted insert for customer 1 must not appear to others.
        let mut pending = db.begin(IsolationLevel::ReadCommitted);
        pending.insert(&t, vec![Value::I32(1), Value::I64(999)]).await.unwrap();
        let mut reader = db.begin(IsolationLevel::ReadCommitted);
        let rows = reader.scan_index(&t, &by_cust, &[Value::I32(1)], 100).unwrap();
        assert_eq!(rows.len(), 5, "customers 1 has 5 committed orders");
        assert!(rows.iter().all(|(_, r)| r[0] == Value::I32(1)));
        reader.commit().await.unwrap();
        pending.abort();
    });
    db.shutdown();
}

#[test]
fn freeze_then_read_from_block_store_then_warm() {
    let mut cfg = KernelConfig::for_tests();
    cfg.freeze_access_threshold = u64::MAX; // everything qualifies as cold
    cfg.freeze_batch_pages = 4;
    cfg.warm_read_threshold = 3;
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("events", Schema::new(vec![("v", ColType::I64)])).unwrap();
    // Enough rows to fill several leaves.
    let n: usize = 4000;
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..n {
            tx.insert(&t, vec![Value::I64(i as i64)]).await.unwrap();
        }
        tx.commit().await.unwrap();
    });
    let stats = db.freeze_table(&t).unwrap();
    assert!(stats.rows_frozen > 0, "cold full leaves must freeze");
    assert!(stats.new_watermark > 0);
    // Reads of frozen rows come from the Data Block File and stay correct.
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let frozen_rid = phoebe_common::ids::RowId(1);
    assert_eq!(tx.read(&t, frozen_rid).unwrap().unwrap()[0], Value::I64(0));
    for _ in 0..5 {
        let _ = tx.read(&t, frozen_rid).unwrap();
    }
    block_on(tx.commit()).unwrap();
    // The block got hot: warming moves rows back with fresh row ids.
    let warm = db.warm_table(&t).unwrap();
    assert!(warm.blocks_warmed >= 1);
    assert!(warm.rows_warmed > 0);
    // Old row id now resolves to nothing; data lives under new ids.
    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    assert!(tx.read(&t, frozen_rid).unwrap().is_none());
    block_on(tx.commit()).unwrap();
    let count = db.approximate_row_count(&t).unwrap();
    assert_eq!(count, n, "no rows lost across freeze/warm");
    db.shutdown();
}

#[test]
fn frozen_rows_update_out_of_place() {
    let mut cfg = KernelConfig::for_tests();
    cfg.freeze_access_threshold = u64::MAX;
    cfg.freeze_batch_pages = 2;
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("log", Schema::new(vec![("v", ColType::I64)])).unwrap();
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        for i in 0..2500 {
            tx.insert(&t, vec![Value::I64(i)]).await.unwrap();
        }
        tx.commit().await.unwrap();
    });
    let stats = db.freeze_table(&t).unwrap();
    assert!(stats.rows_frozen > 0);
    let old = phoebe_common::ids::RowId(2);
    block_on(async {
        let mut tx = db.begin(IsolationLevel::ReadCommitted);
        let new_rid = tx.update(&t, old, &[(0, Value::I64(-5))]).await.unwrap();
        assert_ne!(new_rid, old, "frozen update re-inserts hot");
        tx.commit().await.unwrap();
        let mut check = db.begin(IsolationLevel::ReadCommitted);
        assert!(check.read(&t, old).unwrap().is_none(), "tombstoned");
        assert_eq!(check.read(&t, new_rid).unwrap().unwrap()[0], Value::I64(-5));
        check.commit().await.unwrap();
    });
    db.shutdown();
}

#[test]
fn wal_replay_rebuilds_committed_state() {
    let cfg = KernelConfig::for_tests();
    let wal_dir = cfg.data_dir.join("wal");
    let (rid_keep, rid_dead) = {
        let db = Database::open(cfg.clone()).unwrap();
        let t = make_accounts(&db);
        let out = block_on(async {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            let keep = tx.insert(&t, row(1, "alice", 100)).await.unwrap();
            tx.commit().await.unwrap();
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            tx.update(&t, keep, &[(2, Value::I64(175))]).await.unwrap();
            tx.commit().await.unwrap();
            // This one aborts: must not reappear after replay.
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            let dead = tx.insert(&t, row(2, "ghost", 1)).await.unwrap();
            tx.abort();
            (keep, dead)
        });
        db.shutdown();
        out
    };
    // "Restart": fresh kernel over a fresh data dir, same WAL directory.
    let mut cfg2 = KernelConfig::for_tests();
    cfg2.data_dir = cfg.data_dir.join("recovered");
    let db2 = Database::open(cfg2).unwrap();
    let t2 = make_accounts(&db2);
    let replayed = db2.replay_wal(&wal_dir).unwrap();
    assert!(replayed >= 2);
    let mut tx = db2.begin(IsolationLevel::ReadCommitted);
    let got = tx.read(&t2, rid_keep).unwrap().unwrap();
    assert_eq!(got, row(1, "alice", 175), "insert + update replayed");
    assert!(tx.read(&t2, rid_dead).unwrap().is_none(), "aborted txn absent");
    block_on(tx.commit()).unwrap();
    db2.shutdown();
}

#[test]
fn snapshot_acquisition_is_single_timestamp() {
    let db = open_db();
    // O(1) property smoke check: snapshot cost must not grow with the
    // number of (idle) slots; we simply assert the snapshot is the clock's
    // latest issued timestamp.
    let s1 = db.clock.snapshot();
    let _ = db.clock.tick();
    let s2 = db.clock.snapshot();
    assert!(s2 > s1);
    db.shutdown();
}

#[test]
fn metrics_report_commits_and_wal_traffic() {
    let db = open_db();
    let t = make_accounts(&db);
    block_on(async {
        for i in 0..10 {
            let mut tx = db.begin(IsolationLevel::ReadCommitted);
            tx.insert(&t, row(i, "m", i)).await.unwrap();
            tx.commit().await.unwrap();
        }
    });
    let snap = db.metrics.snapshot();
    use phoebe_common::metrics::Counter;
    assert_eq!(snap.counter(Counter::Commits), 10);
    assert!(snap.counter(Counter::WalBytes) > 0);
    assert!(
        snap.counter(Counter::RfaEarlyCommits) >= 9,
        "single-slot writes must commit via the RFA fast path"
    );
    db.shutdown();
}
