//! The kernel flight recorder end to end: open a traced kernel, run real
//! transactions, and check the exported Chrome trace JSON has the tracks
//! the tooling expects; plus the recovery counters/latency site and the
//! scheduler wait-state surface added alongside it.

use phoebe_core::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn traced_cfg() -> KernelConfig {
    let mut cfg = KernelConfig::for_tests();
    cfg.trace = Some(phoebe_common::TraceConfig { path: None, ring_capacity: 8192 });
    cfg
}

fn accounts(db: &Arc<Database>) -> Arc<TableEntry> {
    db.create_table(
        "accounts",
        Schema::new(vec![
            ("id", ColType::I64),
            ("owner", ColType::Str(16)),
            ("balance", ColType::I64),
        ]),
    )
    .unwrap()
}

/// Commit/abort mix on the pool so every traced subsystem sees traffic.
fn churn(db: &Arc<Database>, table: &Arc<TableEntry>, txns: u64) {
    let rt = db.runtime();
    let (db2, t2) = (db.clone(), table.clone());
    rt.spawn(async move {
        for i in 0..txns {
            let mut tx = db2.begin(IsolationLevel::ReadCommitted);
            let row = tx
                .insert(&t2, vec![(i as i64).into(), format!("o{i}").into(), 100i64.into()])
                .await
                .unwrap();
            tx.read(&t2, row).unwrap();
            if i % 7 == 6 {
                tx.abort();
            } else {
                tx.commit().await.unwrap();
            }
        }
    })
    .join();
}

#[test]
fn export_has_worker_tracks_spans_and_counter() {
    let db = Database::open(traced_cfg()).unwrap();
    assert!(db.tracer().enabled());
    let table = accounts(&db);
    churn(&db, &table, 120);

    let json = db.tracer().export_chrome_json();
    // Well-formed Chrome trace document.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    // Per-worker named tracks and the subsystems riding on them.
    assert!(json.contains("\"name\":\"worker0/sched\""), "worker 0 scheduler track");
    assert!(json.contains("\"ph\":\"X\""), "at least one complete span");
    assert!(json.contains("\"name\":\"poll\""), "task poll spans");
    assert!(json.contains("\"name\":\"spawn\""), "task spawn instants");
    assert!(json.contains("\"name\":\"txn_begin\""), "txn begin instants");
    assert!(json.contains("\"name\":\"commit\""), "txn commit spans");
    assert!(json.contains("\"name\":\"group_commit\""), "group-commit batch spans");
    // Counter tracks: queue depth (sampled at global steal) and batch bytes.
    assert!(json.contains("\"name\":\"global_queue_depth\",\"ph\":\"C\""));
    assert!(json.contains("\"name\":\"wal_batch_bytes\",\"ph\":\"C\""));
    // Every yield instant carries its urgency annotation.
    if json.contains("\"name\":\"yield\"") {
        assert!(json.contains("\"urgency\":"));
    }
    db.shutdown();
}

#[test]
fn untraced_kernel_emits_nothing() {
    let db = Database::open(KernelConfig::for_tests()).unwrap();
    let table = accounts(&db);
    churn(&db, &table, 40);
    assert!(!db.tracer().enabled());
    assert_eq!(db.tracer().total_emitted(), 0);
    db.shutdown();
}

#[test]
fn shutdown_writes_trace_file_from_config_path() {
    let mut cfg = KernelConfig::for_tests();
    let path = cfg.data_dir.join("flight.json");
    cfg.trace = Some(TraceConfig::to_file(&path));
    let db = Database::open(cfg).unwrap();
    let table = accounts(&db);
    churn(&db, &table, 40);
    db.shutdown();
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""));
}

#[test]
fn recovery_surfaces_counters_and_latency_site() {
    let cfg = KernelConfig::for_tests();
    {
        let db = Database::open(cfg.clone()).unwrap();
        let table = accounts(&db);
        churn(&db, &table, 30);
        db.shutdown();
    }
    // Same data dir: open finds the previous incarnation's WAL and replays.
    let db = Database::open(cfg).unwrap();
    let info = db.recovery_info();
    assert!(info.txns > 0, "previous commits must be recovered");
    assert!(info.records > 0, "scan must count decoded records");
    assert_eq!(info.tail_bytes_discarded, 0, "clean shutdown leaves no torn tail");

    let stats = db.stats();
    assert_eq!(stats.counter("recovery_records_replayed"), info.records);
    assert_eq!(stats.counter("recovery_tail_bytes_discarded"), 0);
    let replay = stats.latency(LatencySite::RecoveryReplay);
    assert_eq!(replay.count, 1, "one replay per recovering open");
    assert!(replay.max_ns > 0);
    db.shutdown();
}

#[test]
fn stats_surface_scheduler_gauges_and_worker_states() {
    let db = Database::open(KernelConfig::for_tests()).unwrap();
    let table = accounts(&db);
    churn(&db, &table, 80);

    let stats = db.stats();
    assert_eq!(stats.worker_states.len(), 2, "one wait-state row per worker");
    let busy: u64 =
        stats.worker_states.iter().map(|w| w.running_ns + w.ready_ns + w.parked_ns + w.io_ns).sum();
    assert!(busy > 0, "workers must have accounted time somewhere");
    assert!(stats.runtime.polls > 0);
    let json = stats.to_json().render();
    assert!(json.contains("\"global_queue_depth\""));
    assert!(json.contains("\"occupied_slots\""));
    assert!(json.contains("\"workers\""));

    // Reporter ticks deliver per-interval deltas with the same shape.
    let seen: Arc<Mutex<Vec<KernelStats>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let reporter =
        db.start_stats_reporter(Duration::from_millis(30), move |s| sink.lock().unwrap().push(s));
    while seen.lock().unwrap().len() < 2 {
        std::thread::sleep(Duration::from_millis(10));
    }
    reporter.stop();
    let ticks = seen.lock().unwrap();
    for tick in ticks.iter() {
        assert_eq!(tick.worker_states.len(), 2);
    }
    // Interval deltas must be far below the cumulative totals a long-lived
    // kernel accrues (i.e. they were actually subtracted): each ~30 ms tick
    // can account at most ~2×interval per worker with generous slack.
    let second = &ticks[1];
    let delta: u64 = second
        .worker_states
        .iter()
        .map(|w| w.running_ns + w.ready_ns + w.parked_ns + w.io_ns)
        .sum();
    assert!(delta < 4 * 30_000_000 * 2, "tick must carry a delta, not cumulative time");
    db.shutdown();
}
