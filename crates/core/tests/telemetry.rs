//! The live telemetry plane, end to end: Prometheus exposition
//! completeness, the HTTP endpoints against a real kernel, the stats
//! reporter's clean join, and the stall watchdog capturing evidence for
//! a deliberately wedged WAL.

use phoebe_common::hist::SITES;
use phoebe_common::metrics::COUNTERS;
use phoebe_common::{FaultConfig, WatchdogConfig};
use phoebe_core::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn accounts(db: &Arc<Database>) -> Arc<TableEntry> {
    db.create_table(
        "accounts",
        Schema::new(vec![
            ("id", ColType::I64),
            ("owner", ColType::Str(16)),
            ("balance", ColType::I64),
        ]),
    )
    .unwrap()
}

/// Commit/abort mix so counters and histograms carry real traffic.
fn churn(db: &Arc<Database>, table: &Arc<TableEntry>, txns: u64) {
    let rt = db.runtime();
    let (db2, t2) = (db.clone(), table.clone());
    rt.spawn(async move {
        for i in 0..txns {
            let mut tx = db2.begin(IsolationLevel::ReadCommitted);
            let row = tx
                .insert(&t2, vec![(i as i64).into(), format!("o{i}").into(), 100i64.into()])
                .await
                .unwrap();
            tx.read(&t2, row).unwrap();
            if i % 5 == 4 {
                tx.abort();
            } else {
                tx.commit().await.unwrap();
            }
        }
    })
    .join();
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    write!(s, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    let status: u16 =
        out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).expect("status line");
    let body = out.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Completeness guard: every latency site and every operational counter
/// must appear in both `/metrics` text and the stats JSON — a new
/// `LatencySite` or `Counter` variant cannot silently skip export.
#[test]
fn every_site_and_counter_exports_to_prometheus_and_json() {
    let db = Database::open(KernelConfig::for_tests()).unwrap();
    let table = accounts(&db);
    churn(&db, &table, 50);

    let prom = phoebe_core::telemetry::prometheus_text(&db);
    let json = db.stats().to_json().render();
    for &site in SITES.iter() {
        let name = site.name();
        assert!(
            prom.contains(&format!("phoebe_latency_ns_count{{site=\"{name}\"}}")),
            "latency site {name} missing from /metrics"
        );
        assert!(json.contains(&format!("\"{name}\"")), "latency site {name} missing from JSON");
    }
    for &(_, name) in COUNTERS.iter() {
        assert!(
            prom.contains(&format!("phoebe_counter_total{{counter=\"{name}\"}}")),
            "counter {name} missing from /metrics"
        );
        assert!(json.contains(&format!("\"{name}\"")), "counter {name} missing from JSON");
    }
    // Worker time-in-state must be present for every worker and state.
    for w in 0..db.cfg.workers {
        for state in ["running", "ready", "parked", "io"] {
            assert!(
                prom.contains(&format!(
                    "phoebe_worker_state_ns_total{{worker=\"{w}\",state=\"{state}\"}}"
                )),
                "worker {w} state {state} missing from /metrics"
            );
        }
    }
    db.shutdown();
}

/// Prometheus invariants on a live kernel: histogram bucket counts are
/// cumulative and agree with `_count`, and `_sum`/`_count` are consistent
/// with the recorded traffic.
#[test]
fn prometheus_histograms_are_cumulative_and_consistent() {
    let db = Database::open(KernelConfig::for_tests()).unwrap();
    let table = accounts(&db);
    churn(&db, &table, 100);

    let stats = db.stats();
    let commits = stats.counter("commits");
    assert_eq!(commits, 80);
    let prom = phoebe_core::telemetry::prometheus_text(&db);

    // The commit histogram: every bucket line's value must be
    // non-decreasing, and the +Inf bucket must equal _count.
    let mut last = 0u64;
    let mut inf = None;
    for line in prom.lines().filter(|l| l.starts_with("phoebe_latency_ns_bucket{site=\"commit\"")) {
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= last, "bucket counts must be cumulative: {line}");
        last = value;
        if line.contains("le=\"+Inf\"") {
            inf = Some(value);
        }
    }
    let count_line = prom
        .lines()
        .find(|l| l.starts_with("phoebe_latency_ns_count{site=\"commit\"}"))
        .expect("commit _count present");
    let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(inf, Some(count), "+Inf bucket must equal _count");
    assert_eq!(count, commits, "commit histogram count matches the counter");
    let sum_line = prom
        .lines()
        .find(|l| l.starts_with("phoebe_latency_ns_sum{site=\"commit\"}"))
        .expect("commit _sum present");
    let sum: u64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(sum > 0, "committed work must have accumulated latency");
    db.shutdown();
}

/// The full HTTP surface against a live kernel on an ephemeral port.
#[test]
fn http_endpoints_serve_metrics_stats_and_live_trace() {
    let cfg = KernelConfig::builder()
        .workers(2)
        .slots_per_worker(4)
        .buffer_frames(256)
        .data_dir(KernelConfig::for_tests().data_dir)
        .telemetry_addr("127.0.0.1:0")
        .build()
        .unwrap();
    let db = Database::open(cfg).unwrap();
    let addr = db.telemetry_addr().expect("telemetry server running");
    let table = accounts(&db);
    churn(&db, &table, 60);

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE phoebe_latency_ns histogram"), "{body:.200}");
    assert!(body.contains("phoebe_counter_total{counter=\"commits\"} 48"));
    assert!(body.contains("phoebe_worker_state_ns_total{worker=\"0\",state=\"running\"}"));
    assert!(body.contains("phoebe_wal_bytes_flushed_total"));

    let (status, body) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"counters\"") && body.contains("\"commits\":48"), "{body:.200}");

    // Live flight-recorder snapshot: telemetry auto-enables an in-memory
    // tracer, so the Perfetto document carries real events — and the
    // kernel keeps running (we churn again afterwards).
    let (status, body) = http_get(addr, "/trace?ms=30");
    assert_eq!(status, 200);
    assert!(body.contains("\"traceEvents\""), "{body:.200}");
    assert!(body.contains("\"ph\""), "trace should hold real events: {body:.200}");
    churn(&db, &table, 10);

    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    // Shutdown stops the listener; the address must stop answering.
    db.shutdown();
    assert!(db.telemetry_addr().is_none(), "shutdown tears the server down");
}

/// The reporter handle joins cleanly: after `join` returns true the sink
/// can never fire again, so teardown during `Database` drop cannot race
/// a dead reporter.
#[test]
fn stats_reporter_joins_cleanly_and_deltas_stay_sane() {
    let db = Database::open(KernelConfig::for_tests()).unwrap();
    let table = accounts(&db);
    let reports = Arc::new(std::sync::Mutex::new(Vec::<KernelStats>::new()));
    let sink = Arc::clone(&reports);
    let reporter =
        db.start_stats_reporter(Duration::from_millis(20), move |s| sink.lock().unwrap().push(s));
    churn(&db, &table, 120);
    let deadline = Instant::now() + Duration::from_secs(5);
    while reports.lock().unwrap().len() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(reporter.join(Duration::from_secs(5)), "reporter must join");
    assert!(reporter.is_done());
    let n = reports.lock().unwrap().len();
    assert!(n >= 2, "expected at least two interval reports, got {n}");
    // After join, no further reports can arrive.
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(reports.lock().unwrap().len(), n, "sink fired after join");
    // Interval deltas: runtime counters are per-interval, not cumulative
    // absolutes — the sum across reports cannot exceed the final
    // cumulative value, and no interval underflowed into u64 wrap.
    let total_polls = db.stats().runtime.polls;
    let reported: u64 = reports.lock().unwrap().iter().map(|s| s.runtime.polls).sum();
    assert!(
        reported <= total_polls,
        "interval polls {reported} exceed cumulative {total_polls}: reporter not delta'ing"
    );
    for s in reports.lock().unwrap().iter() {
        assert!(s.runtime.polls < u64::MAX / 2, "runtime delta underflowed");
    }
    db.shutdown();
}

/// The watchdog satellite: wedge the WAL flush path with the SimFs
/// torture disk and assert a structured incident record — with its
/// flight-recorder snapshot and stats dump attached — appears within the
/// threshold window.
#[test]
fn wedged_wal_flush_produces_incident_with_evidence() {
    let cfg = KernelConfig::builder()
        .workers(2)
        .slots_per_worker(4)
        .buffer_frames(256)
        .data_dir(KernelConfig::for_tests().data_dir)
        .fault(FaultConfig::crash_only(7))
        .watchdog(WatchdogConfig {
            interval_ms: 10,
            worker_stall_ms: 100,
            wal_stall_ms: 40,
            cooldown_ms: 60_000,
            max_incidents: 8,
            ..WatchdogConfig::default()
        })
        .build()
        .unwrap();
    let incident_root = cfg.data_dir.join("incidents");
    let db = Database::open(cfg).unwrap();
    let table = accounts(&db);
    churn(&db, &table, 10); // healthy traffic first: no incidents yet

    // Kill the simulated disk: every subsequent WAL write/fsync fails, so
    // the flusher halts the hub and the flush horizon freezes behind the
    // records the doomed commit appended.
    db.fault_sim().expect("fault-injected kernel").crash();
    let rt = db.runtime();
    let (db2, t2) = (db.clone(), table.clone());
    let commit_result = rt
        .spawn(async move {
            let mut tx = db2.begin(IsolationLevel::ReadCommitted);
            tx.insert(&t2, vec![999i64.into(), "doomed".to_string().into(), 1i64.into()]).await?;
            tx.commit().await
        })
        .join();
    assert!(commit_result.is_err(), "commit on a dead disk must fail");
    assert!(db.wal.is_halted(), "failed flush must halt the hub");

    // Within the threshold window (40 ms stall + 10 ms sampling, plus
    // slack for the capture itself) an incident directory must appear.
    let deadline = Instant::now() + Duration::from_secs(10);
    let incident = loop {
        if let Ok(rd) = std::fs::read_dir(&incident_root) {
            if let Some(dir) = rd
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy().contains("wal_")))
            {
                break dir;
            }
        }
        assert!(Instant::now() < deadline, "no WAL incident recorded within 10 s");
        std::thread::sleep(Duration::from_millis(10));
    };

    // The record and both evidence artifacts must be present and sane.
    let record = std::fs::read_to_string(incident.join("incident.json")).unwrap();
    assert!(
        record.contains("\"kind\":\"wal_flush_stall\"")
            || record.contains("\"kind\":\"wal_halted\""),
        "unexpected incident kind: {record}"
    );
    assert!(record.contains("\"artifacts\":"), "{record}");
    let trace = std::fs::read_to_string(incident.join("trace.json")).unwrap();
    assert!(trace.contains("\"traceEvents\""), "flight-recorder snapshot missing/invalid");
    let stats = std::fs::read_to_string(incident.join("stats.json")).unwrap();
    assert!(stats.contains("\"wal\""), "stats dump missing/invalid");

    // The incident is also visible as a counter on the scrape path.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.stats().counter("watchdog_incidents") == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(db.stats().counter("watchdog_incidents") >= 1);
    db.shutdown();
}
