//! The kernel-wide observability surface, exercised through the public
//! API only: `Database::stats()` percentiles after a real workload,
//! typed `Row` access, and the periodic `StatsReporter` deltas.

use phoebe_core::prelude::*;
use phoebe_runtime::block_on;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn open_db() -> Arc<Database> {
    Database::open(KernelConfig::for_tests()).unwrap()
}

fn accounts(db: &Arc<Database>) -> Arc<TableEntry> {
    db.create_table(
        "accounts",
        Schema::new(vec![
            ("id", ColType::I64),
            ("owner", ColType::Str(16)),
            ("balance", ColType::I64),
        ]),
    )
    .unwrap()
}

/// Run a commit/abort mix so every hot-path histogram sees traffic.
fn churn(db: &Arc<Database>, table: &Arc<TableEntry>, txns: u64) {
    let rt = db.runtime();
    let (db2, t2) = (db.clone(), table.clone());
    rt.spawn(async move {
        for i in 0..txns {
            let mut tx = db2.begin(IsolationLevel::ReadCommitted);
            let row = tx
                .insert(&t2, vec![(i as i64).into(), format!("o{i}").into(), 100i64.into()])
                .await
                .unwrap();
            tx.read(&t2, row).unwrap();
            if i % 5 == 4 {
                tx.abort();
            } else {
                tx.commit().await.unwrap();
            }
        }
    })
    .join();
}

#[test]
fn stats_report_commit_percentiles_after_workload() {
    let db = open_db();
    let table = accounts(&db);
    churn(&db, &table, 200);

    let stats = db.stats();
    let commit = stats.latency(LatencySite::Commit);
    assert_eq!(commit.count, 160, "4 of every 5 transactions commit");
    assert!(commit.p50_ns > 0, "commit p50 must be nonzero after commits");
    assert!(
        commit.p50_ns <= commit.p95_ns && commit.p95_ns <= commit.p99_ns,
        "p50={} p95={} p99={} must be monotone",
        commit.p50_ns,
        commit.p95_ns,
        commit.p99_ns
    );
    assert!(commit.p99_ns <= commit.max_ns);

    let abort = stats.latency(LatencySite::Abort);
    assert_eq!(abort.count, 40);
    assert!(abort.p50_ns <= abort.p95_ns && abort.p95_ns <= abort.p99_ns);

    // Synchronous commits flushed the WAL, so flush percentiles exist too
    // and stay monotone.
    let flush = stats.latency(LatencySite::WalFlush);
    assert!(flush.count > 0, "durable commits imply WAL flushes");
    assert!(flush.p50_ns <= flush.p95_ns && flush.p95_ns <= flush.p99_ns);

    // The counters and the histograms must agree through the public API.
    assert_eq!(stats.counter("commits"), 160);
    assert_eq!(stats.counter("aborts"), 40);
    db.shutdown();
}

#[test]
fn stats_json_is_one_line_and_carries_the_sites() {
    let db = open_db();
    let table = accounts(&db);
    churn(&db, &table, 25);
    let line = db.stats().to_json().render();
    assert!(!line.contains('\n'), "machine-readable output must be one line");
    for key in ["\"commit\"", "\"wal_flush\"", "\"buffer_fault\"", "\"p99_ns\"", "\"counters\""] {
        assert!(line.contains(key), "stats JSON missing {key}: {line}");
    }
    db.shutdown();
}

#[test]
fn row_supports_named_typed_and_positional_access() {
    let db = open_db();
    let table = accounts(&db);
    let rt = db.runtime();
    let (db2, t2) = (db.clone(), table.clone());
    let row_id = rt
        .spawn(async move {
            let mut tx = db2.begin(IsolationLevel::ReadCommitted);
            let id =
                tx.insert(&t2, vec![7i64.into(), "alice".into(), 250i64.into()]).await.unwrap();
            tx.commit().await.unwrap();
            id
        })
        .join();

    let mut tx = db.begin(IsolationLevel::ReadCommitted);
    let row = tx.read(&table, row_id).unwrap().expect("row exists");

    // Named access.
    assert_eq!(row.get("id"), &Value::I64(7));
    assert_eq!(row.i64("balance"), 250);
    assert_eq!(row.str("owner"), "alice");
    assert!(row.try_get("no_such_column").is_none());

    // Positional access stays available for schema-shaped code.
    assert_eq!(row[1], Value::Str("alice".into()));
    assert_eq!(row.len(), 3);

    // Equality against plain value vectors (both directions).
    let expected = vec![Value::I64(7), Value::Str("alice".into()), Value::I64(250)];
    assert_eq!(row, expected);
    assert_eq!(expected, row);

    // And the escape hatch back into owned values.
    assert_eq!(row.clone().into_values(), expected);
    block_on(tx.commit()).unwrap();
    db.shutdown();
}

#[test]
fn reporter_emits_interval_deltas_not_cumulative_totals() {
    let db = open_db();
    let table = accounts(&db);

    let emissions: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let total_count = Arc::new(AtomicU64::new(0));
    let (em, tc) = (emissions.clone(), total_count.clone());
    let reporter = db.start_stats_reporter(Duration::from_millis(50), move |delta| {
        let commits = delta.counter("commits");
        em.lock().unwrap().push(commits);
        tc.fetch_add(commits, Ordering::Relaxed);
    });

    churn(&db, &table, 100);
    // Give the reporter time to cover the tail of the workload.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while total_count.load(Ordering::Relaxed) < 80 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    reporter.stop();
    assert!(reporter.is_stopped());

    let seen = emissions.lock().unwrap().clone();
    assert!(!seen.is_empty(), "reporter never fired");
    // Deltas across intervals must sum to the workload total, proving the
    // sink sees per-interval activity rather than repeated running totals.
    assert_eq!(total_count.load(Ordering::Relaxed), 80, "deltas sum to committed txns");
    db.shutdown();
}

#[test]
fn stats_survive_and_stop_reporters_on_shutdown() {
    let db = open_db();
    let table = accounts(&db);
    let fired = Arc::new(AtomicU64::new(0));
    let f2 = fired.clone();
    let reporter = db.start_stats_reporter(Duration::from_millis(10), move |_| {
        f2.fetch_add(1, Ordering::Relaxed);
    });
    churn(&db, &table, 10);
    // Shutdown must raise the stop flag itself; dropping the handle after
    // is a no-op.
    db.shutdown();
    assert!(reporter.is_stopped(), "shutdown stops reporters");
    let after = fired.load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(fired.load(Ordering::Relaxed), after, "no emissions after shutdown");
}
