//! Scheduler stress tests: the pull-based loop under load, urgency
//! handling, affinity routing, and wake-up correctness.

use phoebe_runtime::{block_on, yield_now, Notify, Runtime, Urgency};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn thousand_tasks_drain_through_few_slots() {
    let rt = Runtime::with_shape(2, 4);
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..1000u64)
        .map(|i| {
            let done = Arc::clone(&done);
            rt.spawn(async move {
                for _ in 0..(i % 7) {
                    yield_now(Urgency::Low).await;
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(done.load(Ordering::Relaxed), 1000);
    let mut stats = rt.stats();
    for _ in 0..200 {
        if stats.tasks_completed == 1000 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        stats = rt.stats();
    }
    assert_eq!(stats.tasks_completed, 1000);
    assert!(stats.tasks_pulled_global == 1000);
    rt.shutdown();
}

#[test]
fn high_urgency_yields_pause_pulling() {
    // One worker, two slots: a high-urgency spinner plus a stream of quick
    // tasks. The spinner must not be starved, and urgent stalls must be
    // recorded by the scheduler.
    let rt = Runtime::with_shape(1, 2);
    let spins = Arc::new(AtomicU64::new(0));
    let spinner = {
        let spins = Arc::clone(&spins);
        rt.spawn(async move {
            for _ in 0..200 {
                yield_now(Urgency::High).await;
                spins.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    let quick: Vec<_> =
        (0..100).map(|_| rt.spawn(async { yield_now(Urgency::Low).await })).collect();
    spinner.join();
    for q in quick {
        q.join();
    }
    assert_eq!(spins.load(Ordering::Relaxed), 200);
    assert!(rt.stats().urgent_pull_stalls > 0, "urgency must gate pulling");
    rt.shutdown();
}

#[test]
fn affinity_keeps_partition_locality() {
    let rt = Runtime::with_shape(4, 2);
    let mut handles = Vec::new();
    for w in 0..4usize {
        for _ in 0..25 {
            handles.push((
                w,
                rt.spawn_on(w, async move {
                    yield_now(Urgency::Low).await;
                    phoebe_runtime::current_slot().unwrap().worker.raw() as usize
                }),
            ));
        }
    }
    for (expect, h) in handles {
        assert_eq!(h.join(), expect);
    }
    assert_eq!(rt.stats().tasks_pulled_local, 100);
    rt.shutdown();
}

#[test]
fn notify_wakes_sleepers_across_workers() {
    let rt = Runtime::with_shape(3, 4);
    let gate = Arc::new(Notify::new());
    let woken = Arc::new(AtomicU64::new(0));
    let sleepers: Vec<_> = (0..12)
        .map(|_| {
            let gate = Arc::clone(&gate);
            let woken = Arc::clone(&woken);
            rt.spawn(async move {
                gate.notified().await;
                woken.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(woken.load(Ordering::Relaxed), 0, "nobody wakes early");
    gate.notify_all();
    for s in sleepers {
        s.join();
    }
    assert_eq!(woken.load(Ordering::Relaxed), 12);
    rt.shutdown();
}

#[test]
fn mixed_block_on_and_pool_interoperate() {
    // The kernel mixes pool co-routines with external block_on callers;
    // both must make progress against shared Notify state. Subscriptions
    // are established *before* the corresponding notify (Notify is
    // generation-counted: a notification before subscription is not
    // replayed), so each round is race-free by construction.
    let rt = Runtime::with_shape(2, 2);
    let gate = Arc::new(Notify::new());
    let back = Arc::new(Notify::new());
    for _ in 0..10 {
        let back_waiter = back.notified(); // subscribe before spawning
        let pool_side = {
            let (gate, back) = (Arc::clone(&gate), Arc::clone(&back));
            rt.spawn(async move {
                gate.notified().await;
                back.notify_all();
            })
        };
        // Give the pool task time to subscribe, then release it.
        std::thread::sleep(Duration::from_millis(10));
        gate.notify_all();
        block_on(back_waiter);
        pool_side.join();
    }
    rt.shutdown();
}

#[test]
fn tasks_spawned_from_inside_tasks_run() {
    let rt = Runtime::with_shape(2, 2);
    let rt2 = Arc::clone(&rt);
    let outer = rt.spawn(async move {
        let inner = rt2.spawn(async { 21 * 2 });
        // Poll-friendly wait: the inner handle is joined from a blocking
        // helper thread to avoid blocking a worker slot.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(inner.join());
        });
        loop {
            if let Ok(v) = rx.try_recv() {
                return v;
            }
            yield_now(Urgency::Low).await;
        }
    });
    assert_eq!(outer.join(), 42);
    rt.shutdown();
}

#[test]
fn stats_poll_counters_advance() {
    let rt = Runtime::with_shape(1, 1);
    for _ in 0..10 {
        rt.spawn(async {
            for _ in 0..5 {
                yield_now(Urgency::Low).await;
            }
        })
        .join();
    }
    // join() returns from inside the final poll, a hair before the worker
    // bumps its completion counter; give the stats a moment to settle.
    let mut stats = rt.stats();
    for _ in 0..200 {
        if stats.tasks_completed == 10 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        stats = rt.stats();
    }
    assert!(stats.polls >= 60, "each yield costs at least one poll");
    assert_eq!(stats.tasks_completed, 10);
    rt.shutdown();
}
