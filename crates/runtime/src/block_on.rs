//! A minimal single-future executor for tests and external callers.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

struct ThreadWaker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drive `future` to completion on the calling thread.
///
/// This is the escape hatch for code outside the co-routine pool (tests,
/// examples, loaders). Like the pool's workers it is level-triggered: if a
/// poll returns `Pending` without a wake, it re-polls after a short park, so
/// condition-checking futures always make progress.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let tw =
        Arc::new(ThreadWaker { thread: std::thread::current(), notified: AtomicBool::new(false) });
    let waker = Waker::from(tw.clone());
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                if !tw.notified.swap(false, Ordering::AcqRel) {
                    std::thread::park_timeout(Duration::from_micros(100));
                    tw.notified.store(false, Ordering::Release);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    #[test]
    fn block_on_drives_pending_futures() {
        struct CountDown(u32);
        impl Future for CountDown {
            type Output = u32;
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0 == 0 {
                    Poll::Ready(0)
                } else {
                    self.0 -= 1;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(CountDown(50)), 0);
    }

    #[test]
    fn block_on_survives_wakes_from_other_threads() {
        let n = Arc::new(crate::Notify::new());
        let n2 = n.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            n2.notify_all();
        });
        block_on(n.notified());
        t.join().unwrap();
    }
}
