//! A process-wide timer service: `sleep`/`sleep_until` futures for
//! co-routines running on the pool.
//!
//! The executor is level-triggered, but a worker whose *other* slots keep
//! making progress never takes the park-timeout backstop — a future that
//! just returns `Pending` until a deadline could starve under load. The
//! timer fixes that with one lazily-spawned background thread holding a
//! deadline heap; at each deadline it fires the registered wakers, which
//! unpark the owning workers. Used by the kernel's `StatsReporter` for
//! its periodic ticks.

use phoebe_common::sync::{Condvar, Rank, RankedMutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::OnceLock;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

struct Entry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

#[derive(Default)]
struct TimerState {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

struct Timer {
    state: RankedMutex<TimerState>,
    cv: Condvar,
}

impl Timer {
    fn global() -> &'static Timer {
        static TIMER: OnceLock<&'static Timer> = OnceLock::new();
        TIMER.get_or_init(|| {
            let timer: &'static Timer = Box::leak(Box::new(Timer {
                state: RankedMutex::new(Rank::Timer, "timer.state", TimerState::default()),
                cv: Condvar::new(),
            }));
            std::thread::Builder::new()
                .name("phoebe-timer".into())
                .spawn(move || timer.run())
                .expect("spawn timer thread");
            timer
        })
    }

    fn register(&self, deadline: Instant, waker: Waker) {
        let mut s = self.state.lock();
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Reverse(Entry { deadline, seq, waker }));
        drop(s);
        self.cv.notify_one();
    }

    fn run(&self) {
        let mut due: Vec<Waker> = Vec::new();
        loop {
            {
                let mut s = self.state.lock();
                loop {
                    let now = Instant::now();
                    match s.heap.peek() {
                        None => {
                            s.wait(&self.cv);
                        }
                        Some(Reverse(e)) if e.deadline <= now => {
                            while let Some(Reverse(e)) = s.heap.peek() {
                                if e.deadline > now {
                                    break;
                                }
                                due.push(s.heap.pop().expect("peeked").0.waker);
                            }
                            break;
                        }
                        Some(Reverse(e)) => {
                            let wait = e.deadline - now;
                            s.wait_for(&self.cv, wait);
                        }
                    }
                }
            }
            for w in due.drain(..) {
                w.wake();
            }
        }
    }
}

/// Future that resolves at `deadline`. Level-triggered safe: it
/// re-registers its (cheaply cloned) waker on every poll, so spurious
/// polls cost one heap push and late polls resolve immediately.
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            Timer::global().register(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Sleep until a specific instant.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// Sleep for a duration from now.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep { deadline: Instant::now() + duration }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn sleep_resolves_after_duration() {
        let rt = Runtime::with_shape(1, 2);
        let t0 = Instant::now();
        rt.spawn(async {
            sleep(Duration::from_millis(30)).await;
        })
        .join();
        assert!(t0.elapsed() >= Duration::from_millis(25), "woke too early");
        rt.shutdown();
    }

    #[test]
    fn sleep_does_not_starve_under_busy_sibling_slots() {
        // One worker, two slots: a busy-yielding task occupies one slot
        // while the sleeper waits in the other. The timer thread must
        // wake the sleeper even though the worker never parks.
        let rt = Runtime::with_shape(1, 2);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let busy = rt.spawn(async move {
            while !stop2.load(std::sync::atomic::Ordering::Acquire) {
                crate::yield_point::yield_now(crate::yield_point::Urgency::Low).await;
            }
        });
        let t0 = Instant::now();
        rt.spawn(async {
            sleep(Duration::from_millis(20)).await;
        })
        .join();
        let waited = t0.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Release);
        busy.join();
        assert!(waited >= Duration::from_millis(15), "woke too early: {waited:?}");
        assert!(waited < Duration::from_secs(5), "starved: {waited:?}");
        rt.shutdown();
    }

    #[test]
    fn many_concurrent_sleeps_fire() {
        let rt = Runtime::with_shape(2, 8);
        let handles: Vec<_> = (0..16u64)
            .map(|i| {
                rt.spawn(async move {
                    sleep(Duration::from_millis(5 + i % 7)).await;
                    i
                })
            })
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (0..16).sum::<u64>());
        rt.shutdown();
    }
}
