//! The worker pool and pull-based scheduler (§7.1).

use crate::task::{enter_slot, waker_for, Completer, JoinHandle, Task, WakeState};
use crate::yield_point::{take_last_urgency, Urgency};
use crossbeam::deque::{Injector, Steal};
use phoebe_common::sync::{Rank, RankedMutex, RankedRwLock};
use phoebe_common::trace::{EventKind, Tracer};
use std::collections::VecDeque;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Pool shape. `workers × slots_per_worker` bounds transaction concurrency,
/// exactly as §7.1 describes ("the configured number of worker threads and
/// the task slots determine transaction concurrency").
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    pub workers: usize,
    pub slots_per_worker: usize,
    /// How long an idle worker parks before a forced re-poll round.
    pub park_timeout: Duration,
    /// Flight recorder the worker loop emits scheduler events into
    /// (task polls, yields, parks, global-queue depth). Disabled by
    /// default: each emit site then costs one relaxed atomic load.
    pub tracer: Arc<Tracer>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            slots_per_worker: 32,
            park_timeout: Duration::from_micros(100),
            tracer: Arc::new(Tracer::disabled()),
        }
    }
}

impl RuntimeConfig {
    pub fn new(workers: usize, slots_per_worker: usize) -> Self {
        RuntimeConfig { workers, slots_per_worker, ..RuntimeConfig::default() }
    }
}

/// Per-worker duties run between scheduling rounds. The kernel installs a
/// hook that performs the paper's dedicated-slot work: page swaps when free
/// frames drop below the watermark, and UNDO GC every N transactions
/// (§7.1, Figure 6).
pub trait WorkerHook: Send + Sync + 'static {
    fn tick(&self, worker: usize);
}

/// Scheduler statistics (observability + tests). Counters are cumulative;
/// `occupied_slots`, `ready_tasks` and `global_queue_depth` are gauges
/// sampled at call time.
#[derive(Debug, Default, Clone)]
pub struct RuntimeStats {
    pub tasks_completed: u64,
    pub polls: u64,
    pub parks: u64,
    pub tasks_pulled_global: u64,
    pub tasks_pulled_local: u64,
    pub urgent_pull_stalls: u64,
    /// Task slots currently holding a seated co-routine, summed over
    /// workers.
    pub occupied_slots: u64,
    /// Spawned tasks waiting for a slot (global queue + local queues).
    pub ready_tasks: u64,
    /// Depth of the global injector queue alone.
    pub global_queue_depth: u64,
    /// Cumulative wall time each worker spent per scheduler state,
    /// indexed by worker.
    pub worker_state_ns: Vec<WorkerTimeInState>,
    /// Cumulative poll count per worker — the watchdog's progress
    /// heartbeat: a worker with occupied slots whose poll count stops
    /// advancing is wedged.
    pub worker_polls: Vec<u64>,
    /// Seated-slot gauge per worker (same data `occupied_slots` sums).
    pub worker_occupied: Vec<u64>,
}

/// Cumulative per-worker wall time split by what the worker was doing:
/// polling seated tasks (`running`), pulling/bookkeeping between polls
/// (`ready`), parked with nothing runnable (`parked`), or running the
/// kernel hook's background duties — page swaps, GC (`io`). The four
/// always sum to the worker's lifetime, so interval deltas give a
/// utilization profile.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerTimeInState {
    pub running_ns: u64,
    pub ready_ns: u64,
    pub parked_ns: u64,
    pub io_ns: u64,
}

/// Indices into `WorkerStats::state_ns`.
const ST_RUNNING: usize = 0;
const ST_READY: usize = 1;
const ST_PARKED: usize = 2;
const ST_IO: usize = 3;

#[derive(Default)]
struct WorkerStats {
    tasks_completed: AtomicU64,
    polls: AtomicU64,
    parks: AtomicU64,
    pulled_global: AtomicU64,
    pulled_local: AtomicU64,
    urgent_pull_stalls: AtomicU64,
    /// Gauge: slots currently seated on this worker (stored each round).
    occupied: AtomicU64,
    /// Cumulative ns per scheduler state (`ST_*` indices).
    state_ns: [AtomicU64; 4],
}

struct Shared {
    cfg: RuntimeConfig,
    injector: Injector<Task>,
    locals: Vec<RankedMutex<VecDeque<Task>>>,
    worker_threads: RankedRwLock<Vec<std::thread::Thread>>,
    hook: RankedRwLock<Option<Arc<dyn WorkerHook>>>,
    shutdown: AtomicBool,
    stats: Vec<WorkerStats>,
}

impl Shared {
    fn unpark_all(&self) {
        for t in self.worker_threads.read().iter() {
            t.unpark();
        }
    }

    fn unpark_one(&self, worker: usize) {
        if let Some(t) = self.worker_threads.read().get(worker) {
            t.unpark();
        }
    }
}

/// The co-routine pool runtime. Spawned futures are transactions; they are
/// seated in task slots and run to completion on one worker.
pub struct Runtime {
    shared: Arc<Shared>,
    threads: RankedMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Runtime {
    pub fn new(cfg: RuntimeConfig) -> Arc<Self> {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.slots_per_worker > 0, "need at least one task slot");
        let shared = Arc::new(Shared {
            locals: (0..cfg.workers)
                .map(|_| {
                    RankedMutex::new(Rank::RuntimeQueue, "runtime.local_queue", VecDeque::new())
                })
                .collect(),
            worker_threads: RankedRwLock::new(
                Rank::RuntimeShared,
                "runtime.worker_threads",
                Vec::with_capacity(cfg.workers),
            ),
            injector: Injector::new(),
            hook: RankedRwLock::new(Rank::RuntimeShared, "runtime.hook", None),
            shutdown: AtomicBool::new(false),
            stats: (0..cfg.workers).map(|_| WorkerStats::default()).collect(),
            cfg,
        });
        let rt = Arc::new(Runtime {
            shared: shared.clone(),
            threads: RankedMutex::new(Rank::RuntimeShared, "runtime.thread_handles", Vec::new()),
        });
        let mut threads = rt.threads.lock();
        for w in 0..shared.cfg.workers {
            let sh = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("phoebe-worker-{w}"))
                .spawn(move || worker_main(sh, w))
                .expect("spawn worker thread");
            threads.push(handle);
        }
        // Wait until every worker has registered its Thread handle so that
        // early spawns can unpark them.
        while shared.worker_threads.read().len() < shared.cfg.workers {
            std::thread::yield_now();
        }
        drop(threads);
        rt
    }

    /// Convenience constructor matching a kernel configuration.
    pub fn with_shape(workers: usize, slots_per_worker: usize) -> Arc<Self> {
        Runtime::new(RuntimeConfig::new(workers, slots_per_worker))
    }

    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.cfg
    }

    /// Install the per-worker background duty hook (page swaps, GC).
    pub fn set_hook(&self, hook: Arc<dyn WorkerHook>) {
        *self.shared.hook.write() = Some(hook);
    }

    /// Submit a transaction co-routine to the global task queue.
    pub fn spawn<F, T>(&self, future: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.spawn_inner(future, None)
    }

    /// Submit a co-routine bound to a specific worker — workload affinity
    /// (§9): with affinity on, each warehouse's transactions run on a home
    /// worker, eliminating cross-worker contention on its pages.
    pub fn spawn_on<F, T>(&self, worker: usize, future: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        self.spawn_inner(future, Some(worker % self.shared.cfg.workers))
    }

    fn spawn_inner<F, T>(&self, future: F, affinity: Option<usize>) -> JoinHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        assert!(!self.shared.shutdown.load(Ordering::Acquire), "spawn on a shut-down runtime");
        let (handle, completer) = JoinHandle::pair();
        let wrapped = CompletionFuture { inner: Box::pin(future), completer: Some(completer) };
        let task = Task { future: Box::pin(wrapped) };
        self.shared.cfg.tracer.instant(EventKind::TaskSpawn, 0, 0, 0);
        match affinity {
            Some(w) => {
                self.shared.locals[w].lock().push_back(task);
                self.shared.unpark_one(w);
            }
            None => {
                self.shared.injector.push(task);
                self.shared.unpark_all();
            }
        }
        handle
    }

    /// Aggregate scheduler statistics across workers.
    pub fn stats(&self) -> RuntimeStats {
        let mut out = RuntimeStats::default();
        // ORDERING: statistics reads; each counter is independent and a
        // slightly stale aggregate is fine — nothing synchronizes on it.
        for s in &self.shared.stats {
            out.tasks_completed += s.tasks_completed.load(Ordering::Relaxed);
            let polls = s.polls.load(Ordering::Relaxed);
            out.polls += polls;
            out.worker_polls.push(polls);
            out.parks += s.parks.load(Ordering::Relaxed);
            out.tasks_pulled_global += s.pulled_global.load(Ordering::Relaxed);
            out.tasks_pulled_local += s.pulled_local.load(Ordering::Relaxed);
            out.urgent_pull_stalls += s.urgent_pull_stalls.load(Ordering::Relaxed);
            let occupied = s.occupied.load(Ordering::Relaxed);
            out.occupied_slots += occupied;
            out.worker_occupied.push(occupied);
            // ORDERING: as above — independent statistic reads.
            out.worker_state_ns.push(WorkerTimeInState {
                running_ns: s.state_ns[ST_RUNNING].load(Ordering::Relaxed),
                ready_ns: s.state_ns[ST_READY].load(Ordering::Relaxed),
                parked_ns: s.state_ns[ST_PARKED].load(Ordering::Relaxed),
                io_ns: s.state_ns[ST_IO].load(Ordering::Relaxed),
            });
        }
        out.global_queue_depth = self.shared.injector.len() as u64;
        out.ready_tasks = out.global_queue_depth
            + self.shared.locals.iter().map(|l| l.lock().len() as u64).sum::<u64>();
        out
    }

    /// Stop accepting work, drain current tasks, and join the workers.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.unpark_all();
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Wraps a user future so its result (or panic) lands in the join handle.
struct CompletionFuture<T> {
    inner: Pin<Box<dyn Future<Output = T> + Send + 'static>>,
    completer: Option<Completer<T>>,
}

impl<T: Send + 'static> Future for CompletionFuture<T> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let poll = std::panic::catch_unwind(AssertUnwindSafe(|| this.inner.as_mut().poll(cx)));
        match poll {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(v)) => {
                this.completer.take().expect("polled after completion").complete(Ok(v));
                Poll::Ready(())
            }
            Err(panic) => {
                this.completer.take().expect("polled after completion").complete(Err(panic));
                Poll::Ready(())
            }
        }
    }
}

/// A co-routine seated in a task slot.
struct Seated {
    future: Pin<Box<dyn Future<Output = ()> + Send + 'static>>,
    wake: Arc<WakeState>,
    waker: Waker,
    /// Set when the task's last yield was high-urgency: the worker must not
    /// pull new tasks until this task resolves (§7.1).
    urgent: bool,
}

fn worker_main(shared: Arc<Shared>, worker: usize) {
    phoebe_common::metrics::set_current_worker(worker);
    shared.worker_threads.write().push(std::thread::current());
    let slots_n = shared.cfg.slots_per_worker;
    let mut slots: Vec<Option<Seated>> = (0..slots_n).map(|_| None).collect();
    let stats = &shared.stats[worker];
    let tracer = shared.cfg.tracer.clone();
    // Time-in-state accounting: every instant of the worker's life is
    // charged to exactly one `ST_*` bucket at the phase boundaries below.
    let mut mark = Instant::now();
    let charge = |state: usize, mark: &mut Instant| {
        let now = Instant::now();
        // ORDERING: statistic counter, read only by `stats()` aggregation.
        stats.state_ns[state].fetch_add((now - *mark).as_nanos() as u64, Ordering::Relaxed);
        *mark = now;
    };

    loop {
        // Clone the hook out so its guard is not held across the tick —
        // hooks reach into pool/db state whose locks rank below the
        // runtime's.
        let hook = shared.hook.read().clone();
        if let Some(hook) = hook {
            hook.tick(worker);
        }
        charge(ST_IO, &mut mark);

        // Poll every occupied slot that has been woken.
        let mut progressed = false;
        let mut urgent_slots = 0usize;
        let mut occupied = 0usize;
        // Index-driven on purpose: the body re-borrows `slots[i]` mutably
        // and immutably across the poll, which `iter_mut` can't express.
        #[allow(clippy::needless_range_loop)]
        for i in 0..slots_n {
            let ready = match &slots[i] {
                Some(seated) => seated.wake.ready.swap(false, Ordering::AcqRel),
                None => continue,
            };
            occupied += 1;
            if !ready {
                if slots[i].as_ref().is_some_and(|s| s.urgent) {
                    urgent_slots += 1;
                }
                continue;
            }
            progressed = true;
            // ORDERING: statistic counter; the poll itself is ordered by
            // the `ready` AcqRel swap above.
            stats.polls.fetch_add(1, Ordering::Relaxed);
            let seated = slots[i].as_mut().expect("occupied slot");
            let _guard = enter_slot(worker, i);
            let mut cx = Context::from_waker(&seated.waker);
            let poll_start = tracer.span_begin();
            match seated.future.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    tracer.span_end(EventKind::TaskPoll, i as u32, poll_start, 0);
                    tracer.instant(EventKind::TaskDone, i as u32, 0, 0);
                    slots[i] = None;
                    occupied -= 1;
                    // ORDERING: statistic counter (completion publishing
                    // happens through the join handle, not this counter).
                    stats.tasks_completed.fetch_add(1, Ordering::Relaxed);
                }
                Poll::Pending => {
                    tracer.span_end(EventKind::TaskPoll, i as u32, poll_start, 0);
                    seated.urgent = take_last_urgency() == Urgency::High;
                    tracer.instant(EventKind::Yield, i as u32, !seated.urgent as u64, 0);
                    if seated.urgent {
                        urgent_slots += 1;
                    }
                }
            }
        }
        charge(ST_RUNNING, &mut mark);

        // Pull-based scheduling: fill vacant slots from the local (affinity)
        // queue first, then the global queue — unless a high-urgency task is
        // pending resolution, in which case pause new-task acceptance.
        let mut pulled_any = false;
        if urgent_slots == 0 {
            #[allow(clippy::needless_range_loop)]
            for i in 0..slots_n {
                if slots[i].is_some() {
                    continue;
                }
                let task = {
                    let mut local = shared.locals[worker].lock();
                    local.pop_front()
                };
                let (task, from_local) = match task {
                    Some(t) => (t, true),
                    None => match pop_global(&shared.injector) {
                        Some(t) => (t, false),
                        None => break,
                    },
                };
                if from_local {
                    // ORDERING: statistic counters; task handoff is ordered
                    // by the local-queue mutex / injector internally.
                    stats.pulled_local.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.pulled_global.fetch_add(1, Ordering::Relaxed);
                }
                pulled_any = true;
                let wake = WakeState::new(std::thread::current());
                let waker = waker_for(&wake);
                slots[i] = Some(Seated { future: task.future, wake, waker, urgent: false });
                occupied += 1;
                progressed = true;
            }
        } else {
            // ORDERING: statistic counter.
            stats.urgent_pull_stalls.fetch_add(1, Ordering::Relaxed);
        }
        if pulled_any || occupied > 0 {
            // Global-queue depth, sampled at the pull point (§7.1). Sampling
            // every busy round (not just rounds that stole) keeps the counter
            // fresh in the ring for long-lived tasks, whose pulls all happen
            // at startup and would otherwise be overwritten on wrap.
            tracer.instant(EventKind::QueueDepth, 0, shared.injector.len() as u64, 0);
        }
        // ORDERING: statistic gauge, read only by `stats()`.
        stats.occupied.store(occupied as u64, Ordering::Relaxed);

        if occupied == 0 {
            let queues_empty =
                shared.injector.is_empty() && shared.locals[worker].lock().is_empty();
            if queues_empty {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // ORDERING: statistic counter; parking itself synchronizes
                // through `park_timeout`/`unpark`.
                stats.parks.fetch_add(1, Ordering::Relaxed);
                charge(ST_READY, &mut mark);
                let park_start = tracer.span_begin();
                std::thread::park_timeout(shared.cfg.park_timeout);
                tracer.span_end(EventKind::Park, 0, park_start, 0);
                tracer.instant(EventKind::Unpark, 0, 0, 0);
                charge(ST_PARKED, &mut mark);
            }
        } else if !progressed {
            // Everything pending and nothing woke: park briefly, then force
            // a re-poll round (level-triggered backstop for condition
            // futures and lock timeouts).
            // ORDERING: statistic counter, as above.
            stats.parks.fetch_add(1, Ordering::Relaxed);
            charge(ST_READY, &mut mark);
            let park_start = tracer.span_begin();
            std::thread::park_timeout(shared.cfg.park_timeout);
            tracer.span_end(EventKind::Park, 0, park_start, 0);
            tracer.instant(EventKind::Unpark, 0, 0, 0);
            charge(ST_PARKED, &mut mark);
            for seated in slots.iter().flatten() {
                seated.wake.ready.store(true, Ordering::Release);
            }
        }
        charge(ST_READY, &mut mark);
    }
}

fn pop_global(injector: &Injector<Task>) -> Option<Task> {
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => return None,
            Steal::Retry => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yield_point::yield_now;
    use crate::Notify;

    #[test]
    fn runs_a_simple_task() {
        let rt = Runtime::with_shape(1, 2);
        let h = rt.spawn(async { 1 + 1 });
        assert_eq!(h.join(), 2);
        rt.shutdown();
    }

    #[test]
    fn runs_many_tasks_across_workers() {
        let rt = Runtime::with_shape(2, 4);
        let handles: Vec<_> = (0..200u64)
            .map(|i| {
                rt.spawn(async move {
                    yield_now(Urgency::Low).await;
                    i * 2
                })
            })
            .collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (0..200u64).map(|i| i * 2).sum());
        let stats = rt.stats();
        assert_eq!(stats.tasks_completed, 200);
        rt.shutdown();
    }

    #[test]
    fn concurrency_exceeds_slot_count_via_queueing() {
        // 1 worker × 2 slots but 50 tasks: the pull scheduler must drain all.
        let rt = Runtime::with_shape(1, 2);
        let n = Arc::new(Notify::new());
        let handles: Vec<_> = (0..50)
            .map(|_| {
                let n = n.clone();
                rt.spawn(async move {
                    // Mixed yields to exercise the scheduler paths.
                    yield_now(Urgency::High).await;
                    let _ = n.generation();
                    yield_now(Urgency::Low).await;
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        rt.shutdown();
    }

    #[test]
    fn affinity_tasks_run_on_their_worker() {
        let rt = Runtime::with_shape(3, 2);
        let mut handles = Vec::new();
        for w in 0..3usize {
            for _ in 0..10 {
                handles.push((
                    w,
                    rt.spawn_on(w, async move {
                        yield_now(Urgency::Low).await;
                        crate::current_slot().expect("has slot").worker.raw() as usize
                    }),
                ));
            }
        }
        for (expect, h) in handles {
            assert_eq!(h.join(), expect);
        }
        let stats = rt.stats();
        assert_eq!(stats.tasks_pulled_local, 30);
        assert_eq!(stats.tasks_pulled_global, 0);
        rt.shutdown();
    }

    #[test]
    fn current_slot_is_visible_inside_tasks_only() {
        let rt = Runtime::with_shape(1, 1);
        assert!(crate::current_slot().is_none());
        let h = rt.spawn(async { crate::current_slot().is_some() });
        assert!(h.join());
        rt.shutdown();
    }

    #[test]
    fn panicking_task_propagates_through_join() {
        let rt = Runtime::with_shape(1, 1);
        let h = rt.spawn(async { panic!("boom") });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| h.join()));
        assert!(err.is_err());
        // The worker must survive the panic and run further tasks.
        let h2 = rt.spawn(async { 5 });
        assert_eq!(h2.join(), 5);
        rt.shutdown();
    }

    #[test]
    fn tasks_blocked_on_notify_resume() {
        let rt = Runtime::with_shape(2, 2);
        let gate = Arc::new(Notify::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let gate = gate.clone();
                rt.spawn(async move {
                    gate.notified().await;
                    1u32
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        gate.notify_all();
        let total: u32 = waiters.into_iter().map(|h| h.join()).sum();
        assert_eq!(total, 4);
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let rt = Runtime::with_shape(1, 1);
        rt.spawn(async {}).join();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }

    #[test]
    fn worker_hook_ticks() {
        struct Hook(AtomicU64);
        impl WorkerHook for Hook {
            fn tick(&self, _worker: usize) {
                // ORDERING: test counter; the join below orders the read.
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = Runtime::with_shape(1, 1);
        let hook = Arc::new(Hook(AtomicU64::new(0)));
        rt.set_hook(hook.clone());
        rt.spawn(async {
            for _ in 0..5 {
                yield_now(Urgency::Low).await;
            }
        })
        .join();
        // ORDERING: test read, ordered by the task join above.
        assert!(hook.0.load(Ordering::Relaxed) > 0);
        rt.shutdown();
    }
}
