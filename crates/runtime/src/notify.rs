//! A wait/notify primitive for co-routines.
//!
//! Used wherever one transaction must sleep until another signals — most
//! importantly the transaction-ID lock (§7.2): waiters on a finishing
//! transaction "remain in a sleeping state until B completes and wakes
//! [them] up", and all shared waiters are released simultaneously.
//!
//! The implementation is generation-counted: `notified()` snapshots the
//! generation, and completes once the generation has advanced, so a
//! notification that races ahead of the waiter's first poll is never lost.

use phoebe_common::sync::{Rank, RankedMutex};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::task::{Context, Poll, Waker};

/// A multi-waiter notification cell.
pub struct Notify {
    generation: AtomicU64,
    waiters: RankedMutex<Vec<Waker>>,
}

impl Default for Notify {
    fn default() -> Self {
        Notify::new()
    }
}

impl Notify {
    pub fn new() -> Self {
        Notify {
            generation: AtomicU64::new(0),
            waiters: RankedMutex::new(Rank::Notify, "notify.waiters", Vec::new()),
        }
    }

    /// Wake every current waiter. Waiters that subscribe after this call
    /// wait for the *next* notification.
    pub fn notify_all(&self) {
        self.generation.fetch_add(1, Ordering::Release);
        let waiters = std::mem::take(&mut *self.waiters.lock());
        for w in waiters {
            w.wake();
        }
    }

    /// A future that completes at the next [`Notify::notify_all`] after its
    /// creation.
    pub fn notified(&self) -> Notified<'_> {
        Notified { notify: self, seen: self.generation.load(Ordering::Acquire) }
    }

    /// Number of notifications issued so far (diagnostics/tests).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified<'a> {
    notify: &'a Notify,
    seen: u64,
}

impl Future for Notified<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.notify.generation.load(Ordering::Acquire) != self.seen {
            return Poll::Ready(());
        }
        let mut waiters = self.notify.waiters.lock();
        // Re-check under the lock: notify_all may have fired in between.
        if self.notify.generation.load(Ordering::Acquire) != self.seen {
            return Poll::Ready(());
        }
        waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;
    use std::sync::Arc;

    #[test]
    fn notified_after_notify_completes_immediately_if_generation_moved() {
        let n = Notify::new();
        let fut = n.notified();
        n.notify_all();
        block_on(fut);
    }

    #[test]
    fn notified_created_after_notify_waits_for_next() {
        let n = Arc::new(Notify::new());
        n.notify_all();
        let n2 = n.clone();
        let waiter = std::thread::spawn(move || block_on(n2.notified()));
        // Give the waiter time to subscribe, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        n.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn notify_all_releases_every_waiter_simultaneously() {
        let n = Arc::new(Notify::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let n = n.clone();
                std::thread::spawn(move || block_on(n.notified()))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        n.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.generation(), 1);
    }
}
