//! Voluntary yield points with the paper's urgency classification (§7.1).
//!
//! Co-routines cannot be preempted, so PhoebeDB transactions yield
//! explicitly at wait points. The scheduler treats the classes
//! differently: a *high*-urgency yield (latch spin, async read in flight)
//! tells the worker to stop accepting new transactions and drive its current
//! tasks to resolution; a *low*-urgency yield (waiting on a tuple lock,
//! which can take arbitrarily long) leaves the pull loop open so the worker
//! keeps its slots utilized. The *prefetch* class sits below both: the
//! wait is a cache-line fill measured in nanoseconds, so it would be
//! wasteful to pause pulls for it — the yield exists only to give a
//! sibling interleaved descent the CPU while the line arrives.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Why a co-routine is yielding; drives the pull-based scheduler's decision
/// whether to keep accepting new tasks (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Urgency {
    /// Short wait expected: latch spin, asynchronous read. The worker pauses
    /// pulling new tasks until this task resolves.
    High,
    /// Potentially long wait: tuple/transaction-ID lock. Pulling continues.
    Low,
    /// Software prefetch in flight (interleaved batch descent): the wait
    /// is a cache-line fill, far cheaper than either class above. Pulling
    /// continues; the task is re-polled on the very next round.
    Prefetch,
}

impl Urgency {
    /// Stickiness rank: a poll may cross several yield points and the
    /// most urgent one must win when the worker reads the thread-local.
    fn rank(self) -> u8 {
        match self {
            Urgency::High => 2,
            Urgency::Low => 1,
            Urgency::Prefetch => 0,
        }
    }
}

thread_local! {
    static LAST_YIELD_URGENCY: std::cell::Cell<Urgency> =
        const { std::cell::Cell::new(Urgency::Prefetch) };
}

/// The urgency the most recent yield on this thread declared. The worker
/// loop reads (and resets) this right after a poll returns `Pending` to
/// decide whether the slot blocks new-task pulls.
pub(crate) fn take_last_urgency() -> Urgency {
    LAST_YIELD_URGENCY.with(|c| c.replace(Urgency::Prefetch))
}

pub(crate) fn note_urgency(u: Urgency) {
    LAST_YIELD_URGENCY.with(|c| {
        // Sticky until the worker consumes it: a poll may pass several
        // yield points and the most urgent one wins.
        if u.rank() > c.get().rank() {
            c.set(u);
        }
    });
}

/// Yield once to the scheduler and resume on the next round.
pub fn yield_now(urgency: Urgency) -> YieldNow {
    YieldNow { yielded: false, urgency }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
    urgency: Urgency,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            note_urgency(self.urgency);
            // Level-triggered executor: wake immediately so the next round
            // re-polls us; the yield still gives other slots a turn.
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;

    #[test]
    fn yield_now_completes_after_one_pending() {
        block_on(async {
            yield_now(Urgency::Low).await;
            yield_now(Urgency::High).await;
        });
    }

    #[test]
    fn urgency_is_sticky_until_taken() {
        let _ = take_last_urgency();
        note_urgency(Urgency::High);
        note_urgency(Urgency::Low); // must not downgrade
        assert_eq!(take_last_urgency(), Urgency::High);
        assert_eq!(take_last_urgency(), Urgency::Prefetch); // reset after take
    }

    #[test]
    fn prefetch_is_the_cheapest_class() {
        let _ = take_last_urgency();
        note_urgency(Urgency::Prefetch);
        assert_eq!(take_last_urgency(), Urgency::Prefetch);
        note_urgency(Urgency::Prefetch);
        note_urgency(Urgency::Low); // Low outranks Prefetch
        note_urgency(Urgency::Prefetch); // must not downgrade back
        assert_eq!(take_last_urgency(), Urgency::Low);
    }

    #[test]
    fn many_sequential_yields_make_progress() {
        let n = block_on(async {
            let mut n = 0u32;
            for _ in 0..100 {
                yield_now(Urgency::Low).await;
                n += 1;
            }
            n
        });
        assert_eq!(n, 100);
    }
}
