//! Task plumbing: the spawned co-routine, its waker, its join handle, and
//! the thread-local slot identity that lets kernel code ask "which task
//! slot am I running on?" without threading a context parameter through
//! every call.

use phoebe_common::ids::{SlotId, WorkerId};
use phoebe_common::sync::{Condvar, Rank, RankedMutex};
use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{RawWaker, RawWakerVTable, Waker};
use std::thread::Thread;

/// A co-routine queued for execution.
pub(crate) struct Task {
    pub future: Pin<Box<dyn Future<Output = ()> + Send + 'static>>,
}

thread_local! {
    static CURRENT_SLOT: Cell<Option<SlotId>> = const { Cell::new(None) };
}

/// The task slot the calling code is executing on, if any.
///
/// Inside a transaction co-routine this is always `Some`: the worker sets it
/// before every poll. Kernel subsystems use it to pick the slot-local UNDO
/// arena, WAL writer and tuple-lock slot (§6.2, §7.2, §8).
pub fn current_slot() -> Option<SlotId> {
    CURRENT_SLOT.with(|c| c.get())
}

pub(crate) struct SlotGuard(Option<SlotId>);

/// Set the thread-local slot for the duration of one poll.
pub(crate) fn enter_slot(worker: usize, slot: usize) -> SlotGuard {
    let prev =
        CURRENT_SLOT.with(|c| c.replace(Some(SlotId::new(WorkerId(worker as u16), slot as u16))));
    SlotGuard(prev)
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        CURRENT_SLOT.with(|c| c.set(self.0));
    }
}

/// Shared waker state: waking a task marks its slot ready and unparks the
/// owning worker thread. Tasks never migrate, so the worker handle is fixed
/// once the task is seated in a slot.
pub(crate) struct WakeState {
    pub ready: AtomicBool,
    pub worker_thread: Thread,
}

impl WakeState {
    pub fn new(worker_thread: Thread) -> Arc<Self> {
        Arc::new(WakeState { ready: AtomicBool::new(true), worker_thread })
    }

    fn wake(self: &Arc<Self>) {
        self.ready.store(true, Ordering::Release);
        self.worker_thread.unpark();
    }
}

// A hand-rolled RawWaker around Arc<WakeState>: clone bumps the refcount,
// wake marks ready + unparks. (std's Wake trait would also work; the manual
// vtable avoids an extra Arc level.)
//
// Shared contract for all four vtable functions: `data` is the pointer a
// `Arc::into_raw(Arc<WakeState>)` produced (see `waker_for`), and the
// RawWaker protocol guarantees each is called with a live reference count.

// SAFETY: `data` came from `Arc::into_raw` and the count is live, so
// incrementing it mints an independent owned reference for the new waker.
unsafe fn ws_clone(data: *const ()) -> RawWaker {
    Arc::increment_strong_count(data as *const WakeState);
    RawWaker::new(data, &VTABLE)
}
// SAFETY: `wake` consumes the waker, so reconstituting the Arc (and
// dropping it at scope end) releases exactly the count this waker owned.
unsafe fn ws_wake(data: *const ()) {
    let arc = Arc::from_raw(data as *const WakeState);
    arc.wake();
}
// SAFETY: `wake_by_ref` must not consume the waker's count; ManuallyDrop
// borrows the Arc for the call without releasing it.
unsafe fn ws_wake_by_ref(data: *const ()) {
    let arc = std::mem::ManuallyDrop::new(Arc::from_raw(data as *const WakeState));
    arc.wake();
}
// SAFETY: drop releases the single count this waker owned.
unsafe fn ws_drop(data: *const ()) {
    drop(Arc::from_raw(data as *const WakeState));
}

static VTABLE: RawWakerVTable = RawWakerVTable::new(ws_clone, ws_wake, ws_wake_by_ref, ws_drop);

pub(crate) fn waker_for(state: &Arc<WakeState>) -> Waker {
    let data = Arc::into_raw(state.clone()) as *const ();
    // SAFETY: the vtable functions uphold RawWaker's contract over
    // Arc<WakeState>: clone increments, wake/drop consume exactly one count.
    unsafe { Waker::from_raw(RawWaker::new(data, &VTABLE)) }
}

struct JoinState<T> {
    result: RankedMutex<Option<std::thread::Result<T>>>,
    cv: Condvar,
    done: AtomicBool,
}

/// Handle returned by [`crate::Runtime::spawn`]; lets the submitting thread
/// wait for the transaction co-routine and collect its output.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn pair() -> (JoinHandle<T>, Completer<T>) {
        let state = Arc::new(JoinState {
            result: RankedMutex::new(Rank::JoinTask, "task.join_result", None),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
        });
        (JoinHandle { state: state.clone() }, Completer { state })
    }

    /// Block the calling (non-pool) thread until the task finishes.
    ///
    /// Panics inside the task are propagated, mirroring `std::thread::join`.
    pub fn join(self) -> T {
        let mut guard = self.state.result.lock();
        while guard.is_none() {
            guard.wait(&self.state.cv);
        }
        match guard.take().expect("join result present") {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// True once the task has completed (successfully or by panic).
    pub fn is_finished(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }
}

pub(crate) struct Completer<T> {
    state: Arc<JoinState<T>>,
}

impl<T> Completer<T> {
    pub fn complete(self, value: std::thread::Result<T>) {
        *self.state.result.lock() = Some(value);
        self.state.done.store(true, Ordering::Release);
        self.state.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_handle_transfers_value() {
        let (h, c) = JoinHandle::pair();
        std::thread::spawn(move || c.complete(Ok(42)));
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn join_handle_reports_finished() {
        let (h, c) = JoinHandle::<u32>::pair();
        assert!(!h.is_finished());
        c.complete(Ok(1));
        assert!(h.is_finished());
    }

    #[test]
    fn slot_guard_restores_previous_value() {
        assert_eq!(current_slot(), None);
        {
            let _g = enter_slot(1, 2);
            assert_eq!(current_slot(), Some(SlotId::new(WorkerId(1), 2)));
            {
                let _g2 = enter_slot(3, 4);
                assert_eq!(current_slot(), Some(SlotId::new(WorkerId(3), 4)));
            }
            assert_eq!(current_slot(), Some(SlotId::new(WorkerId(1), 2)));
        }
        assert_eq!(current_slot(), None);
    }

    #[test]
    fn waker_marks_ready_and_survives_clones() {
        let state = WakeState::new(std::thread::current());
        state.ready.store(false, Ordering::Release);
        let w = waker_for(&state);
        let w2 = w.clone();
        drop(w);
        w2.wake();
        assert!(state.ready.load(Ordering::Acquire));
    }
}
