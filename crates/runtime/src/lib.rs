//! Co-routine pool runtime (§7.1 of the PhoebeDB paper).
//!
//! PhoebeDB executes every transaction as a lightweight co-routine. A fixed
//! pool of worker threads each owns a fixed number of *task slots*; a slot
//! runs one co-routine at a time, to completion, without migrating. New
//! transactions are submitted to a global queue and *pulled* by workers when
//! a slot becomes vacant — the paper's pull-based scheduler. Yields carry an
//! urgency: a high-urgency yield (latch spin, async read) makes the worker
//! pause pulling new work until the current tasks resolve, while a
//! low-urgency yield (tuple lock wait) does not block the pull.
//!
//! In Rust, the natural co-routine is a [`std::future::Future`]; this crate
//! is a purpose-built executor for them — no tokio, no work stealing, no
//! dynamic task migration, because the paper's design deliberately avoids
//! all three. The executor is *level-triggered*: occupied slots are
//! re-polled on every scheduling round, and wakers merely unpark the worker
//! early. That makes wait primitives simple condition checks and rules out
//! lost-wakeup bugs at a small polling cost, which matches the paper's
//! "worker actively executes only one task at a time" model.
//!
//! The same executor reproduces the *thread model* of Exp 6: configure one
//! slot per worker and as many workers as desired, and each transaction gets
//! a dedicated OS thread, scheduler switches and all.

mod block_on;
mod notify;
mod runtime;
mod task;
mod timer;
mod yield_point;

pub use block_on::block_on;
pub use notify::Notify;
pub use runtime::{Runtime, RuntimeConfig, RuntimeStats, WorkerHook, WorkerTimeInState};
pub use task::{current_slot, JoinHandle};
pub use timer::{sleep, sleep_until, Sleep};
pub use yield_point::{yield_now, Urgency};
