//! The baseline's serialized WAL (§8's foil): one global buffer, one
//! flusher, one fsync stream. Every commit waits on the same durability
//! horizon, so commit latency couples unrelated transactions — exactly the
//! bottleneck Phoebe's per-slot writers with RFA remove.

use parking_lot::{Condvar, Mutex};
use phoebe_common::error::Result;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct WalInner {
    buf: Vec<u8>,
    appended: u64,
}

/// The single serialized log.
pub struct SerialWal {
    inner: Mutex<WalInner>,
    flushed: AtomicU64,
    flushed_cv: Condvar,
    flushed_mu: Mutex<()>,
    file: Mutex<File>,
    bytes_flushed: AtomicU64,
    /// Artificial device bandwidth cap in bytes/sec (0 = uncapped). Used
    /// by Exp 9 to reproduce O-DB's I/O-bound behaviour.
    pub bandwidth_cap: AtomicU64,
    shutdown: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SerialWal {
    pub fn create(path: &Path, group_commit_us: u64) -> Result<Arc<Self>> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        let wal = Arc::new(SerialWal {
            inner: Mutex::new(WalInner { buf: Vec::with_capacity(64 * 1024), appended: 0 }),
            flushed: AtomicU64::new(0),
            flushed_cv: Condvar::new(),
            flushed_mu: Mutex::new(()),
            file: Mutex::new(file),
            bytes_flushed: AtomicU64::new(0),
            bandwidth_cap: AtomicU64::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
        });
        let w = Arc::clone(&wal);
        *wal.flusher.lock() = Some(
            std::thread::Builder::new()
                .name("baseline-wal-flusher".into())
                .spawn(move || {
                    while !w.shutdown.load(Ordering::Acquire) {
                        let _ = w.flush_once();
                        std::thread::sleep(Duration::from_micros(group_commit_us));
                    }
                    let _ = w.flush_once();
                })
                .expect("spawn baseline flusher"),
        );
        Ok(wal)
    }

    /// Append a record; returns the log offset a commit must wait for.
    pub fn append(&self, record: &[u8]) -> u64 {
        let mut inner = self.inner.lock();
        inner.buf.extend_from_slice(&(record.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(record);
        inner.appended += 4 + record.len() as u64;
        inner.appended
    }

    /// One serialized flush round (write + fsync under the single stream).
    pub fn flush_once(&self) -> Result<u64> {
        let (data, upto) = {
            let mut inner = self.inner.lock();
            if inner.buf.is_empty() {
                return Ok(0);
            }
            (std::mem::take(&mut inner.buf), inner.appended)
        };
        {
            let mut f = self.file.lock();
            f.write_all(&data)?;
            f.sync_data()?;
        }
        // Exp 9's device-bandwidth throttle.
        let cap = self.bandwidth_cap.load(Ordering::Relaxed);
        if cap > 0 {
            let secs = data.len() as f64 / cap as f64;
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
        self.bytes_flushed.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.flushed.fetch_max(upto, Ordering::AcqRel);
        let _g = self.flushed_mu.lock();
        self.flushed_cv.notify_all();
        Ok(data.len() as u64)
    }

    /// Commit wait: block until the log is durable up to `offset`.
    pub fn wait_durable(&self, offset: u64) {
        let mut g = self.flushed_mu.lock();
        while self.flushed.load(Ordering::Acquire) < offset {
            self.flushed_cv.wait_for(&mut g, Duration::from_millis(1));
        }
    }

    pub fn bytes_flushed(&self) -> u64 {
        self.bytes_flushed.load(Ordering::Relaxed)
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.flusher.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for SerialWal {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal() -> Arc<SerialWal> {
        let dir = phoebe_common::KernelConfig::for_tests().data_dir;
        std::fs::create_dir_all(&dir).unwrap();
        SerialWal::create(&dir.join("w.log"), 50).unwrap()
    }

    #[test]
    fn commit_wait_returns_after_flush() {
        let w = wal();
        let off = w.append(b"commit record");
        w.wait_durable(off);
        assert!(w.bytes_flushed() >= off);
        w.shutdown();
    }

    #[test]
    fn many_appenders_serialize_through_one_stream() {
        let w = wal();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let off = w.append(b"rec");
                        w.wait_durable(off);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(w.bytes_flushed(), 8 * 50 * (4 + 3));
        w.shutdown();
    }

    #[test]
    fn bandwidth_cap_slows_flushing() {
        let w = wal();
        w.bandwidth_cap.store(10_000, Ordering::Relaxed); // 10 KB/s
        let start = std::time::Instant::now();
        let off = w.append(&vec![0u8; 1000]);
        w.wait_durable(off);
        assert!(start.elapsed() >= Duration::from_millis(80), "throttle must bite");
        w.shutdown();
    }
}
