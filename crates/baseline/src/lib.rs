//! A faithful miniature of the *traditional* RDBMS architecture PhoebeDB
//! is compared against (Exp 6, 8, 9 in §9) — PostgreSQL's design points,
//! deliberately including its scalability bottlenecks:
//!
//! * **O(n) snapshots**: every snapshot scans a mutex-protected proc array
//!   of active transactions (vs. Phoebe's single-timestamp snapshot).
//! * **Global buffer mapping table**: every page access goes through one
//!   mutex-protected hash map (vs. pointer swizzling).
//! * **Global lock table**: transaction waits rendezvous in a single
//!   mutex-protected hash map (vs. decentralized ID locks).
//! * **Out-of-place MVCC**: updates append a new tuple version with
//!   xmin/xmax stamps and leave the old one for VACUUM-style cleanup (vs.
//!   in-place updates + in-memory UNDO).
//! * **Serialized WAL flushing**: one log, one flusher, commits queue on a
//!   single durability horizon (vs. per-slot writers with RFA).
//! * **Thread-per-transaction** execution (vs. the co-routine pool).
//!
//! The point is architectural parity of *work per transaction* with the
//! bottlenecks the paper attributes to conventional engines, so the
//! Phoebe-vs-baseline ratio measures design, not implementation polish.

pub mod engine;
pub mod txn;
pub mod wal;

pub use engine::{BaselineDb, BaselineIndex, BaselineTable};
pub use txn::{BaselineTxn, Isolation};
