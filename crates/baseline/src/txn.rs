//! Baseline transactions: PostgreSQL-style MVCC over out-of-place tuple
//! versions, with O(n) snapshots, global lock-table waits and serialized
//! commit flushing. Thread-per-transaction: every wait blocks the OS
//! thread, as in the paper's thread-model comparison (Exp 6).

use crate::engine::{
    ctid_parts, BaselineDb, BaselineIndex, BaselineTable, HeapTuple, PgSnapshot, XactLock,
    XactState,
};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::RowId;
use phoebe_storage::schema::Value;
use std::sync::Arc;
use std::time::Duration;

/// Isolation levels (mirror of the kernel's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    ReadCommitted,
    RepeatableRead,
}

/// An open baseline transaction.
pub struct BaselineTxn {
    db: Arc<BaselineDb>,
    pub xid: u64,
    lock: Arc<XactLock>,
    iso: Isolation,
    snapshot: PgSnapshot,
    max_wal_off: u64,
    finished: bool,
}

const LOCK_TIMEOUT: Duration = Duration::from_secs(2);

impl BaselineTxn {
    pub fn begin(db: &Arc<BaselineDb>, iso: Isolation) -> BaselineTxn {
        let (xid, lock) = db.begin_xact();
        let snapshot = db.snapshot(); // the O(n) proc-array scan
        BaselineTxn {
            db: Arc::clone(db),
            xid,
            lock,
            iso,
            snapshot,
            max_wal_off: 0,
            finished: false,
        }
    }

    fn stmt_snapshot(&mut self) -> PgSnapshot {
        if self.iso == Isolation::ReadCommitted {
            self.snapshot = self.db.snapshot();
        }
        self.snapshot.clone()
    }

    fn tuple_visible(&self, t: &HeapTuple, snap: &PgSnapshot) -> bool {
        if t.data.is_empty() {
            return false; // vacuumed
        }
        let xmin_ok = t.xmin == self.xid || snap.sees(t.xmin, &self.db);
        if !xmin_ok {
            return false;
        }
        if t.xmax == 0 {
            return true;
        }
        if t.xmax == self.xid {
            return false; // deleted/updated by us
        }
        !snap.sees(t.xmax, &self.db)
    }

    fn fetch(&self, table: &BaselineTable, row: RowId) -> Option<HeapTuple> {
        let (p, s) = ctid_parts(row);
        let page = self.db.page(table, p);
        let guard = page.lock();
        guard.tuples.get(s as usize).cloned()
    }

    /// Read the version visible from `row`, following update chains.
    pub fn read(&mut self, table: &Arc<BaselineTable>, row: RowId) -> Result<Option<Vec<Value>>> {
        let snap = self.stmt_snapshot();
        let mut cur = row;
        for _ in 0..4096 {
            let Some(t) = self.fetch(table, cur) else {
                return Ok(None);
            };
            if self.tuple_visible(&t, &snap) {
                return Ok(Some(t.data));
            }
            // Superseded by a newer version? Follow the forward pointer.
            match t.next {
                0 => return Ok(None),
                n => cur = RowId(n),
            }
        }
        Err(PhoebeError::internal("update chain too long"))
    }

    pub fn insert(&mut self, table: &Arc<BaselineTable>, tuple: Vec<Value>) -> Result<RowId> {
        table.schema.check(phoebe_common::ids::TableId(table.id), &tuple)?;
        let rid = self.db.heap_insert(
            table,
            HeapTuple { xmin: self.xid, xmax: 0, next: 0, data: tuple.clone() },
        );
        let mut added: Vec<(Arc<BaselineIndex>, Vec<u8>)> = Vec::new();
        // Uniqueness consults the heap: entries whose creating transaction
        // aborted (or whose version was vacuumed away) don't conflict.
        let is_dead = |r: RowId| -> bool {
            match self.fetch(table, r) {
                None => true,
                Some(t) => t.data.is_empty() || self.db.xact_state(t.xmin) == XactState::Aborted,
            }
        };
        for index in self.db.indexes_of(table.id) {
            let key = index.key_for(&table.schema, &tuple);
            match index.insert_checked(key.clone(), rid, is_dead) {
                Ok(()) => added.push((index, key)),
                Err(e) => {
                    for (index, key) in added {
                        index.remove(&key, rid);
                    }
                    // Hide the heap tuple again.
                    let (p, s) = ctid_parts(rid);
                    self.db.page(table, p).lock().tuples[s as usize].data = Vec::new();
                    return Err(e);
                }
            }
        }
        self.log_op(table, rid, &tuple);
        Ok(rid)
    }

    /// Update with a precomputed delta.
    pub fn update(
        &mut self,
        table: &Arc<BaselineTable>,
        row: RowId,
        delta: &[(usize, Value)],
    ) -> Result<RowId> {
        self.update_rmw(table, row, &|_| delta.to_vec()).map(|(r, _)| r)
    }

    /// Update with the read-committed follow-the-chain protocol
    /// (EvalPlanQual-style) and first-updater-wins under repeatable read.
    /// `f` computes the delta from the version actually claimed, under the
    /// page lock — atomic read-modify-write, as a SELECT FOR UPDATE would
    /// provide.
    pub fn update_rmw(
        &mut self,
        table: &Arc<BaselineTable>,
        row: RowId,
        f: &phoebe_core::txn_api::DeltaFn<'_>,
    ) -> Result<(RowId, Vec<Value>)> {
        let mut cur = row;
        loop {
            let snap = self.stmt_snapshot();
            let (p, s) = ctid_parts(cur);
            let page = self.db.page(table, p);
            let mut guard = page.lock();
            let Some(t) = guard.tuples.get(s as usize) else {
                return Err(PhoebeError::RowNotFound {
                    table: phoebe_common::ids::TableId(table.id),
                    row: cur,
                });
            };
            let t = t.clone();
            if t.xmax != 0 && t.xmax != self.xid {
                match self.db.xact_state(t.xmax) {
                    XactState::InProgress => {
                        drop(guard);
                        self.db.wait_for_xact(t.xmax, LOCK_TIMEOUT)?;
                        continue;
                    }
                    XactState::Committed => {
                        if self.iso == Isolation::RepeatableRead {
                            return Err(PhoebeError::WriteConflict {
                                table: phoebe_common::ids::TableId(table.id),
                                row: cur,
                                holder: phoebe_common::ids::Xid::from_start_ts(t.xmax),
                            });
                        }
                        match t.next {
                            0 => {
                                // Version vanished under us (deleted or a
                                // chain race): serialization failure, retry.
                                return Err(PhoebeError::WriteConflict {
                                    table: phoebe_common::ids::TableId(table.id),
                                    row: cur,
                                    holder: phoebe_common::ids::Xid::from_start_ts(t.xmax),
                                });
                            }
                            n => {
                                cur = RowId(n);
                                continue;
                            }
                        }
                    }
                    XactState::Aborted => { /* stale xmax: overwrite below */ }
                }
            }
            if t.xmax == self.xid {
                // Our own previous update (or delete): work on the newest
                // version if there is one.
                match t.next {
                    0 => {
                        return Err(PhoebeError::RowNotFound {
                            table: phoebe_common::ids::TableId(table.id),
                            row: cur,
                        })
                    }
                    n => {
                        cur = RowId(n);
                        continue;
                    }
                }
            }
            let visible = self.tuple_visible(&t, &snap) || t.xmin == self.xid;
            if !visible {
                if std::env::var_os("TPCC_DEBUG").is_some() {
                    eprintln!(
                        "baseline invisible-claim: row={} xmin={}({:?}) xmax={}({:?}) next={} data_empty={} snap_active={} me={}",
                        cur, t.xmin, self.db.xact_state(t.xmin), t.xmax,
                        if t.xmax != 0 { Some(self.db.xact_state(t.xmax)) } else { None },
                        t.next, t.data.is_empty(), snap.active.len(), self.xid
                    );
                }
                // The version is mid-transition (e.g. its writer committed
                // between our snapshot and the page lock): retryable.
                return Err(PhoebeError::WriteConflict {
                    table: phoebe_common::ids::TableId(table.id),
                    row: cur,
                    holder: phoebe_common::ids::Xid::from_start_ts(t.xmin),
                });
            }
            // Claim: mark xmax while holding the page lock; the delta is
            // computed from the claimed version (atomic RMW).
            guard.tuples[s as usize].xmax = self.xid;
            let delta = f(&t.data);
            let mut new_data = t.data.clone();
            for (c, v) in &delta {
                new_data[*c] = v.clone();
            }
            drop(guard);
            // Out-of-place new version (the PostgreSQL write amplification).
            let new_rid = self.db.heap_insert(
                table,
                HeapTuple { xmin: self.xid, xmax: 0, next: 0, data: new_data.clone() },
            );
            self.db.page(table, p).lock().tuples[s as usize].next = new_rid.raw();
            // Index maintenance: new entries for keys that changed (others
            // are found via chain-following, HOT-style).
            for index in self.db.indexes_of(table.id) {
                let old_key = index.key_for(&table.schema, &t.data);
                let new_key = index.key_for(&table.schema, &new_data);
                if old_key != new_key {
                    let _ = index.insert(new_key, new_rid);
                }
            }
            self.log_op(table, new_rid, &new_data);
            return Ok((new_rid, t.data));
        }
    }

    pub fn delete(&mut self, table: &Arc<BaselineTable>, row: RowId) -> Result<()> {
        let mut cur = row;
        loop {
            let (p, s) = ctid_parts(cur);
            let page = self.db.page(table, p);
            let mut guard = page.lock();
            let Some(t) = guard.tuples.get(s as usize).cloned() else {
                return Err(PhoebeError::RowNotFound {
                    table: phoebe_common::ids::TableId(table.id),
                    row: cur,
                });
            };
            if t.xmax != 0 && t.xmax != self.xid {
                match self.db.xact_state(t.xmax) {
                    XactState::InProgress => {
                        drop(guard);
                        self.db.wait_for_xact(t.xmax, LOCK_TIMEOUT)?;
                        continue;
                    }
                    XactState::Committed => {
                        if self.iso == Isolation::RepeatableRead {
                            return Err(PhoebeError::WriteConflict {
                                table: phoebe_common::ids::TableId(table.id),
                                row: cur,
                                holder: phoebe_common::ids::Xid::from_start_ts(t.xmax),
                            });
                        }
                        match t.next {
                            0 => {
                                // Version vanished under us (deleted or a
                                // chain race): serialization failure, retry.
                                return Err(PhoebeError::WriteConflict {
                                    table: phoebe_common::ids::TableId(table.id),
                                    row: cur,
                                    holder: phoebe_common::ids::Xid::from_start_ts(t.xmax),
                                });
                            }
                            n => {
                                cur = RowId(n);
                                continue;
                            }
                        }
                    }
                    XactState::Aborted => {}
                }
            }
            guard.tuples[s as usize].xmax = self.xid;
            self.log_op(table, cur, &[]);
            return Ok(());
        }
    }

    /// Unique-index point lookup.
    pub fn lookup(
        &mut self,
        table: &Arc<BaselineTable>,
        index: &Arc<BaselineIndex>,
        key_vals: &[Value],
    ) -> Result<Option<(RowId, Vec<Value>)>> {
        let key = self.encode_prefix(table, index, key_vals);
        for rid in index.get(&key) {
            if let Some(data) = self.read(table, rid)? {
                return Ok(Some((rid, data)));
            }
        }
        Ok(None)
    }

    /// Prefix scan returning visible rows in key order.
    pub fn scan(
        &mut self,
        table: &Arc<BaselineTable>,
        index: &Arc<BaselineIndex>,
        prefix_vals: &[Value],
        limit: usize,
    ) -> Result<Vec<(RowId, Vec<Value>)>> {
        let prefix = self.encode_prefix(table, index, prefix_vals);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for rid in index.scan_prefix(&prefix) {
            if let Some(data) = self.read(table, rid)? {
                // Chain-following may surface the same logical row via old
                // and new index entries; dedupe on content identity, and
                // re-check the key actually matches (keys may have changed
                // across versions).
                let key_now = index.key_for(&table.schema, &data);
                if !key_now.starts_with(&prefix) {
                    continue;
                }
                if seen.insert(key_now) {
                    out.push((rid, data));
                    if out.len() >= limit {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    fn encode_prefix(
        &self,
        table: &Arc<BaselineTable>,
        index: &Arc<BaselineIndex>,
        vals: &[Value],
    ) -> Vec<u8> {
        let mut b = phoebe_core::KeyBuilder::new();
        for (&c, v) in index.key_cols.iter().zip(vals) {
            let width = match table.schema.col_type(c) {
                phoebe_storage::schema::ColType::Str(m) => m as usize,
                _ => 0,
            };
            b.push_value(v, width);
        }
        b.finish()
    }

    fn log_op(&mut self, table: &BaselineTable, row: RowId, data: &[Value]) {
        // Approximate record size parity with the kernel's logical records.
        let mut rec = Vec::with_capacity(32 + data.len() * 8);
        rec.extend_from_slice(&self.xid.to_le_bytes());
        rec.extend_from_slice(&(table.id).to_le_bytes());
        rec.extend_from_slice(&row.raw().to_le_bytes());
        for v in data {
            match v {
                Value::I64(x) => rec.extend_from_slice(&x.to_le_bytes()),
                Value::I32(x) => rec.extend_from_slice(&x.to_le_bytes()),
                Value::F64(x) => rec.extend_from_slice(&x.to_le_bytes()),
                Value::Str(s) => rec.extend_from_slice(s.as_bytes()),
            }
        }
        self.max_wal_off = self.max_wal_off.max(self.db.wal.append(&rec));
    }

    /// Commit: serialized WAL durability wait, then clog + proc array.
    pub fn commit(mut self) -> Result<()> {
        let off = self.db.wal.append(b"COMMIT");
        self.max_wal_off = self.max_wal_off.max(off);
        self.db.wal.wait_durable(self.max_wal_off);
        self.db.end_xact(self.xid, &self.lock, XactState::Committed);
        self.finished = true;
        Ok(())
    }

    /// Abort is cheap in this design: the clog flip hides everything.
    pub fn abort(mut self) {
        self.db.end_xact(self.xid, &self.lock, XactState::Aborted);
        self.finished = true;
    }
}

impl Drop for BaselineTxn {
    fn drop(&mut self) {
        if !self.finished {
            self.db.end_xact(self.xid, &self.lock, XactState::Aborted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoebe_storage::schema::{ColType, Schema};

    fn setup() -> (Arc<BaselineDb>, Arc<BaselineTable>, Arc<BaselineIndex>) {
        let db = BaselineDb::open(&phoebe_common::KernelConfig::for_tests().data_dir, 50).unwrap();
        let t =
            db.create_table("acct", Schema::new(vec![("id", ColType::I64), ("bal", ColType::I64)]));
        let pk = db.create_index(&t, "pk", vec![0], true);
        (db, t, pk)
    }

    #[test]
    fn insert_commit_read() {
        let (db, t, pk) = setup();
        let rid = {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            let rid = tx.insert(&t, vec![Value::I64(1), Value::I64(100)]).unwrap();
            tx.commit().unwrap();
            rid
        };
        let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
        assert_eq!(tx.read(&t, rid).unwrap().unwrap()[1], Value::I64(100));
        let hit = tx.lookup(&t, &pk, &[Value::I64(1)]).unwrap().unwrap();
        assert_eq!(hit.0, rid);
        tx.commit().unwrap();
    }

    #[test]
    fn uncommitted_invisible_aborted_forever_invisible() {
        let (db, t, _) = setup();
        let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
        let rid = tx.insert(&t, vec![Value::I64(1), Value::I64(1)]).unwrap();
        {
            let mut reader = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            assert!(reader.read(&t, rid).unwrap().is_none());
            reader.commit().unwrap();
        }
        tx.abort();
        let mut reader = BaselineTxn::begin(&db, Isolation::ReadCommitted);
        assert!(reader.read(&t, rid).unwrap().is_none());
        reader.commit().unwrap();
    }

    #[test]
    fn update_creates_new_version_and_read_follows_chain() {
        let (db, t, _) = setup();
        let rid = {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            let rid = tx.insert(&t, vec![Value::I64(1), Value::I64(100)]).unwrap();
            tx.commit().unwrap();
            rid
        };
        let new_rid = {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            let r = tx.update(&t, rid, &[(1, Value::I64(150))]).unwrap();
            tx.commit().unwrap();
            r
        };
        assert_ne!(rid, new_rid, "out-of-place update");
        let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
        // Reading through the OLD ctid follows the chain to the new one.
        assert_eq!(tx.read(&t, rid).unwrap().unwrap()[1], Value::I64(150));
        tx.commit().unwrap();
    }

    #[test]
    fn repeatable_read_sees_stable_snapshot_and_conflicts() {
        let (db, t, _) = setup();
        let rid = {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            let rid = tx.insert(&t, vec![Value::I64(1), Value::I64(100)]).unwrap();
            tx.commit().unwrap();
            rid
        };
        let mut rr = BaselineTxn::begin(&db, Isolation::RepeatableRead);
        assert_eq!(rr.read(&t, rid).unwrap().unwrap()[1], Value::I64(100));
        {
            let mut w = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            w.update(&t, rid, &[(1, Value::I64(1))]).unwrap();
            w.commit().unwrap();
        }
        assert_eq!(rr.read(&t, rid).unwrap().unwrap()[1], Value::I64(100), "stable snapshot");
        let err = rr.update(&t, rid, &[(1, Value::I64(2))]).unwrap_err();
        assert!(matches!(err, PhoebeError::WriteConflict { .. }));
        rr.abort();
    }

    #[test]
    fn read_committed_update_follows_committed_writer() {
        let (db, t, _) = setup();
        let rid = {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            let rid = tx.insert(&t, vec![Value::I64(1), Value::I64(0)]).unwrap();
            tx.commit().unwrap();
            rid
        };
        // Two threads increment concurrently; both must land.
        let mut handles = Vec::new();
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || loop {
                let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
                let cur = tx.read(&t, rid).unwrap().unwrap()[1].as_i64();
                match tx.update(&t, rid, &[(1, Value::I64(cur + 1))]) {
                    Ok(_) => {
                        tx.commit().unwrap();
                        return;
                    }
                    Err(_) => tx.abort(),
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
        let v = tx.read(&t, rid).unwrap().unwrap()[1].as_i64();
        // Chain-following RC semantics: both increments applied (or one
        // overwrote after seeing the other's value — both >= 1).
        assert!(v >= 1);
        tx.commit().unwrap();
    }

    #[test]
    fn scan_dedupes_versions() {
        let (db, t, _) = setup();
        let by_bal = db.create_index(&t, "by_id_nonuniq", vec![0], false);
        let rid = {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            let rid = tx.insert(&t, vec![Value::I64(5), Value::I64(10)]).unwrap();
            tx.commit().unwrap();
            rid
        };
        {
            let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
            tx.update(&t, rid, &[(1, Value::I64(20))]).unwrap();
            tx.commit().unwrap();
        }
        let mut tx = BaselineTxn::begin(&db, Isolation::ReadCommitted);
        let rows = tx.scan(&t, &by_bal, &[Value::I64(5)], 10).unwrap();
        assert_eq!(rows.len(), 1, "one logical row despite two versions");
        assert_eq!(rows[0].1[1], Value::I64(20));
        tx.commit().unwrap();
    }
}
