//! Baseline storage: heap pages behind a global buffer mapping table,
//! out-of-place tuple versions, globally locked indexes, a proc array and
//! a commit log — the conventional architecture of §2/§9.

use parking_lot::{Condvar, Mutex, RwLock};
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::RowId;
use phoebe_storage::schema::{Schema, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuples per heap page.
pub const HEAP_PAGE_CAP: usize = 64;

/// A heap tuple with PostgreSQL-style version stamps.
#[derive(Debug, Clone)]
pub struct HeapTuple {
    /// Creating transaction.
    pub xmin: u64,
    /// Deleting/locking transaction (0 = live).
    pub xmax: u64,
    /// Forward pointer to the superseding version's ctid (0 = newest) —
    /// PostgreSQL's t_ctid chain.
    pub next: u64,
    pub data: Vec<Value>,
}

/// One heap page.
#[derive(Default)]
pub struct HeapPage {
    pub tuples: Vec<HeapTuple>,
}

/// Tuple address: heap page number + slot ("ctid").
#[inline]
pub fn ctid(page: u64, slot: u64) -> RowId {
    RowId((page << 16) | slot)
}

#[inline]
pub fn ctid_parts(row: RowId) -> (u64, u64) {
    (row.raw() >> 16, row.raw() & 0xffff)
}

/// A baseline table: pages are *only* reachable through the database's
/// global buffer mapping table, reproducing the shared hash-map hot spot.
pub struct BaselineTable {
    pub id: u32,
    pub name: String,
    pub schema: Schema,
    pub page_count: AtomicU64,
    /// Insert target (rightmost page).
    insert_page: Mutex<u64>,
}

/// A baseline secondary index: one global lock around a `BTreeMap`, as in
/// engines that latch whole index levels coarsely.
pub struct BaselineIndex {
    pub name: String,
    pub table: u32,
    pub key_cols: Vec<usize>,
    pub unique: bool,
    entries: Mutex<BTreeMap<Vec<u8>, Vec<RowId>>>,
}

impl BaselineIndex {
    pub fn key_for(&self, schema: &Schema, tuple: &[Value]) -> Vec<u8> {
        let mut b = phoebe_core::KeyBuilder::new();
        for &c in &self.key_cols {
            let width = match schema.col_type(c) {
                phoebe_storage::schema::ColType::Str(m) => m as usize,
                _ => 0,
            };
            b.push_value(&tuple[c], width);
        }
        b.finish()
    }

    pub fn insert(&self, key: Vec<u8>, row: RowId) -> Result<()> {
        self.insert_checked(key, row, |_| false)
    }

    /// Insert with heap-visibility-aware uniqueness: entries for which
    /// `is_dead` returns true (aborted writer, vacuumed version) do not
    /// block the insert and are pruned — PostgreSQL's index uniqueness
    /// check consults the heap the same way.
    pub fn insert_checked(
        &self,
        key: Vec<u8>,
        row: RowId,
        is_dead: impl Fn(RowId) -> bool,
    ) -> Result<()> {
        let mut e = self.entries.lock();
        let bucket = e.entry(key).or_default();
        if self.unique {
            bucket.retain(|r| !is_dead(*r));
            if !bucket.is_empty() {
                return Err(PhoebeError::DuplicateKey {
                    index: phoebe_common::ids::TableId(self.table),
                });
            }
        }
        bucket.push(row);
        Ok(())
    }

    pub fn remove(&self, key: &[u8], row: RowId) {
        let mut e = self.entries.lock();
        if let Some(bucket) = e.get_mut(key) {
            bucket.retain(|r| *r != row);
            if bucket.is_empty() {
                e.remove(key);
            }
        }
    }

    /// All ctids whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<RowId> {
        let e = self.entries.lock();
        e.range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    pub fn get(&self, key: &[u8]) -> Vec<RowId> {
        self.entries.lock().get(key).cloned().unwrap_or_default()
    }
}

/// State of a transaction in the commit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XactState {
    InProgress,
    Committed,
    Aborted,
}

/// Per-transaction wait entry in the global lock table.
pub struct XactLock {
    pub done: Mutex<bool>,
    pub cv: Condvar,
}

/// A PostgreSQL-style snapshot: the result of scanning the proc array.
#[derive(Debug, Clone)]
pub struct PgSnapshot {
    /// Everything below this committed or aborted.
    pub xmin: u64,
    /// First unassigned xid at snapshot time.
    pub xmax: u64,
    /// Transactions in progress at snapshot time.
    pub active: HashSet<u64>,
}

impl PgSnapshot {
    /// Was `xid` committed *and* visible in this snapshot?
    pub fn sees(&self, xid: u64, db: &BaselineDb) -> bool {
        if xid == 0 || xid >= self.xmax || self.active.contains(&xid) {
            return false;
        }
        db.xact_state(xid) == XactState::Committed
    }
}

/// The baseline database.
pub struct BaselineDb {
    tables: RwLock<Vec<Arc<BaselineTable>>>,
    indexes: RwLock<Vec<Arc<BaselineIndex>>>,
    /// The global buffer mapping table: (table, page) → heap page. Every
    /// tuple access takes this mutex — the paper's shared-hash-map hot
    /// spot (§5.3).
    #[allow(clippy::type_complexity)]
    buffer_map: Mutex<HashMap<(u32, u64), Arc<Mutex<HeapPage>>>>,
    /// The proc array: active xids, scanned under a mutex per snapshot.
    proc_array: Mutex<HashSet<u64>>,
    /// Commit log (pg_xact).
    clog: Mutex<HashMap<u64, XactState>>,
    /// Global lock table for transaction waits.
    lock_table: Mutex<HashMap<u64, Arc<XactLock>>>,
    next_xid: AtomicU64,
    pub wal: Arc<crate::wal::SerialWal>,
    pub metrics: Arc<phoebe_common::metrics::Metrics>,
}

impl BaselineDb {
    pub fn open(dir: &std::path::Path, group_commit_us: u64) -> Result<Arc<Self>> {
        std::fs::create_dir_all(dir)?;
        Ok(Arc::new(BaselineDb {
            tables: RwLock::new(Vec::new()),
            indexes: RwLock::new(Vec::new()),
            buffer_map: Mutex::new(HashMap::new()),
            proc_array: Mutex::new(HashSet::new()),
            clog: Mutex::new(HashMap::new()),
            lock_table: Mutex::new(HashMap::new()),
            next_xid: AtomicU64::new(1),
            wal: crate::wal::SerialWal::create(&dir.join("baseline_wal.log"), group_commit_us)?,
            metrics: Arc::new(phoebe_common::metrics::Metrics::new(1)),
        }))
    }

    pub fn create_table(&self, name: &str, schema: Schema) -> Arc<BaselineTable> {
        let mut tables = self.tables.write();
        let t = Arc::new(BaselineTable {
            id: tables.len() as u32,
            name: name.to_owned(),
            schema,
            page_count: AtomicU64::new(0),
            insert_page: Mutex::new(0),
        });
        tables.push(Arc::clone(&t));
        t
    }

    pub fn create_index(
        &self,
        table: &Arc<BaselineTable>,
        name: &str,
        key_cols: Vec<usize>,
        unique: bool,
    ) -> Arc<BaselineIndex> {
        let idx = Arc::new(BaselineIndex {
            name: name.to_owned(),
            table: table.id,
            key_cols,
            unique,
            entries: Mutex::new(BTreeMap::new()),
        });
        self.indexes.write().push(Arc::clone(&idx));
        idx
    }

    pub fn table(&self, name: &str) -> Option<Arc<BaselineTable>> {
        self.tables.read().iter().find(|t| t.name == name).cloned()
    }

    pub fn index(&self, name: &str) -> Option<Arc<BaselineIndex>> {
        self.indexes.read().iter().find(|i| i.name == name).cloned()
    }

    pub fn indexes_of(&self, table: u32) -> Vec<Arc<BaselineIndex>> {
        self.indexes.read().iter().filter(|i| i.table == table).cloned().collect()
    }

    /// Fetch a heap page through the global buffer mapping table.
    pub fn page(&self, table: &BaselineTable, page_no: u64) -> Arc<Mutex<HeapPage>> {
        let mut map = self.buffer_map.lock();
        Arc::clone(
            map.entry((table.id, page_no))
                .or_insert_with(|| Arc::new(Mutex::new(HeapPage::default()))),
        )
    }

    /// Heap-insert a tuple version; returns its ctid.
    pub fn heap_insert(&self, table: &BaselineTable, tuple: HeapTuple) -> RowId {
        loop {
            let page_no = *table.insert_page.lock();
            let page = self.page(table, page_no);
            let mut guard = page.lock();
            if guard.tuples.len() < HEAP_PAGE_CAP {
                let slot = guard.tuples.len() as u64;
                guard.tuples.push(tuple);
                table.page_count.fetch_max(page_no + 1, Ordering::Relaxed);
                return ctid(page_no, slot);
            }
            drop(guard);
            let mut ip = table.insert_page.lock();
            if *ip == page_no {
                *ip += 1;
            }
        }
    }

    // --- transaction bookkeeping -------------------------------------

    /// Assign an xid, register it in the proc array and the lock table.
    pub fn begin_xact(&self) -> (u64, Arc<XactLock>) {
        let xid = self.next_xid.fetch_add(1, Ordering::SeqCst);
        self.proc_array.lock().insert(xid);
        self.clog.lock().insert(xid, XactState::InProgress);
        let lock = Arc::new(XactLock { done: Mutex::new(false), cv: Condvar::new() });
        self.lock_table.lock().insert(xid, Arc::clone(&lock));
        (xid, lock)
    }

    /// Resolve a transaction and wake its waiters.
    pub fn end_xact(&self, xid: u64, lock: &Arc<XactLock>, state: XactState) {
        self.clog.lock().insert(xid, state);
        self.proc_array.lock().remove(&xid);
        {
            let mut done = lock.done.lock();
            *done = true;
            lock.cv.notify_all();
        }
        self.lock_table.lock().remove(&xid);
    }

    pub fn xact_state(&self, xid: u64) -> XactState {
        self.clog.lock().get(&xid).copied().unwrap_or(XactState::Aborted)
    }

    /// Block until `xid` finishes (the global-lock-table wait).
    pub fn wait_for_xact(&self, xid: u64, timeout: std::time::Duration) -> Result<XactState> {
        let entry = self.lock_table.lock().get(&xid).cloned();
        if let Some(entry) = entry {
            let mut done = entry.done.lock();
            while !*done {
                if entry.cv.wait_for(&mut done, timeout).timed_out() {
                    return Err(PhoebeError::LockTimeout {
                        waiting_for: phoebe_common::ids::Xid::from_start_ts(xid),
                    });
                }
            }
        }
        Ok(self.xact_state(xid))
    }

    /// The O(n) snapshot: lock and scan the proc array (§6.1's foil).
    pub fn snapshot(&self) -> PgSnapshot {
        let active = self.proc_array.lock().clone();
        let xmax = self.next_xid.load(Ordering::SeqCst);
        let xmin = active.iter().min().copied().unwrap_or(xmax);
        PgSnapshot { xmin, xmax, active }
    }

    /// VACUUM-lite: drop dead tuple versions no live snapshot can see and
    /// path-compress update chains (HOT-pruning stand-in) so reads do not
    /// walk arbitrarily long version chains.
    pub fn vacuum(&self) -> usize {
        let oldest = {
            let active = self.proc_array.lock();
            active.iter().min().copied().unwrap_or(self.next_xid.load(Ordering::SeqCst))
        };
        let mut removed = 0;
        let pages: Vec<(u32, u64, Arc<Mutex<HeapPage>>)> = {
            let map = self.buffer_map.lock();
            map.iter().map(|((t, p), page)| (*t, *p, Arc::clone(page))).collect()
        };
        let table_of = |id: u32| self.tables.read().get(id as usize).cloned();
        for (tid, _pno, page) in &pages {
            let n = page.lock().tuples.len();
            for slot in 0..n {
                let (dead, next) = {
                    let p = page.lock();
                    let t = &p.tuples[slot];
                    let dead = t.xmax != 0
                        && t.xmax < oldest
                        && self.xact_state(t.xmax) == XactState::Committed;
                    (dead && !t.data.is_empty(), t.next)
                };
                if !dead {
                    continue;
                }
                // Path compression: follow the chain past versions that are
                // themselves dead-below-horizon, then short-circuit.
                let mut hop = next;
                let table = table_of(*tid);
                while hop != 0 {
                    let Some(table) = table.as_ref() else { break };
                    let (hp, hs) = ctid_parts(RowId(hop));
                    let hop_page = self.page(table, hp);
                    let hg = hop_page.lock();
                    let Some(ht) = hg.tuples.get(hs as usize) else { break };
                    let hop_dead = ht.xmax != 0
                        && ht.xmax < oldest
                        && self.xact_state(ht.xmax) == XactState::Committed;
                    if hop_dead && ht.next != 0 {
                        hop = ht.next;
                    } else {
                        break;
                    }
                }
                let mut p = page.lock();
                let t = &mut p.tuples[slot];
                if hop != t.next {
                    t.next = hop;
                }
                t.data = Vec::new(); // tombstone the dead version's payload
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoebe_storage::schema::ColType;

    fn db() -> Arc<BaselineDb> {
        BaselineDb::open(&phoebe_common::KernelConfig::for_tests().data_dir, 50).unwrap()
    }

    #[test]
    fn heap_insert_spills_to_new_pages() {
        let db = db();
        let t = db.create_table("t", Schema::new(vec![("v", ColType::I64)]));
        let mut rids = Vec::new();
        for i in 0..(HEAP_PAGE_CAP * 3) {
            rids.push(db.heap_insert(
                &t,
                HeapTuple { xmin: 1, xmax: 0, next: 0, data: vec![Value::I64(i as i64)] },
            ));
        }
        assert!(t.page_count.load(Ordering::Relaxed) >= 2);
        let (p, s) = ctid_parts(rids[HEAP_PAGE_CAP]);
        assert_eq!((p, s), (1, 0), "second page starts fresh");
    }

    #[test]
    fn snapshot_scans_proc_array() {
        let db = db();
        let (x1, l1) = db.begin_xact();
        let (x2, l2) = db.begin_xact();
        let snap = db.snapshot();
        assert!(snap.active.contains(&x1) && snap.active.contains(&x2));
        assert_eq!(snap.xmin, x1);
        db.end_xact(x1, &l1, XactState::Committed);
        db.end_xact(x2, &l2, XactState::Aborted);
        let snap2 = db.snapshot();
        assert!(snap2.active.is_empty());
        assert!(snap2.sees(x1, &db));
        assert!(!snap2.sees(x2, &db), "aborted xid never visible");
    }

    #[test]
    fn inflight_xids_are_invisible_even_after_commit_mid_snapshot() {
        let db = db();
        let (x1, l1) = db.begin_xact();
        let snap = db.snapshot(); // x1 active here
        db.end_xact(x1, &l1, XactState::Committed);
        assert!(!snap.sees(x1, &db), "snapshot pins the active set");
        assert!(db.snapshot().sees(x1, &db));
    }

    #[test]
    fn wait_for_xact_blocks_until_resolution() {
        let db = db();
        let (xid, lock) = db.begin_xact();
        let db2 = Arc::clone(&db);
        let waiter = std::thread::spawn(move || {
            db2.wait_for_xact(xid, std::time::Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        db.end_xact(xid, &lock, XactState::Committed);
        assert_eq!(waiter.join().unwrap(), XactState::Committed);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let db = db();
        let t = db.create_table("t", Schema::new(vec![("v", ColType::I64)]));
        let idx = db.create_index(&t, "pk", vec![0], true);
        idx.insert(vec![1], ctid(0, 0)).unwrap();
        assert!(idx.insert(vec![1], ctid(0, 1)).is_err());
        idx.remove(&[1], ctid(0, 0));
        assert!(idx.insert(vec![1], ctid(0, 1)).is_ok());
    }

    #[test]
    fn index_prefix_scan_returns_key_order() {
        let db = db();
        let t = db.create_table("t", Schema::new(vec![("v", ColType::I64)]));
        let idx = db.create_index(&t, "i", vec![0], false);
        for i in [3u8, 1, 2] {
            idx.insert(vec![7, i], ctid(0, i as u64)).unwrap();
        }
        idx.insert(vec![8, 0], ctid(0, 9)).unwrap();
        let hits = idx.scan_prefix(&[7]);
        assert_eq!(hits, vec![ctid(0, 1), ctid(0, 2), ctid(0, 3)]);
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let db = db();
        let t = db.create_table("t", Schema::new(vec![("v", ColType::I64)]));
        let (x1, l1) = db.begin_xact();
        let rid =
            db.heap_insert(&t, HeapTuple { xmin: x1, xmax: 0, next: 0, data: vec![Value::I64(1)] });
        db.end_xact(x1, &l1, XactState::Committed);
        // Delete by a later committed xact.
        let (x2, l2) = db.begin_xact();
        let (p, s) = ctid_parts(rid);
        db.page(&t, p).lock().tuples[s as usize].xmax = x2;
        db.end_xact(x2, &l2, XactState::Committed);
        // Another begin pushes the oldest-active horizon past x2.
        let (x3, l3) = db.begin_xact();
        assert_eq!(db.vacuum(), 1);
        db.end_xact(x3, &l3, XactState::Aborted);
    }
}
