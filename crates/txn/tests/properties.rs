//! Property-based tests of the MVCC invariants: Algorithm 1 must agree
//! with a straightforward "apply history by timestamps" oracle for any
//! committed version chain, and the clock/snapshot algebra must hold.

use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_storage::schema::Value;
use phoebe_txn::locks::{TxnHandle, TxnOutcome};
use phoebe_txn::visibility::{check_visibility, VisibleVersion};
use phoebe_txn::{Snapshot, UndoLog, UndoOp};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a committed version history: write k (at cts ctss[k]) changes the
/// value from k to k+1, so each UNDO log's before image is k. Returns the
/// chain head, the commit timestamps, and the final (current) value.
fn build_chain(gaps: &[u64]) -> (Arc<UndoLog>, Vec<u64>, i64) {
    let mut prev: Option<Arc<UndoLog>> = None;
    let mut ctss = Vec::new();
    let mut ts = 0u64;
    for (k, gap) in gaps.iter().enumerate() {
        ts += gap + 1;
        let h = TxnHandle::new(Xid::from_start_ts(ts));
        let log = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(k as i64))] },
            Arc::clone(&h),
            prev.clone(),
        );
        ts += 1;
        log.stamp_commit(ts);
        h.finish(TxnOutcome::Committed(ts));
        ctss.push(ts);
        prev = Some(log);
    }
    (prev.unwrap(), ctss, gaps.len() as i64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn algorithm1_matches_timestamp_oracle(
        gaps in proptest::collection::vec(0u64..3, 1..12),
        probe in 0u64..60,
    ) {
        let (head, ctss, final_val) = build_chain(&gaps);
        let current = vec![Value::I64(final_val)];
        let reader = Xid::from_start_ts(1_000_000);
        let snap = Snapshot(probe);
        // Oracle: the visible value is the number of commits <= snapshot.
        let expected = ctss.iter().filter(|&&c| c <= probe).count() as i64;
        let got = match check_visibility(&current, Some(&head), reader, snap) {
            VisibleVersion::Current => final_val,
            VisibleVersion::Rebuilt(v) => v[0].as_i64(),
            VisibleVersion::Invisible => -1,
        };
        prop_assert_eq!(got, expected, "ctss={:?} probe={}", ctss, probe);
    }

    #[test]
    fn own_writes_always_visible(gaps in proptest::collection::vec(0u64..3, 1..8)) {
        let (head, _, final_val) = build_chain(&gaps);
        let me = TxnHandle::new(Xid::from_start_ts(500_000));
        let my_log = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(final_val))] },
            Arc::clone(&me),
            Some(head),
        );
        let current = vec![Value::I64(999)]; // my in-place write
        let got = check_visibility(&current, Some(&my_log), me.xid, Snapshot(0));
        prop_assert_eq!(got, VisibleVersion::Current);
    }

    #[test]
    fn snapshots_never_see_later_commits(n in 1u64..200) {
        let clock = phoebe_txn::GlobalClock::new();
        for _ in 0..n {
            clock.tick();
        }
        let snap = clock.snapshot();
        let later = clock.commit_ts();
        prop_assert!(!snap.sees(later));
        prop_assert!(snap.sees(later.saturating_sub(2)));
    }

    #[test]
    fn reclaimed_twin_head_never_resurrected(
        rows in proptest::collection::btree_set(0u64..64, 1..8),
        watermark in 10u64..100,
    ) {
        use phoebe_txn::TwinRegistry;
        let reg = TwinRegistry::new();
        let key = (TableId(3), RowId(7));
        let tw = reg.get_or_create(key);
        let rows: Vec<u64> = rows.into_iter().collect();
        let mut logs = Vec::new();
        for &r in &rows {
            let h = TxnHandle::new(Xid::from_start_ts(5));
            let log = UndoLog::new(TableId(3), RowId(r), RowId(7), UndoOp::Insert, h, None);
            prop_assert!(tw.set_head(RowId(r), Arc::clone(&log), 5));
            logs.push((r, log));
        }
        // Not reclaimable while entries are live.
        prop_assert_eq!(reg.reclaim_stale(watermark), 0);
        for (r, log) in &logs {
            tw.clear_if_head(RowId(*r), log);
        }
        prop_assert_eq!(reg.reclaim_stale(watermark), 1);
        // The dead table refuses new heads forever...
        let h = TxnHandle::new(Xid::from_start_ts(watermark + 1));
        let log = UndoLog::new(TableId(3), RowId(1), RowId(7), UndoOp::Insert, h, None);
        prop_assert!(!tw.set_head(RowId(1), log, watermark + 1));
        // ...and the registry hands out a genuinely fresh table, never the
        // reclaimed Arc, with no leftover chain heads.
        let fresh = reg.get_or_create(key);
        prop_assert!(!Arc::ptr_eq(&tw, &fresh));
        for &r in &rows {
            prop_assert!(fresh.head(RowId(r)).is_none());
        }
    }

    #[test]
    fn arena_reclaim_respects_watermark(
        ctss in proptest::collection::btree_set(1u64..1000, 1..30),
        watermark in 1u64..1000,
    ) {
        let arena = phoebe_txn::UndoArena::new();
        let ctss: Vec<u64> = ctss.into_iter().collect();
        for &cts in &ctss {
            let h = TxnHandle::new(Xid::from_start_ts(cts.saturating_sub(1)));
            let log = UndoLog::new(
                TableId(1), RowId(1), RowId(0), UndoOp::Insert, Arc::clone(&h), None,
            );
            log.stamp_commit(cts);
            h.finish(TxnOutcome::Committed(cts));
            arena.push(log);
        }
        let reclaimed = arena.reclaim_until(watermark, |_| {});
        let expected = ctss.iter().take_while(|&&c| c < watermark).count();
        prop_assert_eq!(reclaimed, expected);
        prop_assert_eq!(arena.len(), ctss.len() - expected);
    }
}

proptest! {
    // Thread-spawning cases: keep the case count low, the schedules random.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Writers attach/verify/detach chain heads on disjoint rows while a
    /// GC thread aggressively reclaims the (periodically empty) table.
    /// Invariants: a successful `set_head` is immediately observable
    /// through the registry for as long as the entry lives, a `set_head`
    /// that lost to reclamation reports failure (never a silent drop), and
    /// no reclaimed table is ever handed out again.
    #[test]
    fn concurrent_twin_attach_lookup_reclaim_integrity(
        iters in 10usize..40,
        writer_threads in 2usize..4,
    ) {
        use phoebe_txn::TwinRegistry;
        use std::sync::atomic::{AtomicBool, Ordering};

        let reg = Arc::new(TwinRegistry::new());
        let key = (TableId(9), RowId(0));
        let stop = Arc::new(AtomicBool::new(false));

        let gc = {
            let (reg, stop) = (Arc::clone(&reg), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut dead = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let seen = reg.get(key);
                    if reg.reclaim_stale(u64::MAX) > 0 {
                        // The table we saw just before is the one retired.
                        if let Some(t) = seen {
                            dead.push(t);
                        }
                    }
                    std::thread::yield_now();
                }
                dead
            })
        };

        let writers: Vec<_> = (0..writer_threads)
            .map(|w| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..iters {
                        let row = RowId((w * 1000 + i) as u64);
                        let mut attempts = 0;
                        loop {
                            attempts += 1;
                            assert!(attempts < 100_000, "livelock attaching a chain head");
                            let tw = reg.get_or_create(key);
                            let h = TxnHandle::new(Xid::from_start_ts(1));
                            let log = UndoLog::new(
                                TableId(9), row, RowId(0), UndoOp::Insert, h, None,
                            );
                            if !tw.set_head(row, Arc::clone(&log), 1) {
                                continue; // lost to reclamation: retry, never drop
                            }
                            // While our entry lives the table cannot retire,
                            // so the registry must surface exactly our head.
                            let seen = reg
                                .get(key)
                                .expect("live entry pins the table in the registry")
                                .head(row)
                                .expect("attached head must be visible");
                            assert!(Arc::ptr_eq(&seen, &log), "chain head corrupted");
                            tw.clear_if_head(row, &log);
                            break;
                        }
                    }
                })
            })
            .collect();
        for wtr in writers {
            wtr.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let dead = gc.join().unwrap();

        // No resurrection: every retired table stays dead and unreachable.
        let current = reg.get_or_create(key);
        for d in &dead {
            prop_assert!(!Arc::ptr_eq(d, &current), "reclaimed table resurfaced");
            let h = TxnHandle::new(Xid::from_start_ts(2));
            let log = UndoLog::new(TableId(9), RowId(1), RowId(0), UndoOp::Insert, h, None);
            prop_assert!(!d.set_head(RowId(1), log, 2), "dead table accepted a head");
        }
    }
}
