//! Property-based tests of the MVCC invariants: Algorithm 1 must agree
//! with a straightforward "apply history by timestamps" oracle for any
//! committed version chain, and the clock/snapshot algebra must hold.

use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_storage::schema::Value;
use phoebe_txn::locks::{TxnHandle, TxnOutcome};
use phoebe_txn::visibility::{check_visibility, VisibleVersion};
use phoebe_txn::{Snapshot, UndoLog, UndoOp};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a committed version history: write k (at cts ctss[k]) changes the
/// value from k to k+1, so each UNDO log's before image is k. Returns the
/// chain head, the commit timestamps, and the final (current) value.
fn build_chain(gaps: &[u64]) -> (Arc<UndoLog>, Vec<u64>, i64) {
    let mut prev: Option<Arc<UndoLog>> = None;
    let mut ctss = Vec::new();
    let mut ts = 0u64;
    for (k, gap) in gaps.iter().enumerate() {
        ts += gap + 1;
        let h = TxnHandle::new(Xid::from_start_ts(ts));
        let log = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(k as i64))] },
            Arc::clone(&h),
            prev.clone(),
        );
        ts += 1;
        log.stamp_commit(ts);
        h.finish(TxnOutcome::Committed(ts));
        ctss.push(ts);
        prev = Some(log);
    }
    (prev.unwrap(), ctss, gaps.len() as i64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn algorithm1_matches_timestamp_oracle(
        gaps in proptest::collection::vec(0u64..3, 1..12),
        probe in 0u64..60,
    ) {
        let (head, ctss, final_val) = build_chain(&gaps);
        let current = vec![Value::I64(final_val)];
        let reader = Xid::from_start_ts(1_000_000);
        let snap = Snapshot(probe);
        // Oracle: the visible value is the number of commits <= snapshot.
        let expected = ctss.iter().filter(|&&c| c <= probe).count() as i64;
        let got = match check_visibility(&current, Some(&head), reader, snap) {
            VisibleVersion::Current => final_val,
            VisibleVersion::Rebuilt(v) => v[0].as_i64(),
            VisibleVersion::Invisible => -1,
        };
        prop_assert_eq!(got, expected, "ctss={:?} probe={}", ctss, probe);
    }

    #[test]
    fn own_writes_always_visible(gaps in proptest::collection::vec(0u64..3, 1..8)) {
        let (head, _, final_val) = build_chain(&gaps);
        let me = TxnHandle::new(Xid::from_start_ts(500_000));
        let my_log = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(final_val))] },
            Arc::clone(&me),
            Some(head),
        );
        let current = vec![Value::I64(999)]; // my in-place write
        let got = check_visibility(&current, Some(&my_log), me.xid, Snapshot(0));
        prop_assert_eq!(got, VisibleVersion::Current);
    }

    #[test]
    fn snapshots_never_see_later_commits(n in 1u64..200) {
        let clock = phoebe_txn::GlobalClock::new();
        for _ in 0..n {
            clock.tick();
        }
        let snap = clock.snapshot();
        let later = clock.commit_ts();
        prop_assert!(!snap.sees(later));
        prop_assert!(snap.sees(later.saturating_sub(2)));
    }

    #[test]
    fn arena_reclaim_respects_watermark(
        ctss in proptest::collection::btree_set(1u64..1000, 1..30),
        watermark in 1u64..1000,
    ) {
        let arena = phoebe_txn::UndoArena::new();
        let ctss: Vec<u64> = ctss.into_iter().collect();
        for &cts in &ctss {
            let h = TxnHandle::new(Xid::from_start_ts(cts.saturating_sub(1)));
            let log = UndoLog::new(
                TableId(1), RowId(1), RowId(0), UndoOp::Insert, Arc::clone(&h), None,
            );
            log.stamp_commit(cts);
            h.finish(TxnOutcome::Committed(cts));
            arena.push(log);
        }
        let reclaimed = arena.reclaim_until(watermark, |_| {});
        let expected = ctss.iter().take_while(|&&c| c < watermark).count();
        prop_assert_eq!(reclaimed, expected);
        prop_assert_eq!(arena.len(), ctss.len() - expected);
    }
}
