//! Loom models for the twin-table clean-read fast path and GC races
//! (`phoebe_txn::twin`).
//!
//! Run with `scripts/loom.sh` or
//! `RUSTFLAGS="--cfg loom" cargo test -p phoebe-txn --test loom_twin`.
//!
//! Under `cfg(loom)` the shard constants shrink (2 registry shards, 2
//! entry shards) so exhaustive schedule enumeration stays tractable; the
//! protocols under test are shard-count-independent.
#![cfg(loom)]

use loom::sync::Arc;
use phoebe_common::ids::{RowId, TableId, Xid};
use phoebe_txn::{TwinRegistry, TxnHandle, UndoLog, UndoOp};

fn mklog(row: u64, ts: u64) -> Arc<UndoLog> {
    UndoLog::new(
        TableId(1),
        RowId(row),
        RowId(0),
        UndoOp::Insert,
        TxnHandle::new(Xid::from_start_ts(ts)),
        None,
    )
}

/// The clean-read fast path (bloom summary, no lock) racing a first
/// attach: the reader sees either "definitely absent" or the fully
/// installed head — never a summary bit without a reachable entry.
#[test]
fn clean_read_vs_first_attach() {
    loom::model(|| {
        let reg = TwinRegistry::new();
        let table = reg.get_or_create((TableId(1), RowId(0)));
        let log = mklog(0, 5);
        let writer = {
            let table = Arc::clone(&table);
            let log = Arc::clone(&log);
            loom::thread::spawn(move || {
                assert!(table.set_head(RowId(0), log, 5), "live table must accept");
            })
        };
        match table.head(RowId(0)) {
            None => {} // raced ahead of the attach: a clean read, correct
            Some(h) => assert!(Arc::ptr_eq(&h, &log), "reader saw a foreign head"),
        }
        writer.join().unwrap();
        assert!(table.head(RowId(0)).is_some(), "attach must be visible after join");
    });
}

/// Twin-table GC racing a writer: either the write lands and the table
/// survives reclamation, or reclamation wins and the writer is told to
/// retry — never both (no write into a resurrected/dead table) and never
/// neither (no lost write).
#[test]
fn set_head_vs_reclaim_never_loses_a_write() {
    loom::model(|| {
        let reg = Arc::new(TwinRegistry::new());
        let key = (TableId(1), RowId(0));
        let table = reg.get_or_create(key);
        let log = mklog(0, 5);
        let writer = {
            let log = Arc::clone(&log);
            loom::thread::spawn(move || table.set_head(RowId(0), log, 5))
        };
        let reclaimed = reg.reclaim_stale(10);
        let installed = writer.join().unwrap();
        if installed {
            assert_eq!(reclaimed, 0, "a table with an installed head must not be reclaimed");
            let t = reg.get(key).expect("installed head must stay reachable");
            assert!(t.head(RowId(0)).is_some(), "installed head vanished");
        } else {
            assert_eq!(reclaimed, 1, "set_head may only fail on a reclaimed table");
            assert!(reg.get(key).is_none(), "dead table must be unregistered");
            // The prescribed retry path: a fresh table accepts the write.
            assert!(reg.get_or_create(key).set_head(RowId(0), log, 5));
        }
    });
}

/// The drain-time summary reset racing an attach of a *different* row in
/// the same entry shard: the reset may leave a spurious 1 for the removed
/// row but must never produce a spurious 0 for the surviving one.
#[test]
fn summary_reset_vs_attach_in_same_shard() {
    loom::model(|| {
        let reg = TwinRegistry::new();
        let table = reg.get_or_create((TableId(1), RowId(0)));
        let log0 = mklog(0, 1);
        assert!(table.set_head(RowId(0), Arc::clone(&log0), 1));
        // Rows 0 and 2 land in the same shard for any power-of-two shard
        // count >= 2.
        let log2 = mklog(2, 2);
        let writer = {
            let table = Arc::clone(&table);
            let log2 = Arc::clone(&log2);
            loom::thread::spawn(move || {
                assert!(table.set_head(RowId(2), log2, 2), "live table must accept");
            })
        };
        table.clear_if_head(RowId(0), &log0);
        writer.join().unwrap();
        assert!(table.head(RowId(0)).is_none(), "cleared head resurfaced");
        let h = table.head(RowId(2)).expect("surviving row lost to the summary reset");
        assert!(Arc::ptr_eq(&h, &log2));
    });
}
