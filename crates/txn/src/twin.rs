//! The twin table: page-level tuple → version-chain mapping (§6.2).
//!
//! Appending a chain pointer to every tuple would waste space and inflate
//! recovery cost, because most tuples never have UNDO logs. Instead each
//! *page* that gets modified lazily grows a twin table mapping row ids to
//! chain heads; pages never written under MVCC have no twin table and their
//! tuples are trivially visible (Algorithm 1 line 1–2).
//!
//! The twin key is `(table, first_row_id_of_leaf)` — stable because table
//! leaves are append-only and never redistribute rows. A sharded registry
//! resolves page identity to its twin table; sharding keeps this off the
//! global-contention path the paper avoids.
//!
//! Both layers are built for the *clean read*: a visibility check on a
//! tuple with no in-flight or recent writer. Each lock shard (registry and
//! per-table) carries an atomic bloom-style summary of the keys it holds;
//! a reader whose key hashes to a zero bit learns "definitely absent"
//! from one atomic load and never touches the mutex. Only writers, and
//! readers of genuinely versioned tuples, serialize on a shard lock — and
//! sharding by row-id bits keeps even those mostly un-contended.

use crate::undo::UndoLog;
use phoebe_common::ids::{RowId, TableId, Timestamp};
use phoebe_common::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use phoebe_common::sync::{Arc, Rank, RankedMutex};
use std::collections::HashMap;

/// Page identity: the relation and the leaf's first row id.
pub type TwinKey = (TableId, RowId);

/// Lock shards inside one twin table (power of two). Rows of a leaf are
/// consecutive, so the low row-id bits spread them perfectly. Shrunk
/// under the loom model checker so exhaustive schedule enumeration stays
/// tractable — the protocol is shard-count-independent.
#[cfg(not(loom))]
const ENTRY_SHARDS: usize = 8;
#[cfg(loom)]
const ENTRY_SHARDS: usize = 2;

/// Fibonacci-hash mix for bloom-bit selection.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// One lock shard: a guarded map plus an atomic bloom summary of the row
/// ids present. `summary == 0` means the shard is definitely empty; a set
/// bit means "possibly present — take the lock". Bits are set under the
/// shard lock and the whole word is reset to zero whenever the map drains,
/// so the summary never goes stale in the direction that matters (a clean
/// read can see a spurious 1, never a spurious 0 for a present key).
struct EntryShard {
    summary: AtomicU64,
    map: RankedMutex<HashMap<u64, Arc<UndoLog>>>,
}

impl EntryShard {
    fn new() -> Self {
        EntryShard {
            summary: AtomicU64::new(0),
            map: RankedMutex::new(Rank::TwinShard, "twin.entry_shard", HashMap::new()),
        }
    }
}

#[inline]
fn row_bloom_bit(row: u64) -> u64 {
    1u64 << (row.wrapping_mul(MIX) >> 58)
}

/// Per-page mapping from row id to version-chain head, plus the metadata
/// the paper hangs off it: the largest writer XID (twin GC watermark) and
/// tuple-lock grant accounting (§7.2 "tuple lock metadata ... stored in the
/// twin table").
pub struct TwinTable {
    shards: [EntryShard; ENTRY_SHARDS],
    /// Largest start-ts among writers that modified this page (§7.3).
    max_writer_start: AtomicU64,
    /// Tuple-lock grants recorded against tuples of this page.
    lock_grants: AtomicU64,
    /// Set by registry GC after removal; writers that raced fetch a fresh
    /// table from the registry.
    dead: AtomicBool,
}

impl TwinTable {
    fn new() -> Arc<Self> {
        Arc::new(TwinTable {
            shards: std::array::from_fn(|_| EntryShard::new()),
            max_writer_start: AtomicU64::new(0),
            lock_grants: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        })
    }

    #[inline]
    fn shard(&self, row: RowId) -> &EntryShard {
        &self.shards[row.raw() as usize & (ENTRY_SHARDS - 1)]
    }

    /// Version-chain head for `row`, if any. The common "clean tuple" case
    /// answers from the shard summary alone — no lock.
    pub fn head(&self, row: RowId) -> Option<Arc<UndoLog>> {
        let shard = self.shard(row);
        if shard.summary.load(Ordering::Acquire) & row_bloom_bit(row.raw()) == 0 {
            return None;
        }
        shard.map.lock().get(&row.raw()).cloned()
    }

    /// Install a new chain head. Returns false if this table was reclaimed
    /// concurrently (caller re-fetches from the registry and retries).
    #[must_use]
    pub fn set_head(&self, row: RowId, log: Arc<UndoLog>, writer_start: Timestamp) -> bool {
        let shard = self.shard(row);
        let mut map = shard.map.lock();
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        map.insert(row.raw(), log);
        shard.summary.fetch_or(row_bloom_bit(row.raw()), Ordering::Release);
        self.max_writer_start.fetch_max(writer_start, Ordering::AcqRel);
        true
    }

    /// Abort rollback: if `row`'s head is exactly `log`, replace it with
    /// the predecessor (or drop the entry).
    pub fn pop_head_if(&self, row: RowId, log: &Arc<UndoLog>) {
        let shard = self.shard(row);
        let mut map = shard.map.lock();
        if let Some(cur) = map.get(&row.raw()) {
            if Arc::ptr_eq(cur, log) {
                match log.next_version() {
                    Some(prev) if prev.is_valid() => {
                        map.insert(row.raw(), prev);
                    }
                    _ => {
                        map.remove(&row.raw());
                    }
                }
            }
        }
        if map.is_empty() {
            shard.summary.store(0, Ordering::Release);
        }
    }

    /// GC: drop the entry if its head is exactly `log` (the paper's
    /// pointer-validation-by-address, §7.3 remark). Once the head itself is
    /// globally visible, the base tuple alone serves every snapshot.
    pub fn clear_if_head(&self, row: RowId, log: &Arc<UndoLog>) {
        let shard = self.shard(row);
        let mut map = shard.map.lock();
        if let Some(cur) = map.get(&row.raw()) {
            if Arc::ptr_eq(cur, log) {
                map.remove(&row.raw());
            }
        }
        // Bloom bits can't be cleared individually (other rows may share
        // them); a drained shard resets the whole summary.
        if map.is_empty() {
            shard.summary.store(0, Ordering::Release);
        }
    }

    /// Record a tuple-lock grant against this page (§7.2).
    pub fn record_lock_grant(&self) {
        // ORDERING: pure statistic — nothing is published under this
        // counter, so relaxed increments suffice.
        self.lock_grants.fetch_add(1, Ordering::Relaxed);
    }

    pub fn lock_grants(&self) -> u64 {
        // ORDERING: diagnostic read of a monotonic counter; staleness is
        // acceptable and no other memory hangs off it.
        self.lock_grants.load(Ordering::Relaxed)
    }

    pub fn max_writer_start(&self) -> Timestamp {
        self.max_writer_start.load(Ordering::Acquire)
    }

    pub fn live_entries(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Registry GC helper: atomically verify the table is empty and below
    /// the watermark, and if so mark it dead. Holds every shard lock for
    /// the check+mark so a racing `set_head` either landed before (some
    /// shard non-empty ⇒ not stale) or observes `dead` and retries against
    /// a fresh table from the registry.
    fn try_retire(&self, max_frozen_start: Timestamp) -> bool {
        let guards: Vec<_> = self.shards.iter().map(|s| s.map.lock()).collect();
        let stale = guards.iter().all(|m| m.is_empty())
            && self.max_writer_start.load(Ordering::Acquire) <= max_frozen_start;
        if stale {
            self.dead.store(true, Ordering::Release);
        }
        stale
    }
}

// Registry shard count; shrunk under loom like `ENTRY_SHARDS`.
#[cfg(not(loom))]
const SHARDS: usize = 64;
#[cfg(loom)]
const SHARDS: usize = 2;

/// One registry shard: guarded key→table map plus an atomic bloom summary
/// of the page keys present, so "page never written" reads skip the lock.
struct RegistryShard {
    summary: AtomicU64,
    map: RankedMutex<HashMap<TwinKey, Arc<TwinTable>>>,
}

/// Sharded registry resolving page identities to twin tables.
pub struct TwinRegistry {
    shards: Box<[RegistryShard]>,
}

impl Default for TwinRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn key_hash(key: &TwinKey) -> u64 {
    (key.0.raw() as u64 ^ key.1.raw()).wrapping_mul(MIX)
}

#[inline]
fn key_bloom_bit(h: u64) -> u64 {
    1u64 << ((h >> 32) & 63)
}

impl TwinRegistry {
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || RegistryShard {
            summary: AtomicU64::new(0),
            map: RankedMutex::new(Rank::TwinRegistry, "twin.registry_shard", HashMap::new()),
        });
        TwinRegistry { shards: shards.into_boxed_slice() }
    }

    #[inline]
    fn shard(&self, h: u64) -> &RegistryShard {
        &self.shards[(h >> 58) as usize % SHARDS]
    }

    /// The page's twin table, if it has one (Algorithm 1 line 2). Pages
    /// never modified under MVCC — the overwhelming majority — answer from
    /// the shard summary with a single atomic load and no lock.
    pub fn get(&self, key: TwinKey) -> Option<Arc<TwinTable>> {
        let h = key_hash(&key);
        let shard = self.shard(h);
        if shard.summary.load(Ordering::Acquire) & key_bloom_bit(h) == 0 {
            return None;
        }
        shard.map.lock().get(&key).cloned()
    }

    /// The page's twin table, created lazily on first modification (§6.2
    /// "a twin table is created if it doesn't already exist").
    pub fn get_or_create(&self, key: TwinKey) -> Arc<TwinTable> {
        let h = key_hash(&key);
        let shard = self.shard(h);
        let mut map = shard.map.lock();
        let t = Arc::clone(map.entry(key).or_insert_with(TwinTable::new));
        shard.summary.fetch_or(key_bloom_bit(h), Ordering::Release);
        t
    }

    /// Twin-table GC (§7.3): reclaim tables with no live entries whose
    /// largest writer is at or below the max-frozen watermark. Returns the
    /// number reclaimed.
    pub fn reclaim_stale(&self, max_frozen_start: Timestamp) -> usize {
        let mut reclaimed = 0;
        for shard in self.shards.iter() {
            let mut map = shard.map.lock();
            let before = map.len();
            map.retain(|_, t| !t.try_retire(max_frozen_start));
            reclaimed += before - map.len();
            if before != map.len() {
                // Rebuild the summary from the survivors (still under the
                // shard lock, so no insert can race the recomputation).
                let mut summary = 0u64;
                for key in map.keys() {
                    summary |= key_bloom_bit(key_hash(key));
                }
                shard.summary.store(summary, Ordering::Release);
            }
        }
        reclaimed
    }

    /// Total registered twin tables (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::TxnHandle;
    use crate::undo::UndoOp;
    use phoebe_common::ids::Xid;

    fn mklog(row: u64, ts: u64) -> Arc<UndoLog> {
        UndoLog::new(
            TableId(1),
            RowId(row),
            RowId(0),
            UndoOp::Insert,
            TxnHandle::new(Xid::from_start_ts(ts)),
            None,
        )
    }

    #[test]
    fn lazily_created_and_found() {
        let reg = TwinRegistry::new();
        let key = (TableId(1), RowId(100));
        assert!(reg.get(key).is_none());
        let t = reg.get_or_create(key);
        assert!(Arc::ptr_eq(&reg.get(key).unwrap(), &t));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn head_roundtrip_and_writer_watermark() {
        let reg = TwinRegistry::new();
        let t = reg.get_or_create((TableId(1), RowId(0)));
        let l = mklog(5, 42);
        assert!(t.set_head(RowId(5), Arc::clone(&l), 42));
        assert!(Arc::ptr_eq(&t.head(RowId(5)).unwrap(), &l));
        assert_eq!(t.max_writer_start(), 42);
        assert!(t.head(RowId(6)).is_none());
    }

    #[test]
    fn pop_head_if_restores_predecessor() {
        let t = TwinTable::new();
        let old = mklog(5, 1);
        old.stamp_commit(2);
        let new = UndoLog::new(
            TableId(1),
            RowId(5),
            RowId(0),
            UndoOp::Insert,
            TxnHandle::new(Xid::from_start_ts(3)),
            Some(Arc::clone(&old)),
        );
        assert!(t.set_head(RowId(5), Arc::clone(&new), 3));
        t.pop_head_if(RowId(5), &new);
        assert!(Arc::ptr_eq(&t.head(RowId(5)).unwrap(), &old));
        t.pop_head_if(RowId(5), &old);
        assert!(t.head(RowId(5)).is_none());
    }

    #[test]
    fn pop_head_if_ignores_non_head() {
        let t = TwinTable::new();
        let a = mklog(5, 1);
        let b = mklog(5, 2);
        assert!(t.set_head(RowId(5), Arc::clone(&a), 1));
        t.pop_head_if(RowId(5), &b); // not the head: no-op
        assert!(Arc::ptr_eq(&t.head(RowId(5)).unwrap(), &a));
    }

    #[test]
    fn clear_if_head_validates_by_address() {
        let t = TwinTable::new();
        let a = mklog(5, 1);
        let b = mklog(5, 2);
        assert!(t.set_head(RowId(5), Arc::clone(&a), 1));
        t.clear_if_head(RowId(5), &b);
        assert!(t.head(RowId(5)).is_some(), "different address: keep");
        t.clear_if_head(RowId(5), &a);
        assert!(t.head(RowId(5)).is_none());
    }

    #[test]
    fn reclaim_stale_respects_watermark_and_liveness() {
        let reg = TwinRegistry::new();
        let empty_old = reg.get_or_create((TableId(1), RowId(0)));
        empty_old.max_writer_start.store(5, Ordering::Release);
        let empty_young = reg.get_or_create((TableId(1), RowId(1000)));
        empty_young.max_writer_start.store(50, Ordering::Release);
        let live = reg.get_or_create((TableId(1), RowId(2000)));
        assert!(live.set_head(RowId(2000), mklog(2000, 7), 7));

        let n = reg.reclaim_stale(10);
        assert_eq!(n, 1, "only the empty old table goes");
        assert!(reg.get((TableId(1), RowId(0))).is_none());
        assert!(reg.get((TableId(1), RowId(1000))).is_some());
        assert!(reg.get((TableId(1), RowId(2000))).is_some());
    }

    #[test]
    fn set_head_fails_on_dead_table_so_caller_retries() {
        let reg = TwinRegistry::new();
        let key = (TableId(1), RowId(0));
        let t = reg.get_or_create(key);
        assert_eq!(reg.reclaim_stale(u64::MAX >> 2), 1);
        assert!(!t.set_head(RowId(1), mklog(1, 1), 1), "dead table rejects");
        // A fresh table from the registry works.
        let t2 = reg.get_or_create(key);
        assert!(t2.set_head(RowId(1), mklog(1, 1), 1));
    }

    #[test]
    fn lock_grant_accounting() {
        let t = TwinTable::new();
        t.record_lock_grant();
        t.record_lock_grant();
        assert_eq!(t.lock_grants(), 2);
    }

    #[test]
    fn clean_read_fast_path_after_drain() {
        let t = TwinTable::new();
        // Many rows in one shard, then drain: the summary resets and the
        // lock-free miss path serves every row again.
        let logs: Vec<_> = (0..32u64).map(|i| mklog(i * 8, i + 1)).collect();
        for (i, l) in logs.iter().enumerate() {
            assert!(t.set_head(RowId(i as u64 * 8), Arc::clone(l), i as u64 + 1));
        }
        assert_eq!(t.live_entries(), 32);
        for (i, l) in logs.iter().enumerate() {
            t.clear_if_head(RowId(i as u64 * 8), l);
        }
        assert_eq!(t.live_entries(), 0);
        assert_eq!(t.shards[0].summary.load(Ordering::Acquire), 0);
        assert!(t.head(RowId(0)).is_none());
    }

    #[test]
    fn registry_summary_rebuilt_after_reclaim() {
        let reg = TwinRegistry::new();
        // Two keys, drive one stale and reclaim it; the other must still
        // be reachable through the (rebuilt) summary.
        let _stale = reg.get_or_create((TableId(1), RowId(0)));
        let live = reg.get_or_create((TableId(1), RowId(64)));
        assert!(live.set_head(RowId(64), mklog(64, 9), 9));
        assert_eq!(reg.reclaim_stale(u64::MAX >> 2), 1);
        assert!(reg.get((TableId(1), RowId(0))).is_none());
        assert!(reg.get((TableId(1), RowId(64))).is_some());
    }
}
