//! Garbage collection with watermarks (§7.3).
//!
//! Two watermarks drive reclamation:
//!
//! * **minimum active XID** — the smallest start timestamp among active
//!   transactions, found by scanning the per-slot active table (cheap:
//!   one atomic load per slot, no locks). UNDO logs committed before it
//!   can never be needed by any snapshot.
//! * **max frozen XID** — the highest timestamp such that everything at or
//!   below it is globally visible; computed as a by-product of UNDO GC
//!   (the minimum over slots of the last reclaimed cts). It gates twin-
//!   table reclamation.
//!
//! Deleted tuples are physically removed when the deleting UNDO log is
//! reclaimed (i.e. the deletion became globally visible): the engine calls
//! back into the kernel to drop the row from the table and its indexes.

use crate::twin::TwinRegistry;
use crate::undo::{UndoArena, UndoLog, UndoOp};
use phoebe_common::ids::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Idle marker in the active table.
const IDLE: u64 = u64::MAX;

/// Lock-free table of active transactions: slot *i* holds the start
/// timestamp of the transaction currently running on task slot *i*, or
/// `IDLE`. "The minimum active XID is determined by scanning active
/// transactions" (§7.3) — a scan of plain atomics, not a locked list.
pub struct ActiveTxnTable {
    slots: Box<[AtomicU64]>,
}

impl ActiveTxnTable {
    pub fn new(total_slots: usize) -> Self {
        let mut v = Vec::with_capacity(total_slots);
        v.resize_with(total_slots, || AtomicU64::new(IDLE));
        ActiveTxnTable { slots: v.into_boxed_slice() }
    }

    pub fn begin(&self, slot: usize, start_ts: Timestamp) {
        self.slots[slot].store(start_ts, Ordering::Release);
    }

    pub fn end(&self, slot: usize) {
        self.slots[slot].store(IDLE, Ordering::Release);
    }

    /// The minimum active start timestamp, or `fallback` (usually "now")
    /// when no transaction is active.
    pub fn min_active_start(&self, fallback: Timestamp) -> Timestamp {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&s| s != IDLE)
            .min()
            .unwrap_or(fallback)
    }

    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|s| s.load(Ordering::Acquire) != IDLE).count()
    }
}

/// What one GC round did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GcStats {
    pub undo_reclaimed: usize,
    pub twins_reclaimed: usize,
    pub tuples_deleted: usize,
    pub max_frozen: Timestamp,
}

/// The GC engine: owns nothing, orchestrates the per-slot arenas, the
/// active table and the twin registry.
pub struct GcEngine {
    arenas: Vec<Arc<UndoArena>>,
    registry: Arc<TwinRegistry>,
}

impl GcEngine {
    pub fn new(arenas: Vec<Arc<UndoArena>>, registry: Arc<TwinRegistry>) -> Self {
        GcEngine { arenas, registry }
    }

    pub fn registry(&self) -> &Arc<TwinRegistry> {
        &self.registry
    }

    /// Reclaim one slot's arena (the worker that generated the logs runs
    /// this, §7.1). `on_delete` physically removes a deleted tuple from
    /// table + indexes.
    pub fn collect_slot(
        &self,
        slot: usize,
        min_active_start: Timestamp,
        mut on_delete: impl FnMut(&Arc<UndoLog>),
    ) -> GcStats {
        let mut stats = GcStats::default();
        let registry = &self.registry;
        stats.undo_reclaimed = self.arenas[slot].reclaim_until(min_active_start, |log| {
            // Twin cleanup: if this log is still the chain head, the base
            // tuple alone now serves every snapshot.
            if let Some(twin) = registry.get((log.table, log.page_key)) {
                twin.clear_if_head(log.row, log);
            }
            if matches!(log.op, UndoOp::Delete { .. }) {
                on_delete(log);
                stats.tuples_deleted += 1;
            }
        });
        stats
    }

    /// Max-frozen watermark: the minimum over slots of "everything this
    /// slot has fully reclaimed". Idle/empty slots don't hold it back.
    pub fn max_frozen(&self, min_active_start: Timestamp) -> Timestamp {
        self.arenas
            .iter()
            .map(|a| if a.is_empty() { min_active_start } else { a.last_reclaimed_cts() })
            .min()
            .unwrap_or(min_active_start)
    }

    /// Full GC round over every slot plus twin-table reclamation.
    pub fn collect_all(
        &self,
        min_active_start: Timestamp,
        mut on_delete: impl FnMut(&Arc<UndoLog>),
    ) -> GcStats {
        let mut total = GcStats::default();
        for slot in 0..self.arenas.len() {
            let s = self.collect_slot(slot, min_active_start, &mut on_delete);
            total.undo_reclaimed += s.undo_reclaimed;
            total.tuples_deleted += s.tuples_deleted;
        }
        total.max_frozen = self.max_frozen(min_active_start);
        total.twins_reclaimed = self.registry.reclaim_stale(total.max_frozen);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{TxnHandle, TxnOutcome};
    use crate::undo::UndoOp;
    use phoebe_common::ids::{RowId, TableId, Xid};
    use phoebe_storage::schema::Value;

    #[test]
    fn active_table_tracks_min() {
        let t = ActiveTxnTable::new(4);
        assert_eq!(t.min_active_start(99), 99);
        t.begin(0, 10);
        t.begin(2, 7);
        assert_eq!(t.min_active_start(99), 7);
        assert_eq!(t.active_count(), 2);
        t.end(2);
        assert_eq!(t.min_active_start(99), 10);
        t.end(0);
        assert_eq!(t.min_active_start(99), 99);
    }

    fn committed(
        arena: &UndoArena,
        registry: &TwinRegistry,
        row: u64,
        cts: u64,
        op: UndoOp,
    ) -> Arc<UndoLog> {
        let h = TxnHandle::new(Xid::from_start_ts(cts - 1));
        let prev = registry.get((TableId(1), RowId(0))).and_then(|t| t.head(RowId(row)));
        let log = UndoLog::new(TableId(1), RowId(row), RowId(0), op, Arc::clone(&h), prev);
        let twin = registry.get_or_create((TableId(1), RowId(0)));
        assert!(twin.set_head(RowId(row), Arc::clone(&log), cts - 1));
        log.stamp_commit(cts);
        h.finish(TxnOutcome::Committed(cts));
        arena.push(Arc::clone(&log));
        log
    }

    #[test]
    fn collect_clears_twin_heads_and_reports_deletes() {
        let arena = Arc::new(UndoArena::new());
        let registry = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(vec![Arc::clone(&arena)], Arc::clone(&registry));

        committed(&arena, &registry, 1, 5, UndoOp::Update { delta: vec![(0, Value::I64(9))] });
        committed(&arena, &registry, 2, 6, UndoOp::Delete { row_image: vec![Value::I64(1)] });
        committed(&arena, &registry, 3, 50, UndoOp::Insert);

        let mut deleted = Vec::new();
        let stats = gc.collect_all(10, |log| deleted.push(log.row.raw()));
        assert_eq!(stats.undo_reclaimed, 2, "cts 5 and 6 are below watermark 10");
        assert_eq!(stats.tuples_deleted, 1);
        assert_eq!(deleted, vec![2]);
        let twin = registry.get((TableId(1), RowId(0))).unwrap();
        assert!(twin.head(RowId(1)).is_none(), "reclaimed head cleared");
        assert!(twin.head(RowId(3)).is_some(), "young head kept");
    }

    #[test]
    fn newer_heads_survive_reclamation_of_old_versions() {
        let arena = Arc::new(UndoArena::new());
        let registry = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(vec![Arc::clone(&arena)], Arc::clone(&registry));

        committed(&arena, &registry, 1, 5, UndoOp::Update { delta: vec![(0, Value::I64(1))] });
        let newer =
            committed(&arena, &registry, 1, 40, UndoOp::Update { delta: vec![(0, Value::I64(2))] });
        let stats = gc.collect_all(10, |_| {});
        assert_eq!(stats.undo_reclaimed, 1);
        let twin = registry.get((TableId(1), RowId(0))).unwrap();
        let head = twin.head(RowId(1)).unwrap();
        assert!(Arc::ptr_eq(&head, &newer), "newer head must survive");
        // The reclaimed predecessor is invalid; chain traversal stops.
        assert!(head.next_version().map(|n| !n.is_valid()).unwrap_or(true));
    }

    #[test]
    fn max_frozen_is_min_over_busy_slots() {
        let a0 = Arc::new(UndoArena::new());
        let a1 = Arc::new(UndoArena::new());
        let registry = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(vec![Arc::clone(&a0), Arc::clone(&a1)], Arc::clone(&registry));
        committed(&a0, &registry, 1, 5, UndoOp::Insert);
        committed(&a0, &registry, 2, 8, UndoOp::Insert);
        committed(&a1, &registry, 3, 6, UndoOp::Insert);
        committed(&a1, &registry, 4, 30, UndoOp::Insert);
        // Watermark 10: slot0 reclaims up to 8, slot1 up to 6 (30 stays).
        let stats = gc.collect_all(10, |_| {});
        assert_eq!(stats.undo_reclaimed, 3);
        // Slot0 now empty (contributes min_active=10); slot1 last=6.
        assert_eq!(gc.max_frozen(10), 6);
        assert_eq!(stats.max_frozen, 6);
    }

    #[test]
    fn twin_tables_reclaimed_once_empty_and_cold() {
        let arena = Arc::new(UndoArena::new());
        let registry = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(vec![Arc::clone(&arena)], Arc::clone(&registry));
        committed(&arena, &registry, 1, 5, UndoOp::Update { delta: vec![] });
        assert_eq!(registry.len(), 1);
        let stats = gc.collect_all(100, |_| {});
        assert_eq!(stats.undo_reclaimed, 1);
        assert_eq!(stats.twins_reclaimed, 1, "empty + old twin goes away");
        assert_eq!(registry.len(), 0);
    }

    #[test]
    fn inflight_transactions_pin_everything() {
        let arena = Arc::new(UndoArena::new());
        let registry = Arc::new(TwinRegistry::new());
        let gc = GcEngine::new(vec![Arc::clone(&arena)], Arc::clone(&registry));
        // In-flight log at the queue head pins the arena.
        let h = TxnHandle::new(Xid::from_start_ts(3));
        let log = UndoLog::new(TableId(1), RowId(1), RowId(0), UndoOp::Insert, h, None);
        arena.push(log);
        let stats = gc.collect_all(u64::MAX >> 2, |_| {});
        assert_eq!(stats.undo_reclaimed, 0);
        assert_eq!(arena.len(), 1);
    }
}
