//! In-memory UNDO logs with before-image deltas (§6.2) and the per-slot
//! arenas that make commit stamping one scan and GC queue-like (§7.3).
//!
//! Each UNDO log stores only the *delta* between the old and new tuple
//! (before-image delta). Logs of one transaction are grouped (the
//! transaction keeps a list); logs of one tuple are chained newest→oldest
//! through `next`. Two timestamps ride along:
//!
//! * `sts` — when the *before image* was committed (copied from the
//!   predecessor's `ets`, or 0 if the predecessor was reclaimed). Its role
//!   (paper remark): traversal can stop at `sts <= snapshot` without ever
//!   touching — or keeping alive — the predecessor, which is what lets GC
//!   reclaim old logs without chasing version chains.
//! * `ets` — the writer's XID while in flight, overwritten with the commit
//!   timestamp during the commit scan.
//!
//! Because a task slot runs one transaction at a time, the logs appended to
//! a slot's arena are in commit order, so GC pops from the front until it
//! meets the watermark (§7.3 "UNDO logs can be reclaimed in a queue-like
//! manner").

use crate::locks::TxnHandle;
use phoebe_common::ids::{RowId, TableId, Timestamp, Xid};
use phoebe_common::sync::{Rank, RankedMutex};
use phoebe_storage::schema::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What the transaction did to the tuple — stored as the information needed
/// to *undo* it (the before image).
#[derive(Debug, Clone, PartialEq)]
pub enum UndoOp {
    /// Tuple updated in place; the delta holds (column, old value) pairs.
    Update { delta: Vec<(usize, Value)> },
    /// Tuple freshly inserted; the before image is "no tuple".
    Insert,
    /// Tuple deleted; the before image is the full old row.
    Delete { row_image: Vec<Value> },
    /// A *frozen* row was tombstoned out-of-place (§5.2). Rollback removes
    /// the tombstone; the compressed block still holds the data (the image
    /// here is kept for index cleanup at GC). These logs never enter
    /// version chains — frozen data is globally visible.
    FrozenDelete { row_image: Vec<Value> },
}

/// One UNDO log record.
pub struct UndoLog {
    pub table: TableId,
    pub row: RowId,
    /// Stable page identity (leaf first row id) for twin-table cleanup.
    pub page_key: RowId,
    pub op: UndoOp,
    /// Commit timestamp of the before image (0 = predecessor reclaimed).
    sts: AtomicU64,
    /// Writer XID (raw) until commit, then the commit timestamp.
    ets: AtomicU64,
    /// Older version of the same tuple.
    next: RankedMutex<Option<Arc<UndoLog>>>,
    /// Cleared when GC reclaims the log (or the writer aborts).
    valid: AtomicBool,
    /// The writer's transaction-ID lock, reachable by anyone who finds this
    /// log — the decentralized replacement for a lock table (§7.2) and the
    /// mid-commit visibility bridge (see `locks`).
    pub writer: Arc<TxnHandle>,
}

impl UndoLog {
    pub fn new(
        table: TableId,
        row: RowId,
        page_key: RowId,
        op: UndoOp,
        writer: Arc<TxnHandle>,
        prev: Option<Arc<UndoLog>>,
    ) -> Arc<Self> {
        // sts := predecessor's ets (its commit ts — a predecessor in the
        // chain is always committed, otherwise we would have waited on its
        // writer), or 0 if there is no predecessor / it was reclaimed. If
        // the predecessor's commit stamp hasn't landed in its ets yet
        // (mid-commit), its handle already publishes the cts.
        let sts = match &prev {
            Some(p) if p.is_valid() => {
                let e = p.ets.load(Ordering::Acquire);
                if Xid::is_xid(e) {
                    match p.writer.outcome() {
                        Some(crate::locks::TxnOutcome::Committed(cts)) => cts,
                        _ => 0,
                    }
                } else {
                    e
                }
            }
            _ => 0,
        };
        let xid = writer.xid;
        Arc::new(UndoLog {
            table,
            row,
            page_key,
            op,
            sts: AtomicU64::new(sts),
            ets: AtomicU64::new(xid.raw()),
            next: RankedMutex::new(Rank::UndoLink, "undo.next", prev),
            valid: AtomicBool::new(true),
            writer,
        })
    }

    /// Raw `ets`: either an XID (writer in flight) or a commit timestamp.
    #[inline]
    pub fn ets(&self) -> u64 {
        self.ets.load(Ordering::Acquire)
    }

    /// Raw `sts`.
    #[inline]
    pub fn sts(&self) -> u64 {
        self.sts.load(Ordering::Acquire)
    }

    /// Stamp the commit timestamp (the single-scan commit update, §6.2).
    pub fn stamp_commit(&self, cts: Timestamp) {
        debug_assert!(Xid::is_xid(self.ets()), "stamping a non-inflight log");
        self.ets.store(cts, Ordering::Release);
    }

    #[inline]
    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::Acquire)
    }

    /// Invalidate (abort rollback or GC reclamation). Drops the chain tail
    /// so reclaimed logs free immediately.
    pub fn invalidate(&self) {
        self.valid.store(false, Ordering::Release);
        *self.next.lock() = None;
    }

    /// The older version, if still reachable and valid.
    pub fn next_version(&self) -> Option<Arc<UndoLog>> {
        self.next.lock().clone()
    }
}

impl std::fmt::Debug for UndoLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UndoLog")
            .field("table", &self.table)
            .field("row", &self.row)
            .field("sts", &self.sts())
            .field("ets", &self.ets())
            .field("valid", &self.is_valid())
            .finish()
    }
}

/// Per-task-slot UNDO storage (§6.2 "UNDO logs generated by the same
/// transaction are stored together" + §7.1 "UNDO logs are managed and
/// garbage is collected by the same worker thread that generates them").
pub struct UndoArena {
    queue: RankedMutex<VecDeque<Arc<UndoLog>>>,
    /// Commit timestamp of the most recently reclaimed log on this slot —
    /// feeds the max-frozen-XID watermark (§7.3).
    last_reclaimed_cts: AtomicU64,
}

impl Default for UndoArena {
    fn default() -> Self {
        Self::new()
    }
}

impl UndoArena {
    pub fn new() -> Self {
        UndoArena {
            queue: RankedMutex::new(Rank::UndoArena, "undo.arena_queue", VecDeque::new()),
            last_reclaimed_cts: AtomicU64::new(0),
        }
    }

    /// Append a freshly created log (creation order = commit order on a
    /// slot, since slots run transactions serially).
    pub fn push(&self, log: Arc<UndoLog>) {
        self.queue.lock().push_back(log);
    }

    /// Number of unreclaimed logs.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    pub fn last_reclaimed_cts(&self) -> Timestamp {
        self.last_reclaimed_cts.load(Ordering::Acquire)
    }

    /// Queue-like reclamation (§7.3): pop logs from the front while they
    /// are invalid (aborted) or committed before `min_active_start`. Each
    /// reclaimed *valid* log is passed to `on_reclaim` (twin cleanup,
    /// deleted-tuple removal) before being invalidated.
    ///
    /// Returns the number of logs reclaimed.
    pub fn reclaim_until(
        &self,
        min_active_start: Timestamp,
        mut on_reclaim: impl FnMut(&Arc<UndoLog>),
    ) -> usize {
        let mut reclaimed = 0;
        loop {
            let front = {
                let q = self.queue.lock();
                match q.front() {
                    Some(f) => Arc::clone(f),
                    None => break,
                }
            };
            if front.is_valid() {
                let ets = front.ets();
                if Xid::is_xid(ets) || ets >= min_active_start {
                    break; // in flight, or still needed by some snapshot
                }
                on_reclaim(&front);
                self.last_reclaimed_cts.fetch_max(ets, Ordering::AcqRel);
                front.invalidate();
            }
            self.queue.lock().pop_front();
            reclaimed += 1;
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::TxnOutcome;

    fn handle(ts: u64) -> Arc<TxnHandle> {
        TxnHandle::new(Xid::from_start_ts(ts))
    }

    fn log(row: u64, writer: &Arc<TxnHandle>, prev: Option<Arc<UndoLog>>) -> Arc<UndoLog> {
        UndoLog::new(
            TableId(1),
            RowId(row),
            RowId(row),
            UndoOp::Update { delta: vec![(0, Value::I64(row as i64))] },
            Arc::clone(writer),
            prev,
        )
    }

    #[test]
    fn new_log_carries_writer_xid_in_ets() {
        let w = handle(7);
        let l = log(1, &w, None);
        assert!(Xid::is_xid(l.ets()));
        assert_eq!(Xid::from_raw(l.ets()).unwrap(), w.xid);
        assert_eq!(l.sts(), 0, "no predecessor => sts 0");
    }

    #[test]
    fn sts_copies_predecessor_commit_ts() {
        let w1 = handle(1);
        let old = log(1, &w1, None);
        old.stamp_commit(6);
        w1.finish(TxnOutcome::Committed(6));
        let w2 = handle(7);
        let new = log(1, &w2, Some(Arc::clone(&old)));
        assert_eq!(new.sts(), 6, "paper Example 6.1: sts = predecessor ets");
        assert!(Arc::ptr_eq(&new.next_version().unwrap(), &old));
    }

    #[test]
    fn sts_is_zero_when_predecessor_reclaimed() {
        let w1 = handle(1);
        let old = log(1, &w1, None);
        old.stamp_commit(6);
        old.invalidate();
        let w2 = handle(7);
        let new = log(1, &w2, Some(old));
        assert_eq!(new.sts(), 0);
    }

    #[test]
    fn commit_stamp_replaces_xid_with_cts() {
        let w = handle(3);
        let l = log(1, &w, None);
        l.stamp_commit(9);
        assert_eq!(l.ets(), 9);
        assert!(!Xid::is_xid(l.ets()));
    }

    #[test]
    fn arena_reclaims_in_queue_order_up_to_watermark() {
        let arena = UndoArena::new();
        let mut logs = Vec::new();
        for i in 0..5u64 {
            let w = handle(i * 10);
            let l = log(i, &w, None);
            l.stamp_commit(i * 10 + 5); // cts: 5, 15, 25, 35, 45
            w.finish(TxnOutcome::Committed(i * 10 + 5));
            arena.push(Arc::clone(&l));
            logs.push(l);
        }
        let mut seen = Vec::new();
        let n = arena.reclaim_until(30, |l| seen.push(l.row.raw()));
        assert_eq!(n, 3, "cts 5,15,25 < 30 are reclaimable");
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.last_reclaimed_cts(), 25);
        assert!(!logs[0].is_valid());
        assert!(logs[3].is_valid());
    }

    #[test]
    fn arena_stops_at_inflight_logs() {
        let arena = UndoArena::new();
        let w = handle(1);
        arena.push(log(0, &w, None)); // never committed
        let n = arena.reclaim_until(u64::MAX >> 2, |_| {});
        assert_eq!(n, 0);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn aborted_logs_are_skipped_without_callback() {
        let arena = UndoArena::new();
        let w = handle(1);
        let l = log(0, &w, None);
        l.invalidate(); // abort path
        arena.push(l);
        let mut called = 0;
        let n = arena.reclaim_until(0, |_| called += 1);
        assert_eq!((n, called), (1, 0));
        assert!(arena.is_empty());
    }

    #[test]
    fn invalidate_breaks_the_chain() {
        let w1 = handle(1);
        let old = log(1, &w1, None);
        old.stamp_commit(2);
        let w2 = handle(3);
        let new = log(1, &w2, Some(Arc::clone(&old)));
        assert!(new.next_version().is_some());
        new.invalidate();
        assert!(new.next_version().is_none());
    }
}
