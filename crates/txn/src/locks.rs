//! Decentralized lock management (§7.2).
//!
//! Traditional engines keep object locks in one global hash table — a
//! contention hotspot the paper singles out. PhoebeDB decentralizes all
//! three lock kinds:
//!
//! * **Transaction-ID lock** ([`TxnHandle`]): a transaction implicitly
//!   holds the exclusive lock on its own XID from start to finish. A
//!   conflicting writer takes a "shared lock" by awaiting the handle, which
//!   it finds through the version chain it collided with — no lookup table.
//!   All waiters are released simultaneously when the owner finishes,
//!   matching the paper's remark (1)/(2).
//! * **Tuple lock** ([`TupleLockSlot`]): each active transaction holds at
//!   most one tuple lock at a time; the slot object lives in the co-routine
//!   task slot and is reused across transactions.
//! * **Table lock** ([`TableLock`]): stored with the relation (the catalog
//!   entry referencing the B-Tree root), not in a global table.

use crate::clock::Snapshot;
use phoebe_common::error::{PhoebeError, Result};
use phoebe_common::ids::{RowId, TableId, Timestamp, Xid};
use phoebe_common::sync::{Rank, RankedMutex};
use phoebe_runtime::{yield_now, Notify, Urgency};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// PostgreSQL-compatible snapshot isolation levels (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Snapshot re-acquired before every statement; writers re-read the
    /// latest committed version after waiting.
    ReadCommitted,
    /// One snapshot for the whole transaction; a write-write conflict with
    /// a committed newer version aborts (first-updater-wins).
    RepeatableRead,
}

/// How a transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    Committed(Timestamp),
    Aborted,
}

const STATE_RUNNING: u64 = 0;
const STATE_COMMITTED: u64 = 1 << 62;
const STATE_ABORTED: u64 = 2 << 62;
const STATE_MASK: u64 = 3 << 62;

/// The transaction-ID lock: created when a transaction starts (the implicit
/// exclusive lock on its own XID) and resolved exactly once at commit or
/// abort. Waiters await it through [`TxnHandle::wait`].
///
/// The handle also publishes the commit timestamp *atomically with* the
/// committed state, so a reader that catches a version whose `ets` still
/// holds the writer's XID mid-commit can learn the cts and apply normal
/// visibility rules instead of spuriously treating the version as
/// uncommitted.
pub struct TxnHandle {
    pub xid: Xid,
    /// `STATE_* | cts` packed into one word (cts only for committed).
    state: AtomicU64,
    notify: Notify,
}

impl TxnHandle {
    pub fn new(xid: Xid) -> Arc<Self> {
        Arc::new(TxnHandle { xid, state: AtomicU64::new(STATE_RUNNING), notify: Notify::new() })
    }

    /// Resolve the lock: record the outcome and wake every shared waiter
    /// simultaneously (paper remark 2).
    pub fn finish(&self, outcome: TxnOutcome) {
        let packed = match outcome {
            TxnOutcome::Committed(cts) => STATE_COMMITTED | cts,
            TxnOutcome::Aborted => STATE_ABORTED,
        };
        let prev = self.state.swap(packed, Ordering::AcqRel);
        debug_assert_eq!(prev & STATE_MASK, STATE_RUNNING, "transaction finished twice");
        self.notify.notify_all();
    }

    /// The outcome, if resolved.
    #[inline]
    pub fn outcome(&self) -> Option<TxnOutcome> {
        let s = self.state.load(Ordering::Acquire);
        match s & STATE_MASK {
            STATE_RUNNING => None,
            STATE_COMMITTED => Some(TxnOutcome::Committed(s & !STATE_MASK)),
            _ => Some(TxnOutcome::Aborted),
        }
    }

    /// True once the version this transaction wrote is committed and inside
    /// `snapshot` — the mid-commit visibility fix described above.
    pub fn committed_within(&self, snapshot: Snapshot) -> bool {
        matches!(self.outcome(), Some(TxnOutcome::Committed(cts)) if snapshot.sees(cts))
    }

    /// Acquire a shared lock on this transaction's ID: sleep until it
    /// finishes (low-urgency yield — tuple-lock class waits do not stop the
    /// worker from pulling new tasks, §7.1).
    pub async fn wait(&self, timeout: Duration) -> Result<TxnOutcome> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(o) = self.outcome() {
                return Ok(o);
            }
            if Instant::now() >= deadline {
                return Err(PhoebeError::LockTimeout { waiting_for: self.xid });
            }
            // The subscription lives until the end of this iteration; the
            // loop re-subscribes each time around.
            let _notified = self.notify.notified();
            // Re-check after subscribing to close the race.
            if let Some(o) = self.outcome() {
                return Ok(o);
            }
            // Park on the notification; the level-triggered executor
            // re-polls periodically, which is what enforces the deadline.
            yield_now(Urgency::Low).await;
        }
    }
}

/// The per-task-slot tuple lock (§7.2): "each active transaction holds at
/// most one tuple lock at a time ... managed in co-routine task slots" and
/// "released immediately after operations". Holding is tracked here; the
/// mutual exclusion itself is enforced by the leaf latch + `ets` handshake.
#[derive(Default)]
pub struct TupleLockSlot {
    /// Packed (table, row) currently claimed; 0 = free.
    claim: AtomicU64,
    grants: AtomicU64,
}

impl TupleLockSlot {
    fn pack(table: TableId, row: RowId) -> u64 {
        ((table.raw() as u64) << 40) | (row.raw() & ((1 << 40) - 1)) | (1 << 63)
    }

    /// Claim the slot for `(table, row)`; the previous claim (if any) is
    /// implicitly released — at most one tuple lock per transaction.
    pub fn claim(&self, table: TableId, row: RowId) {
        self.claim.store(Self::pack(table, row), Ordering::Release);
        // ORDERING: statistic counter; the claim itself publishes via the
        // release store above.
        self.grants.fetch_add(1, Ordering::Relaxed);
    }

    /// Release after the operation completes.
    pub fn release(&self) {
        self.claim.store(0, Ordering::Release);
    }

    pub fn is_held(&self) -> bool {
        self.claim.load(Ordering::Acquire) != 0
    }

    /// Total grants through this slot (reuse across transactions).
    pub fn grant_count(&self) -> u64 {
        // ORDERING: diagnostic read of a monotonic statistic.
        self.grants.load(Ordering::Relaxed)
    }
}

/// A table-level lock stored with the relation (§7.2 "table lock
/// information is stored in a dedicated memory block, referenced by a
/// pointer in the B-Tree root node"). Shared mode for DML, exclusive for
/// structural operations (truncate/freeze reorganizations).
pub struct TableLock {
    /// Negative = exclusive held; positive = shared count.
    state: RankedMutex<i64>,
    waiters: Notify,
}

impl Default for TableLock {
    fn default() -> Self {
        Self::new()
    }
}

impl TableLock {
    pub fn new() -> Self {
        TableLock {
            state: RankedMutex::new(Rank::TableLock, "locks.table_state", 0),
            waiters: Notify::new(),
        }
    }

    pub fn try_shared(&self) -> bool {
        let mut s = self.state.lock();
        if *s >= 0 {
            *s += 1;
            true
        } else {
            false
        }
    }

    pub fn try_exclusive(&self) -> bool {
        let mut s = self.state.lock();
        if *s == 0 {
            *s = -1;
            true
        } else {
            false
        }
    }

    pub async fn shared(&self) {
        while !self.try_shared() {
            let _n = self.waiters.notified();
            yield_now(Urgency::Low).await;
        }
    }

    pub async fn exclusive(&self) {
        while !self.try_exclusive() {
            let _n = self.waiters.notified();
            yield_now(Urgency::Low).await;
        }
    }

    pub fn release_shared(&self) {
        let mut s = self.state.lock();
        debug_assert!(*s > 0);
        *s -= 1;
        if *s == 0 {
            drop(s);
            self.waiters.notify_all();
        }
    }

    pub fn release_exclusive(&self) {
        let mut s = self.state.lock();
        debug_assert_eq!(*s, -1);
        *s = 0;
        drop(s);
        self.waiters.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoebe_runtime::block_on;

    #[test]
    fn handle_resolves_once_with_outcome() {
        let h = TxnHandle::new(Xid::from_start_ts(5));
        assert_eq!(h.outcome(), None);
        h.finish(TxnOutcome::Committed(9));
        assert_eq!(h.outcome(), Some(TxnOutcome::Committed(9)));
        assert!(h.committed_within(Snapshot(9)));
        assert!(!h.committed_within(Snapshot(8)));
    }

    #[test]
    fn aborted_handle_is_never_visible() {
        let h = TxnHandle::new(Xid::from_start_ts(5));
        h.finish(TxnOutcome::Aborted);
        assert_eq!(h.outcome(), Some(TxnOutcome::Aborted));
        assert!(!h.committed_within(Snapshot(u64::MAX >> 2)));
    }

    #[test]
    fn wait_returns_immediately_when_resolved() {
        let h = TxnHandle::new(Xid::from_start_ts(1));
        h.finish(TxnOutcome::Committed(2));
        let o = block_on(h.wait(Duration::from_millis(10))).unwrap();
        assert_eq!(o, TxnOutcome::Committed(2));
    }

    #[test]
    fn wait_blocks_until_finish_and_wakes_all() {
        let h = TxnHandle::new(Xid::from_start_ts(1));
        let h2 = Arc::clone(&h);
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || block_on(h.wait(Duration::from_secs(5))).unwrap())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        h2.finish(TxnOutcome::Aborted);
        for w in waiters {
            assert_eq!(w.join().unwrap(), TxnOutcome::Aborted);
        }
    }

    #[test]
    fn wait_times_out_on_stuck_transaction() {
        let h = TxnHandle::new(Xid::from_start_ts(1));
        let err = block_on(h.wait(Duration::from_millis(30))).unwrap_err();
        assert!(matches!(err, PhoebeError::LockTimeout { .. }));
        assert!(err.is_retryable());
    }

    #[test]
    fn tuple_lock_slot_claims_and_reuses() {
        let s = TupleLockSlot::default();
        assert!(!s.is_held());
        s.claim(TableId(1), RowId(10));
        assert!(s.is_held());
        s.release();
        assert!(!s.is_held());
        s.claim(TableId(2), RowId(20));
        s.release();
        assert_eq!(s.grant_count(), 2);
    }

    #[test]
    fn table_lock_modes_exclude_correctly() {
        let l = TableLock::new();
        assert!(l.try_shared());
        assert!(l.try_shared());
        assert!(!l.try_exclusive());
        l.release_shared();
        l.release_shared();
        assert!(l.try_exclusive());
        assert!(!l.try_shared());
        l.release_exclusive();
        assert!(l.try_shared());
        l.release_shared();
    }

    #[test]
    fn table_lock_async_waiters_proceed_after_release() {
        let l = Arc::new(TableLock::new());
        assert!(l.try_exclusive());
        let l2 = l.clone();
        let t = std::thread::spawn(move || {
            block_on(l2.shared());
            l2.release_shared();
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        l.release_exclusive();
        assert!(t.join().unwrap());
    }
}
