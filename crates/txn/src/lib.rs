//! Transaction management (§6, §7.2, §7.3).
//!
//! PhoebeDB keeps PostgreSQL's snapshot isolation levels (read committed
//! and repeatable read) but replaces its machinery wholesale:
//!
//! * a 62-bit **global logical clock** ([`clock`]) issues transaction ids
//!   and commit timestamps, making snapshot acquisition a single atomic
//!   load — O(1) instead of PostgreSQL's proc-array scan (§6.1);
//! * **in-memory UNDO logs** with before-image deltas form per-tuple
//!   version chains, grouped per transaction and stored per task slot
//!   ([`undo`]) so commit stamps them in one scan and GC reclaims them
//!   queue-like (§6.2, §7.3);
//! * a page-level **twin table** links tuples to their version chains
//!   without widening every tuple by a pointer ([`twin`]);
//! * **Algorithm 1** reconstructs the visible version ([`visibility`]);
//! * **decentralized locks** — transaction-ID locks waited on through the
//!   handle stored right in the twin entry, per-slot tuple-lock slots, and
//!   per-table locks — replace the global lock hash table ([`locks`]);
//! * **watermark GC** reclaims UNDO logs, twin tables and deleted tuples
//!   ([`gc`]).

pub mod clock;
pub mod gc;
pub mod locks;
pub mod twin;
pub mod undo;
pub mod visibility;

pub use clock::{GlobalClock, Snapshot};
pub use gc::{ActiveTxnTable, GcEngine, GcStats};
pub use locks::{IsolationLevel, TableLock, TxnHandle, TxnOutcome};
pub use twin::{TwinKey, TwinRegistry, TwinTable};
pub use undo::{UndoArena, UndoLog, UndoOp};
pub use visibility::{check_visibility, resolve_visibility, Visibility, VisibleVersion};
