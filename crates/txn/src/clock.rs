//! The 62-bit global logical clock and O(1) snapshots (§6.1).
//!
//! One globally incrementing atomic integer assigns transaction start
//! timestamps (wrapped into XIDs) and commit timestamps. A snapshot is a
//! *single timestamp* — the clock value at acquisition — so taking one is
//! a single atomic op, in contrast to PostgreSQL's scan of the shared proc
//! array. (The baseline crate implements that scan for Exp 8's comparison.)
//!
//! Visibility rule: a version committed at `cts` is inside snapshot `s`
//! iff `cts <= s`.

use phoebe_common::ids::{Timestamp, Xid, MAX_TIMESTAMP};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot: one 62-bit timestamp (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Snapshot(pub Timestamp);

impl Snapshot {
    /// True if a version committed at `cts` is visible in this snapshot.
    #[inline]
    pub fn sees(self, cts: Timestamp) -> bool {
        cts <= self.0
    }
}

/// The global logical clock.
#[derive(Debug)]
pub struct GlobalClock {
    now: AtomicU64,
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalClock {
    pub fn new() -> Self {
        // Start at 1: timestamp 0 is reserved as "reclaimed predecessor"
        // in UNDO `sts` fields (§6.2) and as the frozen-store sentinel.
        GlobalClock { now: AtomicU64::new(1) }
    }

    /// Draw the next timestamp (for transaction start or commit).
    #[inline]
    pub fn tick(&self) -> Timestamp {
        let t = self.now.fetch_add(1, Ordering::SeqCst);
        debug_assert!(t <= MAX_TIMESTAMP, "62-bit clock exhausted");
        t
    }

    /// Begin a transaction: one tick yields both its XID and its start
    /// timestamp.
    #[inline]
    pub fn begin(&self) -> (Xid, Timestamp) {
        let ts = self.tick();
        (Xid::from_start_ts(ts), ts)
    }

    /// Acquire a snapshot in O(1): the newest issued timestamp. Every
    /// transaction that committed obtained its cts strictly before this
    /// value was read, so `cts <= snapshot` is exactly "committed before".
    #[inline]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.now.load(Ordering::SeqCst).saturating_sub(1))
    }

    /// Assign a commit timestamp.
    #[inline]
    pub fn commit_ts(&self) -> Timestamp {
        self.tick()
    }

    /// Current raw clock value (diagnostics).
    pub fn current(&self) -> Timestamp {
        self.now.load(Ordering::SeqCst)
    }

    /// Advance the clock past `ts` (WAL recovery: new transactions must
    /// see every replayed commit, so the clock resumes strictly after the
    /// highest recovered commit timestamp). Never moves backwards.
    pub fn advance_to(&self, ts: Timestamp) {
        self.now.fetch_max(ts + 1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ticks_are_strictly_monotonic() {
        let c = GlobalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn begin_embeds_start_ts_in_xid() {
        let c = GlobalClock::new();
        let (xid, ts) = c.begin();
        assert_eq!(xid.start_ts(), ts);
    }

    #[test]
    fn snapshot_sees_prior_commits_only() {
        let c = GlobalClock::new();
        let cts_before = c.commit_ts();
        let snap = c.snapshot();
        let cts_after = c.commit_ts();
        assert!(snap.sees(cts_before));
        assert!(!snap.sees(cts_after));
    }

    #[test]
    fn concurrent_ticks_never_collide() {
        let c = Arc::new(GlobalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || (0..10_000).map(|_| c.tick()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 40_000);
    }

    #[test]
    fn advance_to_is_monotone_and_exclusive() {
        let c = GlobalClock::new();
        c.advance_to(100);
        assert!(c.tick() > 100, "post-recovery timestamps exceed recovered cts");
        c.advance_to(5); // never move backwards
        assert!(c.current() > 100);
    }

    #[test]
    fn snapshot_is_monotonic() {
        let c = GlobalClock::new();
        let s1 = c.snapshot();
        c.tick();
        let s2 = c.snapshot();
        assert!(s2 > s1);
    }
}
