//! Algorithm 1: retrieve the visible version (§6.2).
//!
//! Given the current (in-place updated) tuple, the version-chain head from
//! the twin table, the reader's XID and snapshot, decide what the reader
//! sees: the tuple as stored, an older version reassembled from
//! before-image deltas, or nothing (deleted / not yet inserted).

use crate::clock::Snapshot;
use crate::undo::{UndoLog, UndoOp};
use phoebe_common::ids::Xid;
use phoebe_storage::schema::Value;
use std::sync::Arc;

/// The outcome of a visibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum VisibleVersion {
    /// The tuple as currently stored in the page is the visible version.
    Current,
    /// An older version, reassembled from before-image deltas.
    Rebuilt(Vec<Value>),
    /// No version is visible (deleted before the snapshot, or inserted
    /// after it).
    Invisible,
}

/// Whether the version written by the head log is itself visible: its
/// `ets` holds either a cts (compare against the snapshot) or an XID (the
/// reader's own write is visible; someone else's only if their handle says
/// committed-within — the mid-commit bridge).
fn head_visible(head: &UndoLog, xid: Xid, snapshot: Snapshot) -> bool {
    let ets = head.ets();
    if Xid::is_xid(ets) {
        ets == xid.raw() || head.writer.committed_within(snapshot)
    } else {
        snapshot.sees(ets)
    }
}

/// The outcome of the in-place visibility check: whether the caller's
/// buffer now holds a visible version. Unlike [`VisibleVersion`] this
/// carries no row data — the rebuilt image lands in the buffer the caller
/// passed, so the hot read path allocates nothing for clean tuples and
/// reuses the already-materialized row for rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// The stored tuple is visible as-is (buffer untouched).
    Current,
    /// The buffer was rewritten in place to an older visible version.
    Rebuilt,
    /// No version is visible; the buffer contents are unspecified.
    Invisible,
}

/// Algorithm 1, in place. `tuple` holds the row as read from the page and
/// is mutated into the visible before-image when the chain walk rebuilds;
/// `head` is the twin-table entry (None ⇒ no twin table / no entry).
pub fn resolve_visibility(
    tuple: &mut Vec<Value>,
    head: Option<&Arc<UndoLog>>,
    xid: Xid,
    snapshot: Snapshot,
) -> Visibility {
    // Lines 1–4: no twin entry, or a reclaimed head ⇒ the stored tuple is
    // globally visible.
    let Some(head) = head else {
        return Visibility::Current;
    };
    if !head.is_valid() {
        return Visibility::Current;
    }
    // Line 4: header committed inside the snapshot (or it is our own
    // write) ⇒ the in-place tuple is the visible version — unless that
    // newest version is a deletion.
    if head_visible(head, xid, snapshot) {
        return match head.op {
            UndoOp::Delete { .. } | UndoOp::FrozenDelete { .. } => Visibility::Invisible,
            _ => Visibility::Current,
        };
    }
    // Lines 5–10: walk the chain, assembling before images until the
    // version is old enough.
    let mut cur = Arc::clone(head);
    loop {
        match &cur.op {
            UndoOp::Update { delta } => {
                for (col, v) in delta {
                    tuple[*col].clone_from(v);
                }
            }
            UndoOp::Delete { row_image } => {
                tuple.clone_from(row_image);
            }
            UndoOp::Insert => {
                // Before image is "no tuple": if the pre-insert state is
                // inside the snapshot, the row does not exist for us.
                return Visibility::Invisible;
            }
            UndoOp::FrozenDelete { .. } => {
                // Frozen tombstones never join version chains; seeing one
                // here means the caller already resolved the row as frozen.
                return Visibility::Invisible;
            }
        }
        // Line 8: the before image we just assembled was committed at
        // `sts`; 0 means its writer was reclaimed, i.e. globally visible.
        if snapshot.sees(cur.sts()) {
            return Visibility::Rebuilt;
        }
        match cur.next_version() {
            Some(next) if next.is_valid() => {
                // A mid-chain version is visible when committed within the
                // snapshot (its ets may still be an XID mid-commit).
                if head_visible(&next, xid, snapshot) {
                    // next's *after* image is what `tuple` currently holds?
                    // No: `tuple` currently holds next's after-image only
                    // after applying cur's before image, which we just did.
                    return Visibility::Rebuilt;
                }
                cur = next;
            }
            _ => {
                // Chain ends (predecessor reclaimed): the assembled image
                // is the oldest reachable version; sts==0 normally catches
                // this, so reaching here is a benign race with GC.
                return Visibility::Rebuilt;
            }
        }
    }
}

/// Algorithm 1, allocating form: clones `current` and delegates to
/// [`resolve_visibility`]. Kept for callers (and the visibility oracle
/// tests) that want the rebuilt row as an owned value.
pub fn check_visibility(
    current: &[Value],
    head: Option<&Arc<UndoLog>>,
    xid: Xid,
    snapshot: Snapshot,
) -> VisibleVersion {
    let mut tuple = current.to_vec();
    match resolve_visibility(&mut tuple, head, xid, snapshot) {
        Visibility::Current => VisibleVersion::Current,
        Visibility::Rebuilt => VisibleVersion::Rebuilt(tuple),
        Visibility::Invisible => VisibleVersion::Invisible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{TxnHandle, TxnOutcome};
    use phoebe_common::ids::{RowId, TableId};

    fn v(i: i64) -> Vec<Value> {
        vec![Value::I64(i)]
    }

    fn committed_log(op: UndoOp, cts: u64, prev: Option<Arc<UndoLog>>) -> Arc<UndoLog> {
        let h = TxnHandle::new(Xid::from_start_ts(cts.saturating_sub(1)));
        let l = UndoLog::new(TableId(1), RowId(1), RowId(0), op, Arc::clone(&h), prev);
        h.finish(TxnOutcome::Committed(cts));
        l.stamp_commit(cts);
        l
    }

    fn inflight_log(op: UndoOp, start: u64, prev: Option<Arc<UndoLog>>) -> Arc<UndoLog> {
        let h = TxnHandle::new(Xid::from_start_ts(start));
        UndoLog::new(TableId(1), RowId(1), RowId(0), op, h, prev)
    }

    fn reader(ts: u64) -> Xid {
        Xid::from_start_ts(ts)
    }

    #[test]
    fn no_twin_entry_means_current() {
        assert_eq!(
            check_visibility(&v(1), None, reader(10), Snapshot(10)),
            VisibleVersion::Current
        );
    }

    #[test]
    fn reclaimed_head_means_current() {
        let l = committed_log(UndoOp::Update { delta: vec![(0, Value::I64(0))] }, 5, None);
        l.invalidate();
        assert_eq!(
            check_visibility(&v(1), Some(&l), reader(1), Snapshot(1)),
            VisibleVersion::Current
        );
    }

    #[test]
    fn committed_head_within_snapshot_is_current() {
        let l = committed_log(UndoOp::Update { delta: vec![(0, Value::I64(0))] }, 5, None);
        assert_eq!(
            check_visibility(&v(1), Some(&l), reader(9), Snapshot(9)),
            VisibleVersion::Current
        );
    }

    #[test]
    fn own_uncommitted_write_is_visible() {
        let h = TxnHandle::new(Xid::from_start_ts(7));
        let l = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(0))] },
            h,
            None,
        );
        assert_eq!(
            check_visibility(&v(1), Some(&l), reader(7), Snapshot(6)),
            VisibleVersion::Current
        );
    }

    #[test]
    fn foreign_uncommitted_write_rebuilds_before_image() {
        let l = inflight_log(UndoOp::Update { delta: vec![(0, Value::I64(41))] }, 9, None);
        // sts == 0 (no predecessor): stop immediately after assembling.
        assert_eq!(
            check_visibility(&v(42), Some(&l), reader(5), Snapshot(5)),
            VisibleVersion::Rebuilt(v(41))
        );
    }

    #[test]
    fn mid_commit_writer_is_visible_through_its_handle() {
        // Writer has committed (handle resolved) but ets not yet stamped.
        let h = TxnHandle::new(Xid::from_start_ts(3));
        let l = UndoLog::new(
            TableId(1),
            RowId(1),
            RowId(0),
            UndoOp::Update { delta: vec![(0, Value::I64(0))] },
            Arc::clone(&h),
            None,
        );
        h.finish(TxnOutcome::Committed(4));
        assert_eq!(
            check_visibility(&v(1), Some(&l), reader(9), Snapshot(9)),
            VisibleVersion::Current,
            "committed_within must bridge the stamping window"
        );
        assert_eq!(
            check_visibility(&v(1), Some(&l), reader(2), Snapshot(2)),
            VisibleVersion::Rebuilt(v(0)),
            "older snapshot still sees the before image"
        );
    }

    #[test]
    fn paper_example_6_2_rid1() {
        // rid1 chain: c --(cts 3)--> b --(cts 6)--> a (in flight, XID 7).
        // Reader XID 3 with snapshot 5 must see 'c'.
        let log_b_to_c =
            committed_log(UndoOp::Update { delta: vec![(0, Value::Str("c".into()))] }, 3, None);
        let log_a_to_b = inflight_log(
            UndoOp::Update { delta: vec![(0, Value::Str("b".into()))] },
            7,
            Some(Arc::clone(&log_b_to_c)),
        );
        // a_to_b.sts = 6? In the paper, XID4 committed the 'b' value at 6.
        // Our constructor copies the predecessor's cts (3 here models the
        // 'c' commit). To match the figure exactly, use explicit chains:
        // head = a_to_b (sts=6 via predecessor cts 6).
        let log_b_to_c6 =
            committed_log(UndoOp::Update { delta: vec![(0, Value::Str("c".into()))] }, 6, None);
        let head = inflight_log(
            UndoOp::Update { delta: vec![(0, Value::Str("b".into()))] },
            7,
            Some(Arc::clone(&log_b_to_c6)),
        );
        assert_eq!(head.sts(), 6);
        let current = vec![Value::Str("a".into())];
        let got = check_visibility(&current, Some(&head), reader(3), Snapshot(5));
        // 'a' invisible (in-flight), 'b' invisible (sts 6 > 5) -> walk to
        // predecessor: assemble 'c', its sts=0 <= 5 -> visible.
        assert_eq!(got, VisibleVersion::Rebuilt(vec![Value::Str("c".into())]));
        let _ = log_a_to_b;
    }

    #[test]
    fn paper_example_6_2_rid2() {
        // rid2: header ets = 3 <= snapshot 5 -> current value visible.
        let head =
            committed_log(UndoOp::Update { delta: vec![(0, Value::Str("a".into()))] }, 3, None);
        assert_eq!(
            check_visibility(&[Value::Str("b".into())], Some(&head), reader(3), Snapshot(5)),
            VisibleVersion::Current
        );
    }

    #[test]
    fn paper_example_6_2_rid3() {
        // rid3: header committed at 6 > 5; sts = 3 <= 5 -> before image 'a'.
        let prev =
            committed_log(UndoOp::Update { delta: vec![(0, Value::Str("x".into()))] }, 3, None);
        let head = committed_log(
            UndoOp::Update { delta: vec![(0, Value::Str("a".into()))] },
            6,
            Some(prev),
        );
        assert_eq!(head.sts(), 3);
        assert_eq!(
            check_visibility(&[Value::Str("c".into())], Some(&head), reader(3), Snapshot(5)),
            VisibleVersion::Rebuilt(vec![Value::Str("a".into())])
        );
    }

    #[test]
    fn visible_deletion_hides_the_row() {
        let head = committed_log(UndoOp::Delete { row_image: v(1) }, 4, None);
        assert_eq!(
            check_visibility(&v(1), Some(&head), reader(9), Snapshot(9)),
            VisibleVersion::Invisible
        );
        // An older snapshot still sees the pre-delete row.
        assert_eq!(
            check_visibility(&v(1), Some(&head), reader(2), Snapshot(2)),
            VisibleVersion::Rebuilt(v(1))
        );
    }

    #[test]
    fn insert_after_snapshot_is_invisible() {
        let head = committed_log(UndoOp::Insert, 8, None);
        assert_eq!(
            check_visibility(&v(1), Some(&head), reader(3), Snapshot(3)),
            VisibleVersion::Invisible
        );
        assert_eq!(
            check_visibility(&v(1), Some(&head), reader(9), Snapshot(9)),
            VisibleVersion::Current
        );
    }

    #[test]
    fn multi_column_deltas_compose_across_versions() {
        // v0 = [10, "x"] committed@2, v1 sets col0=20 committed@5,
        // v2 sets col1="y" committed@9. Current = [20, "y"].
        let l1 = committed_log(UndoOp::Update { delta: vec![(0, Value::I64(10))] }, 5, None);
        let l2 = committed_log(
            UndoOp::Update { delta: vec![(1, Value::Str("x".into()))] },
            9,
            Some(Arc::clone(&l1)),
        );
        let current = vec![Value::I64(20), Value::Str("y".into())];
        // Snapshot 9: current visible.
        assert_eq!(
            check_visibility(&current, Some(&l2), reader(9), Snapshot(9)),
            VisibleVersion::Current
        );
        // Snapshot 6: undo l2 -> [20, "x"].
        assert_eq!(
            check_visibility(&current, Some(&l2), reader(6), Snapshot(6)),
            VisibleVersion::Rebuilt(vec![Value::I64(20), Value::Str("x".into())])
        );
        // Snapshot 3: undo l2 then l1 -> [10, "x"].
        assert_eq!(
            check_visibility(&current, Some(&l2), reader(3), Snapshot(3)),
            VisibleVersion::Rebuilt(vec![Value::I64(10), Value::Str("x".into())])
        );
    }
}
