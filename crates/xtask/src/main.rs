//! Repo automation tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml`).
//!
//! `lint-kernel` walks every `crates/*/src/**/*.rs` file (excluding this
//! tool itself) and enforces the kernel concurrency invariants documented
//! in [`lint`]; see DESIGN.md "Concurrency correctness". Exit status is
//! non-zero when any violation is found, so CI can gate on it.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates where no lock/latch guard may be held across an `.await`.
const LATCHED_CRATES: [&str; 4] = ["storage", "txn", "runtime", "wal"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-kernel") => lint_kernel(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available: lint-kernel");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\ntasks:\n  lint-kernel   kernel concurrency-invariant lints");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

/// The relaxed-ordering allowlist: repo-relative paths of files whose
/// `Ordering::Relaxed` uses are pure statistics (counters, histograms,
/// benchmark plumbing) rather than synchronization protocols.
fn allowlist(root: &Path) -> Vec<String> {
    let path = root.join("crates/xtask/relaxed-allow.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn lint_kernel() -> ExitCode {
    let root = repo_root();
    let allow = allowlist(&root);
    let crates_dir = root.join("crates");

    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        eprintln!("no crates/ directory under {}", root.display());
        return ExitCode::FAILURE;
    };
    for entry in entries.flatten() {
        let crate_dir = entry.path();
        if crate_dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        rust_sources(&crate_dir.join("src"), &mut files);
    }
    files.sort();

    let mut total = 0usize;
    let mut scanned = 0usize;
    for file in &files {
        let rel = file.strip_prefix(&root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        let crate_name = rel.split('/').nth(1).unwrap_or("");
        let opts = lint::Options {
            relaxed_allowed: allow.iter().any(|a| a == &rel),
            check_guard_await: LATCHED_CRATES.contains(&crate_name),
        };
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{rel}: read error: {e}");
                total += 1;
                continue;
            }
        };
        scanned += 1;
        for v in lint::lint_file(&rel, &source, opts) {
            eprintln!("[{}] {}", v.rule, v.msg);
            total += 1;
        }
    }

    if total == 0 {
        println!("lint-kernel: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint-kernel: {total} violation(s) in {scanned} files");
        ExitCode::FAILURE
    }
}
