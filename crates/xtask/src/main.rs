//! Repo automation tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml`).
//!
//! `lint-kernel` walks every `crates/*/src/**/*.rs` file (excluding this
//! tool itself) and enforces the kernel concurrency invariants documented
//! in [`lint`] and [`lockorder`]; see DESIGN.md "Concurrency correctness"
//! and "Lock ordering". Exit status is non-zero when any violation is
//! found, so CI can gate on it. The discovered lock order is written to
//! `target/lockorder.dot` (a CI artifact).

mod lint;
mod lockorder;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates where no lock/latch guard may be held across an `.await`.
const LATCHED_CRATES: [&str; 5] = ["storage", "txn", "runtime", "wal", "core"];

/// Crates whose locks must be ranked and rank-ordered (the kernel proper;
/// `common` hosts the lockdep machinery itself, `baseline`/`tpcc` are
/// harnesses outside the kernel locking discipline).
const LOCK_ORDER_CRATES: [&str; 5] = ["storage", "txn", "runtime", "wal", "core"];

/// Rule tags a `LINT-ALLOW(<rule>)` waiver may name.
const KNOWN_WAIVER_RULES: [&str; 4] = ["safety", "ordering", "guard-await", "lock-order"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-kernel") => lint_kernel(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available: lint-kernel");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\ntasks:\n  lint-kernel   kernel concurrency-invariant lints");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

/// The relaxed-ordering allowlist: repo-relative paths of files whose
/// `Ordering::Relaxed` uses are pure statistics (counters, histograms,
/// benchmark plumbing) rather than synchronization protocols.
fn allowlist(root: &Path) -> Vec<String> {
    let path = root.join("crates/xtask/relaxed-allow.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn lint_kernel() -> ExitCode {
    let root = repo_root();
    let allow = allowlist(&root);
    let crates_dir = root.join("crates");

    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        eprintln!("no crates/ directory under {}", root.display());
        return ExitCode::FAILURE;
    };
    for entry in entries.flatten() {
        let crate_dir = entry.path();
        if crate_dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        rust_sources(&crate_dir.join("src"), &mut files);
    }
    files.sort();

    let mut total = 0usize;
    let mut scanned = 0usize;
    // (rel path, source) of every scanned file; the lock-order subset feeds
    // the interprocedural pass below.
    let mut sources: Vec<(String, String)> = Vec::new();
    // Waivers that suppressed something, keyed (rel path, line, rule tag).
    let mut used_waivers: Vec<(String, usize, String)> = Vec::new();

    for file in &files {
        let rel = file.strip_prefix(&root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        let crate_name = rel.split('/').nth(1).unwrap_or("").to_string();
        let opts = lint::Options {
            relaxed_allowed: allow.iter().any(|a| a == &rel),
            check_guard_await: LATCHED_CRATES.contains(&crate_name.as_str()),
        };
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{rel}: read error: {e}");
                total += 1;
                continue;
            }
        };
        scanned += 1;
        let result = lint::lint_file(&rel, &source, opts);
        for v in result.violations {
            eprintln!("[{}] {}", v.rule, v.msg);
            total += 1;
        }
        for (line, rule) in result.used_waivers {
            used_waivers.push((rel.clone(), line, rule.to_string()));
        }
        sources.push((rel, source));
    }

    // The interprocedural lock-order pass, over the kernel crates only.
    let kernel: Vec<(String, String)> = sources
        .iter()
        .filter(|(rel, _)| rel.split('/').nth(1).is_some_and(|c| LOCK_ORDER_CRATES.contains(&c)))
        .cloned()
        .collect();
    let order = lockorder::analyze(&kernel);
    for (_, v) in &order.violations {
        eprintln!("[{}] {}", v.rule, v.msg);
        total += 1;
    }
    for (rel, line) in &order.used_waivers {
        used_waivers.push((rel.clone(), *line, "lock-order".to_string()));
    }

    // Stale-waiver sweep: every LINT-ALLOW must name a known rule and have
    // suppressed at least one violation this run — a waiver that no longer
    // fires is dead weight hiding future regressions.
    for (rel, source) in &sources {
        for (line, rule) in lint::waiver_inventory(source) {
            if !KNOWN_WAIVER_RULES.contains(&rule.as_str()) {
                eprintln!(
                    "[stale-waiver] {rel}:{line}: LINT-ALLOW({rule}) names an unknown rule \
                     (known: {})",
                    KNOWN_WAIVER_RULES.join(", ")
                );
                total += 1;
            } else if !used_waivers.iter().any(|(r, l, t)| r == rel && *l == line && *t == rule) {
                eprintln!(
                    "[stale-waiver] {rel}:{line}: LINT-ALLOW({rule}) no longer suppresses \
                     anything — remove it"
                );
                total += 1;
            }
        }
    }

    // The discovered order, as a build artifact.
    let dot_path = root.join("target/lockorder.dot");
    if let Err(e) = std::fs::create_dir_all(root.join("target"))
        .and_then(|()| std::fs::write(&dot_path, &order.dot))
    {
        eprintln!("writing {}: {e}", dot_path.display());
        total += 1;
    }

    if total == 0 {
        println!(
            "lint-kernel: {scanned} files clean; lock-order: {} classes ranked, graph at {}",
            order.classes.len(),
            dot_path.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint-kernel: {total} violation(s) in {scanned} files");
        ExitCode::FAILURE
    }
}
