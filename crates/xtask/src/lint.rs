//! The `lint-kernel` static pass: three kernel-specific invariants that
//! `rustc`/`clippy` cannot express, checked with a comment-and-string
//! aware line scanner (deliberately not a full parser — the rules only
//! need token-level context, and a hand-rolled scanner keeps the tool
//! dependency-free).
//!
//! Rules:
//!
//! 1. **safety-comment** — every `unsafe` keyword (block, fn, impl,
//!    trait) carries a `// SAFETY:` comment on the same line or in the
//!    comment block directly above (attributes and blank lines may sit
//!    between).
//! 2. **ordering-comment** — every `Ordering::Relaxed` carries an
//!    `// ORDERING:` comment on the same line or within the preceding
//!    [`ORDERING_WINDOW`] lines (one cluster comment may justify a group
//!    of relaxed counter operations). Files on the allowlist (pure
//!    statistics/counters) are exempt.
//! 3. **guard-across-await** — in the latched crates (storage, txn,
//!    runtime, wal) no lock/latch guard binding may live across an
//!    `.await`; a parked coroutine holding a latch is a kernel-wide
//!    stall waiting to happen.
//!
//! Any rule can be waived per-line with `LINT-ALLOW(<rule>): <reason>` in
//! a comment on the same line or the line directly above.

/// How far above a `Ordering::Relaxed` an `ORDERING:` comment may sit.
pub const ORDERING_WINDOW: usize = 12;

/// One lint finding.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

/// Result of linting one file: the violations that survived waivers,
/// plus which waivers actually suppressed something (for the
/// stale-waiver sweep in `main`).
#[derive(Debug, Default)]
pub struct FileLint {
    pub violations: Vec<Violation>,
    /// (1-based waiver line, waiver rule tag) of each `LINT-ALLOW` that
    /// suppressed at least one violation in this pass.
    pub used_waivers: Vec<(usize, &'static str)>,
}

/// Per-file lint configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// File is on the relaxed-ordering allowlist (rule 2 skipped).
    pub relaxed_allowed: bool,
    /// File belongs to a latched crate (rule 3 enabled).
    pub check_guard_await: bool,
}

/// A source line split into its code and comment halves, with string and
/// char literal contents blanked out of the code half.
pub(crate) struct ScanLine {
    pub(crate) code: String,
    pub(crate) comment: String,
}

/// Split source into per-line (code, comment) halves with a char-level
/// state machine that tracks strings, raw strings, char literals, and
/// (nested) block comments across line boundaries.
pub(crate) fn scan(source: &str) -> Vec<ScanLine> {
    #[derive(PartialEq)]
    enum St {
        Normal,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut st = St::Normal;
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if st == St::LineComment {
                st = St::Normal;
            }
            lines.push(ScanLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            i += 1;
            continue;
        }
        match st {
            St::Normal => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    // Raw string? Look back for r / r# / br## ...
                    let mut j = i;
                    let mut hashes = 0;
                    while j > 0 && chars[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = j > 0 && chars[j - 1] == 'r';
                    st = if is_raw { St::RawStr(hashes) } else { St::Str };
                    code.push(' ');
                    i += 1;
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && chars.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        code.push(c);
                        i += 1;
                    } else {
                        st = St::Char;
                        code.push(' ');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 { St::Normal } else { St::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            St::Str => match c {
                '\\' => i += 2,
                '"' => {
                    st = St::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
            St::RawStr(hashes) => {
                if c == '"'
                    && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes
                {
                    st = St::Normal;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            St::Char => match c {
                '\\' => i += 2,
                '\'' => {
                    st = St::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(ScanLine { code, comment });
    }
    lines
}

/// Does `code` contain `word` bounded by non-identifier characters?
pub(crate) fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Is this line's waiver (same line or line above) naming `rule`? Returns
/// the 1-based line of the waiver comment, so its use can be recorded for
/// the stale-waiver sweep.
pub(crate) fn waived(lines: &[ScanLine], idx: usize, rule: &str) -> Option<usize> {
    let tag = format!("LINT-ALLOW({rule})");
    if lines[idx].comment.contains(&tag) {
        Some(idx + 1)
    } else if idx > 0 && lines[idx - 1].comment.contains(&tag) {
        Some(idx)
    } else {
        None
    }
}

/// Every `LINT-ALLOW(<rule>)` waiver in the file, as (1-based line, rule
/// tag). Waivers live in comments only; the scanner has already stripped
/// string literals, so fixture strings never count.
pub fn waiver_inventory(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in scan(source).iter().enumerate() {
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("LINT-ALLOW(") {
            rest = &rest[pos + "LINT-ALLOW(".len()..];
            if let Some(end) = rest.find(')') {
                out.push((idx + 1, rest[..end].to_string()));
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
    }
    out
}

/// A `SAFETY:` justification for line `idx`: same line, or in the
/// contiguous comment block directly above (attributes and blanks may
/// separate the comment from the code line).
fn safety_documented(lines: &[ScanLine], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    // Skip attribute and blank lines between the justification and the site.
    while i > 0 {
        let prev = &lines[i - 1];
        let code = prev.code.trim();
        let blank = code.is_empty() && prev.comment.is_empty();
        let attr = code.starts_with("#[") || code.starts_with("#!");
        if blank || attr {
            i -= 1;
        } else {
            break;
        }
    }
    // Walk up through the contiguous pure-comment block, if any.
    while i > 0 {
        let prev = &lines[i - 1];
        if !prev.code.trim().is_empty() || prev.comment.is_empty() {
            break;
        }
        if prev.comment.contains("SAFETY:") {
            return true;
        }
        i -= 1;
    }
    false
}

/// An `ORDERING:` justification within the same line or the preceding
/// window.
fn ordering_documented(lines: &[ScanLine], idx: usize) -> bool {
    let lo = idx.saturating_sub(ORDERING_WINDOW);
    lines[lo..=idx].iter().any(|l| l.comment.contains("ORDERING:"))
}

/// Method calls whose zero-argument form produces a lock/latch guard.
const GUARD_CALLS: [&str; 7] = [
    ".lock()",
    ".read()",
    ".write()",
    ".try_lock()",
    ".try_read()",
    ".try_write()",
    ".upgradable_read()",
];

/// Lint one file. `path` is only used in messages.
pub fn lint_file(path: &str, source: &str, opts: Options) -> FileLint {
    let lines = scan(source);
    let mut out = FileLint::default();

    // Guard-across-await state: (binding name, brace depth at declaration).
    let mut depth: i64 = 0;
    let mut guards: Vec<(String, i64)> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        let code = line.code.as_str();

        // Rule 1: SAFETY comments on unsafe.
        if has_word(code, "unsafe") && !safety_documented(&lines, idx) {
            if let Some(w) = waived(&lines, idx, "safety") {
                out.used_waivers.push((w, "safety"));
            } else {
                out.violations.push(Violation {
                    line: n,
                    rule: "safety-comment",
                    msg: format!(
                        "{path}:{n}: `unsafe` without a `// SAFETY:` comment on the same line \
                         or directly above"
                    ),
                });
            }
        }

        // Rule 2: ORDERING comments on Relaxed.
        if !opts.relaxed_allowed
            && code.contains("Ordering::Relaxed")
            && !ordering_documented(&lines, idx)
        {
            if let Some(w) = waived(&lines, idx, "ordering") {
                out.used_waivers.push((w, "ordering"));
            } else {
                out.violations.push(Violation {
                    line: n,
                    rule: "ordering-comment",
                    msg: format!(
                        "{path}:{n}: `Ordering::Relaxed` without an `// ORDERING:` comment \
                         within the preceding {ORDERING_WINDOW} lines (or add the file to \
                         the allowlist if it is pure counters)"
                    ),
                });
            }
        }

        // Rule 3: no guard held across .await.
        if opts.check_guard_await {
            // `drop(name)` releases a tracked guard early.
            for g in std::mem::take(&mut guards) {
                let released = code.contains(&format!("drop({})", g.0))
                    || code.contains(&format!("drop(&{})", g.0));
                if !released {
                    guards.push(g);
                }
            }
            // New guard binding?
            if let Some(name) = guard_binding(code) {
                guards.push((name, depth));
            }
            if code.contains(".await") && !guards.is_empty() {
                if let Some(w) = waived(&lines, idx, "guard-await") {
                    out.used_waivers.push((w, "guard-await"));
                } else {
                    for (name, _) in &guards {
                        out.violations.push(Violation {
                            line: n,
                            rule: "guard-across-await",
                            msg: format!(
                                "{path}:{n}: lock/latch guard `{name}` is live across this \
                                 `.await` — a parked coroutine must never hold a latch"
                            ),
                        });
                    }
                }
            }
            // Track depth after the line; pop guards whose scope closed.
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        guards.retain(|(_, d)| *d < depth + 1);
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// If `code` declares a `let <name> = ...<guard call>...;` binding,
/// return the binding name. Temporaries (`*l.write() = x`) drop at the
/// end of the statement and are not tracked.
pub(crate) fn guard_binding(code: &str) -> Option<String> {
    if !GUARD_CALLS.iter().any(|g| code.contains(g)) {
        return None;
    }
    let after_let = code.trim_start().strip_prefix("let ")?;
    let after_mut = after_let.trim_start().strip_prefix("mut ").unwrap_or(after_let.trim_start());
    let name: String = after_mut.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() || !after_mut[name.len()..].trim_start().starts_with(['=', ':']) {
        return None;
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: Options = Options { relaxed_allowed: false, check_guard_await: true };

    fn rules(src: &str) -> Vec<&'static str> {
        lint_file("t.rs", src, BOTH).violations.into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn seeded_undocumented_unsafe_fails() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules(src), ["safety-comment"]);
    }

    #[test]
    fn documented_unsafe_passes() {
        for src in [
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller guarantees p.\n}\n",
            "// SAFETY: T is plain data.\n#[allow(dead_code)]\nunsafe impl Send for X {}\n",
            "// SAFETY: the pointer is owned.\n// It is never aliased.\nunsafe impl Send for X {}\n",
        ] {
            assert_eq!(rules(src), Vec::<&str>::new(), "{src}");
        }
    }

    #[test]
    fn unsafe_in_strings_and_comments_ignored() {
        let src = "fn f() {\n    let _ = \"unsafe\";\n    // unsafe is discussed here only\n    let _c = 'u';\n}\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn seeded_unexplained_relaxed_fails() {
        let src = "fn f(n: &AtomicU64) -> u64 {\n    n.load(Ordering::Relaxed)\n}\n";
        assert_eq!(rules(src), ["ordering-comment"]);
    }

    #[test]
    fn cluster_ordering_comment_covers_window() {
        let src = "\
// ORDERING: pure statistics; relaxed is fine for the whole cluster.
fn f(n: &AtomicU64) {
    n.fetch_add(1, Ordering::Relaxed);
    n.fetch_add(2, Ordering::Relaxed);
    let _ = n.load(Ordering::Relaxed);
}
";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn relaxed_allowlist_skips_rule() {
        let src = "fn f(n: &AtomicU64) -> u64 { n.load(Ordering::Relaxed) }\n";
        let opts = Options { relaxed_allowed: true, check_guard_await: true };
        assert!(lint_file("t.rs", src, opts).violations.is_empty());
    }

    #[test]
    fn seeded_guard_across_await_fails() {
        let src = "\
async fn f(m: &Mutex<u64>) {
    let g = m.lock();
    step().await;
    drop(g);
}
";
        assert_eq!(rules(src), ["guard-across-await"]);
    }

    #[test]
    fn guard_dropped_or_scoped_before_await_passes() {
        for src in [
            "async fn f(m: &Mutex<u64>) {\n    let g = m.lock();\n    drop(g);\n    step().await;\n}\n",
            "async fn f(m: &Mutex<u64>) {\n    {\n        let g = m.lock();\n    }\n    step().await;\n}\n",
            "async fn f(m: &Mutex<u64>) {\n    step().await;\n    let g = m.lock();\n}\n",
        ] {
            assert_eq!(rules(src), Vec::<&str>::new(), "{src}");
        }
    }

    #[test]
    fn guard_await_rule_disabled_outside_latched_crates() {
        let src = "async fn f(m: &Mutex<u64>) {\n    let g = m.lock();\n    step().await;\n}\n";
        let opts = Options { relaxed_allowed: false, check_guard_await: false };
        assert!(lint_file("t.rs", src, opts).violations.is_empty());
    }

    #[test]
    fn lint_allow_waivers_work() {
        for src in [
            "fn f(p: *const u8) -> u8 {\n    // LINT-ALLOW(safety): fixture\n    unsafe { *p }\n}\n",
            "fn f(n: &AtomicU64) {\n    n.load(Ordering::Relaxed); // LINT-ALLOW(ordering): fixture\n}\n",
            "async fn f(m: &Mutex<u64>) {\n    let g = m.lock();\n    step().await; // LINT-ALLOW(guard-await): fixture\n}\n",
        ] {
            assert_eq!(rules(src), Vec::<&str>::new(), "{src}");
        }
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_confuse_the_scanner() {
        let src = "fn f<'a>(x: &'a str) -> &'a str {\n    let _ = r#\"unsafe { Ordering::Relaxed }\"#;\n    x\n}\n";
        assert_eq!(rules(src), Vec::<&str>::new());
    }

    #[test]
    fn suppressing_waivers_are_reported_used_with_their_line() {
        // Waiver above the site: reported at its own line (2), not the site's.
        let src = "fn f(p: *const u8) -> u8 {\n    // LINT-ALLOW(safety): fixture\n    unsafe { *p }\n}\n";
        let r = lint_file("t.rs", src, BOTH);
        assert!(r.violations.is_empty());
        assert_eq!(r.used_waivers, [(2, "safety")]);
        // Waiver on the same line as the site.
        let src = "fn f(n: &AtomicU64) {\n    n.load(Ordering::Relaxed); // LINT-ALLOW(ordering): fixture\n}\n";
        let r = lint_file("t.rs", src, BOTH);
        assert_eq!(r.used_waivers, [(2, "ordering")]);
    }

    #[test]
    fn waiver_that_suppresses_nothing_is_not_reported_used() {
        // The unsafe is SAFETY-documented, so the waiver never fires.
        let src = "// SAFETY: fine.\n// LINT-ALLOW(safety): stale\nunsafe impl Send for X {}\n";
        let r = lint_file("t.rs", src, BOTH);
        assert!(r.violations.is_empty());
        assert!(r.used_waivers.is_empty());
        // An await with no guard live does not consume a guard-await waiver.
        let src = "async fn f() {\n    step().await; // LINT-ALLOW(guard-await): stale\n}\n";
        let r = lint_file("t.rs", src, BOTH);
        assert!(r.used_waivers.is_empty());
    }

    #[test]
    fn waiver_inventory_finds_comment_waivers_only() {
        let src = "\
// LINT-ALLOW(ordering): cluster justification
fn f() {
    let _ = \"LINT-ALLOW(safety): inside a string, not a waiver\";
    g(); // LINT-ALLOW(lock-order): reason
}
";
        let inv = waiver_inventory(src);
        assert_eq!(inv, [(1, "ordering".to_string()), (4, "lock-order".to_string())]);
    }
}
